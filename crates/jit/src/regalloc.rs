//! Linear-scan register allocation for the mid-tier, over the pinned-locals
//! model.
//!
//! The baseline emitter keeps every local in its canonical frame slot and
//! reloads it at each `local.get`. The mid-tier instead assigns *register
//! homes* to the hottest integer locals, computed here from the
//! three-address IR (`crate::ir`):
//!
//! 1. **Liveness.** Per-instruction backward dataflow over the IR CFG
//!    (branch edges from the validator's control tables) yields, for each
//!    op, the set of locals that may still be read. Hoisted preheader
//!    guards read their bound locals, so [`crate::ir::IrOp::HoistGuard`]
//!    counts as a use — a bound local stays live into its versioned loop
//!    even when the fast body never mentions it again.
//! 2. **Weighted intervals.** Each local's spill weight is the sum of its
//!    uses and defs, weighted `4^loop_depth` — one reload avoided in a
//!    doubly-nested PolyBench kernel is worth sixteen at top level.
//! 3. **Assignment.** The top three locals by weight get the callee-saved
//!    pool ([`crate::codegen::PIN_REGS`], in order — so the emitter's
//!    existing prologue/epilogue/frame layout applies unchanged). Up to
//!    two more get the caller-saved homes `r8`/`r9`, but only when their
//!    weight exceeds twice the function's total weighted call cost: the
//!    emitter must save and reload every caller-saved home around every
//!    call-like site, and a home that costs more in save/reload traffic
//!    than it saves in reloads is kept in its slot.
//! 4. **Redundant-access elimination.** A non-tee `local.set` whose local
//!    is not live-out is a dead store; the emitter drops it entirely
//!    (slot-homed) or skips the register move (register-homed).
//!
//! The whole pass is a pure function of `(module, meta, body, plan)` — no
//! strategy, no environment, no randomness — so `lb-verify`'s harness can
//! re-derive the identical assignment when checking mid-tier output
//! against the machine code actually emitted.

use crate::asm::Reg;
use crate::codegen::PIN_REGS;
use crate::ir::{self, IrOp};
use lb_analysis::FuncPlan;
use lb_wasm::validate::FuncMeta;
use lb_wasm::{Instr, Module};

/// Caller-saved registers usable as mid-tier homes. Only `r8`/`r9`: the
/// rest of the integer pool is claimed at fixed positions by the emitter
/// (`rax` for results, `rdx`/`rcx` for division and shifts, `r10` for
/// indirect-call targets) and pinning those would deadlock allocation.
pub const CALLER_HOMES: [Reg; 2] = [Reg::R8, Reg::R9];

/// Loop-depth cap for `4^depth` weights (beyond this, everything is
/// equally scorching and the weights would risk overflow).
const DEPTH_CAP: u32 = 10;

/// Allocation statistics, for tests and telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Locals granted a register home (callee- plus caller-saved).
    pub reg_homed: u32,
    /// Of those, homes in caller-saved registers (save/reload at calls).
    pub caller_saved_homed: u32,
    /// Hot locals (nonzero weight) left in their frame slot — spill
    /// pressure the pools could not absorb.
    pub slot_homed_hot: u32,
    /// Dead `local.set`s the emitter will elide.
    pub dead_stores: u32,
    /// Call-like sites (each forces a save/reload of caller-saved homes).
    pub calls: u32,
}

/// The mid-tier plan for one function: register homes for hot locals and
/// the dead stores to elide. Produced by [`allocate`].
#[derive(Debug, Clone, Default)]
pub struct MidPlan {
    /// `(local, home)`, sorted by local index.
    homes: Vec<(u32, Reg)>,
    /// Number of callee-saved homes (`PIN_REGS[0..n_pinned]` are in use;
    /// drives the emitter's prologue/epilogue and frame layout).
    pub n_pinned: usize,
    /// pcs of non-tee `local.set`s whose local is dead, sorted.
    dead_stores: Vec<u32>,
    /// Aggregate statistics.
    pub stats: AllocStats,
}

impl MidPlan {
    /// The register home of `local`, if it was granted one.
    #[inline]
    pub fn home(&self, local: u32) -> Option<Reg> {
        self.homes
            .binary_search_by_key(&local, |&(l, _)| l)
            .ok()
            .map(|i| self.homes[i].1)
    }

    /// All `(local, home)` pairs, sorted by local index.
    #[inline]
    pub fn homes(&self) -> &[(u32, Reg)] {
        &self.homes
    }

    /// Locals homed in caller-saved registers, in [`CALLER_HOMES`] order.
    pub fn caller_saved(&self) -> Vec<(u32, Reg)> {
        let mut v: Vec<(u32, Reg)> = self
            .homes
            .iter()
            .filter(|&&(_, r)| CALLER_HOMES.contains(&r))
            .copied()
            .collect();
        v.sort_by_key(|&(_, r)| CALLER_HOMES.iter().position(|&c| c == r));
        v
    }

    /// Whether the `local.set` at `pc` stores a dead value.
    #[inline]
    pub fn is_dead_store(&self, pc: u32) -> bool {
        self.dead_stores.binary_search(&pc).is_ok()
    }
}

/// Bitset over locals, one per IR instruction boundary.
#[derive(Clone, PartialEq, Eq)]
struct Bits(Vec<u64>);

impl Bits {
    fn new(n: usize) -> Bits {
        Bits(vec![0; n.div_ceil(64)])
    }
    #[inline]
    fn set(&mut self, i: u32) {
        self.0[i as usize / 64] |= 1 << (i % 64);
    }
    #[inline]
    fn clear(&mut self, i: u32) {
        self.0[i as usize / 64] &= !(1 << (i % 64));
    }
    #[inline]
    fn get(&self, i: u32) -> bool {
        self.0[i as usize / 64] & (1 << (i % 64)) != 0
    }
    /// `self |= other`; true if `self` changed.
    fn union(&mut self, other: &Bits) -> bool {
        let mut changed = false;
        for (d, s) in self.0.iter_mut().zip(&other.0) {
            let next = *d | s;
            changed |= next != *d;
            *d = next;
        }
        changed
    }
}

/// Compute the mid-tier plan for one validated function.
///
/// `plan` must be the same analysis plan the emitter will consult (or
/// `None`), so hoisted-guard uses line up with the guards actually
/// emitted.
pub fn allocate(
    module: &Module,
    meta: &FuncMeta,
    body: &[Instr],
    plan: Option<&FuncPlan>,
) -> MidPlan {
    let f = ir::lower(module, meta, body, plan);
    let n = f.insts.len();
    let nl = meta.local_types.len();
    if n == 0 || nl == 0 {
        return MidPlan::default();
    }

    // `insts` is ordered by pc; map a branch-target pc to the first IR
    // instruction at-or-after it (`None` = function exit).
    let ir_at = |pc: u32| -> Option<usize> {
        let i = f.insts.partition_point(|inst| inst.pc < pc);
        (i < n).then_some(i)
    };
    let succs = |i: usize| -> Vec<usize> {
        let next = (i + 1 < n).then_some(i + 1);
        let inst = &f.insts[i];
        match &inst.op {
            IrOp::Unreachable | IrOp::Return => vec![],
            IrOp::Br { dest } => ir_at(*dest).into_iter().collect(),
            IrOp::BrIf { dest, .. } | IrOp::If { dest, .. } => {
                next.into_iter().chain(ir_at(*dest)).collect()
            }
            IrOp::BrTable { dests, .. } => dests.iter().filter_map(|&d| ir_at(d)).collect(),
            IrOp::Else => ir_at(meta.ctrl[inst.pc as usize]).into_iter().collect(),
            _ => next.into_iter().collect(),
        }
    };

    // Backward may-liveness to fixpoint. `live[i]` is the live-out set of
    // instruction `i`.
    let mut live: Vec<Bits> = (0..n).map(|_| Bits::new(nl)).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for i in (0..n).rev() {
            // live-out = union of successors' live-in.
            let mut out = Bits::new(nl);
            for s in succs(i) {
                let mut li = live[s].clone();
                match &f.insts[s].op {
                    IrOp::SetLocal { local, .. } => li.clear(*local),
                    _ => {}
                }
                match &f.insts[s].op {
                    IrOp::GetLocal { local, .. } => li.set(*local),
                    IrOp::HoistGuard { locals } => {
                        for &l in locals {
                            li.set(l);
                        }
                    }
                    _ => {}
                }
                out.union(&li);
            }
            changed |= live[i].union(&out);
        }
    }

    // Weighted use counts and total call cost.
    let mut weight = vec![0u64; nl];
    let mut call_cost = 0u64;
    let mut calls = 0u32;
    for inst in &f.insts {
        let w = 4u64.pow(inst.loop_depth.min(DEPTH_CAP));
        match &inst.op {
            IrOp::GetLocal { local, .. } | IrOp::SetLocal { local, .. } => {
                weight[*local as usize] += w;
            }
            IrOp::HoistGuard { locals } => {
                for &l in locals {
                    weight[l as usize] += w;
                }
            }
            IrOp::Call { .. } => {
                call_cost += 2 * w;
                calls += 1;
            }
            _ => {}
        }
    }

    // Dead stores: non-tee sets whose local is not live-out.
    let mut dead_stores = Vec::new();
    for (i, inst) in f.insts.iter().enumerate() {
        if let IrOp::SetLocal {
            local, tee: false, ..
        } = inst.op
        {
            if !live[i].get(local) {
                dead_stores.push(inst.pc);
            }
        }
    }
    dead_stores.sort_unstable();
    dead_stores.dedup();

    // Assignment: hottest int locals first, callee-saved pool before the
    // caller-saved one, the latter only when reload savings beat the
    // save/restore traffic at call sites.
    let mut hot: Vec<u32> = (0..nl as u32)
        .filter(|&l| weight[l as usize] > 0 && meta.local_types[l as usize].is_int())
        .collect();
    hot.sort_by_key(|&l| (std::cmp::Reverse(weight[l as usize]), l));
    let mut homes: Vec<(u32, Reg)> = Vec::new();
    let mut n_pinned = 0;
    let mut caller = 0;
    let mut slot_homed_hot = 0u32;
    for &l in &hot {
        if n_pinned < PIN_REGS.len() {
            homes.push((l, PIN_REGS[n_pinned]));
            n_pinned += 1;
        } else if caller < CALLER_HOMES.len() && weight[l as usize] > 2 * call_cost {
            homes.push((l, CALLER_HOMES[caller]));
            caller += 1;
        } else {
            slot_homed_hot += 1;
        }
    }
    homes.sort_by_key(|&(l, _)| l);

    MidPlan {
        stats: AllocStats {
            reg_homed: homes.len() as u32,
            caller_saved_homed: caller as u32,
            slot_homed_hot,
            dead_stores: dead_stores.len() as u32,
            calls,
        },
        homes,
        n_pinned,
        dead_stores,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_wasm::module::Function;
    use lb_wasm::{BlockType, FuncType, Limits, MemoryType, ValType};

    /// One defined function `(i32) -> i32` with `locals` extra i32 locals
    /// and the given body, plus a second callee `f1: (i32) -> i32`.
    fn module_with(body: Vec<Instr>, n_locals: usize) -> (Module, FuncMeta) {
        let mut m = Module::new();
        m.types.push(FuncType {
            params: vec![ValType::I32],
            results: vec![ValType::I32],
        });
        m.memory = Some(MemoryType {
            limits: Limits {
                min: 1,
                max: Some(1),
            },
        });
        m.functions.push(Function {
            type_idx: 0,
            locals: vec![ValType::I32; n_locals],
            body,
            name: None,
        });
        m.functions.push(Function {
            type_idx: 0,
            locals: vec![],
            body: vec![Instr::LocalGet(0), Instr::End],
            name: None,
        });
        let meta = lb_wasm::validate(&m).expect("module validates");
        let fm = meta.funcs[0].clone();
        (m, fm)
    }

    /// `loop { <uses of locals 1..=k>; l0 -= 1; br_if l0 } ; return l0`
    fn counted_loop(uses: &[u32], call: bool) -> Vec<Instr> {
        let mut b = vec![Instr::Loop(BlockType::Empty)];
        for &l in uses {
            b.push(Instr::LocalGet(l));
            b.push(Instr::Drop);
        }
        if call {
            b.push(Instr::LocalGet(0));
            b.push(Instr::Call(1));
            b.push(Instr::Drop);
        }
        b.extend([
            Instr::LocalGet(0),
            Instr::I32Const(1),
            Instr::I32Sub,
            Instr::LocalTee(0),
            Instr::BrIf(0),
            Instr::End,
            Instr::LocalGet(0),
            Instr::End,
        ]);
        b
    }

    #[test]
    fn spill_pressure_caps_register_homes() {
        // Eight hot locals, five home registers: the three hottest get the
        // callee-saved pool, two more the caller-saved pool (no calls),
        // the rest stay slot-homed.
        let uses: Vec<u32> = (1..8)
            .flat_map(|l| std::iter::repeat(l).take(l as usize))
            .collect();
        let (m, fm) = module_with(counted_loop(&uses, false), 7);
        let p = allocate(&m, &fm, &m.functions[0].body, None);
        assert_eq!(p.n_pinned, 3);
        assert_eq!(p.stats.reg_homed, 5);
        assert_eq!(p.stats.caller_saved_homed, 2);
        assert!(p.stats.slot_homed_hot >= 3, "stats: {:?}", p.stats);
        // Local l has l in-loop uses, so local 7 is the hottest and heads
        // the callee-saved pool.
        assert_eq!(p.home(7), Some(PIN_REGS[0]));
        assert_eq!(p.home(6), Some(PIN_REGS[1]));
        // The coldest hot locals are slot-homed.
        assert_eq!(p.home(1), None);
        assert_eq!(p.home(2), None);
    }

    #[test]
    fn calls_make_caller_saved_homes_unprofitable() {
        let uses: Vec<u32> = (1..6)
            .flat_map(|l| std::iter::repeat(l).take(l as usize))
            .collect();
        let without_call = {
            let (m, fm) = module_with(counted_loop(&uses, false), 5);
            allocate(&m, &fm, &m.functions[0].body, None)
        };
        let with_call = {
            let (m, fm) = module_with(counted_loop(&uses, true), 5);
            allocate(&m, &fm, &m.functions[0].body, None)
        };
        assert_eq!(without_call.stats.caller_saved_homed, 2);
        assert_eq!(with_call.stats.calls, 1);
        assert_eq!(
            with_call.stats.caller_saved_homed, 0,
            "a call in the hot loop must price r8/r9 homes out: {:?}",
            with_call.stats
        );
        // Callee-saved homes are free across calls and stay granted.
        assert_eq!(with_call.n_pinned, 3);
    }

    #[test]
    fn dead_stores_are_found_and_live_ones_kept() {
        // local 1 is set then never read -> dead; local 2 is set and
        // returned -> live.
        let body = vec![
            Instr::LocalGet(0),
            Instr::LocalSet(1), // pc 1: dead store
            Instr::LocalGet(0),
            Instr::LocalSet(2), // pc 3: live
            Instr::LocalGet(2),
            Instr::End,
        ];
        let (m, fm) = module_with(body, 2);
        let p = allocate(&m, &fm, &m.functions[0].body, None);
        assert!(p.is_dead_store(1));
        assert!(!p.is_dead_store(3));
        assert_eq!(p.stats.dead_stores, 1);
    }

    #[test]
    fn loop_backedge_keeps_locals_live() {
        // A set before the backedge is read on the next trip: not dead.
        let body = vec![
            Instr::Loop(BlockType::Empty),
            Instr::LocalGet(1),
            Instr::I32Const(1),
            Instr::I32Add,
            Instr::LocalSet(1), // pc 4: live around the backedge
            Instr::LocalGet(0),
            Instr::BrIf(0),
            Instr::End,
            Instr::LocalGet(0),
            Instr::End,
        ];
        let (m, fm) = module_with(body, 1);
        let p = allocate(&m, &fm, &m.functions[0].body, None);
        assert!(
            !p.is_dead_store(4),
            "backedge-carried local must stay live: {:?}",
            p.dead_stores
        );
    }

    #[test]
    fn allocation_is_deterministic() {
        let uses: Vec<u32> = (1..6).collect();
        let (m, fm) = module_with(counted_loop(&uses, false), 5);
        let a = allocate(&m, &fm, &m.functions[0].body, None);
        let b = allocate(&m, &fm, &m.functions[0].body, None);
        assert_eq!(a.homes, b.homes);
        assert_eq!(a.dead_stores, b.dead_stores);
        assert_eq!(a.stats, b.stats);
    }
}
