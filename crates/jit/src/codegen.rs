//! The baseline code generator: one pass over validated wasm, Liftoff-style.
//!
//! Values live on an *abstract stack* whose entries are either pinned to
//! their canonical frame slot, held in a register, or known constants. At
//! every control-flow boundary the stack is flushed to its canonical slots,
//! so label targets have a single well-known layout. Within straight-line
//! code, operands stay in registers.
//!
//! Register conventions (callee-saved pins set up by the entry trampoline):
//!
//! * `r15` — the [`crate::runtime::VmCtx`] pointer
//! * `r14` — linear-memory base
//! * `r11`, `xmm14/15` — scratch, never allocated
//! * `rax rcx rdx rsi rdi r8 r9 r10` and `xmm0‑xmm13` — allocation pools
//!
//! Bounds-checking strategies lower exactly as the paper describes (§3.1):
//! *none/mprotect/uffd* emit the raw access against the 8 GiB reservation;
//! *trap* emits `lea`+`cmp`+`ja` to a `ud2` stub; *clamp* emits
//! `lea`+`cmp`+`cmova` against the memory end.

use crate::asm::Xmm;
use crate::asm::{Asm, Cc, Label, Mem, Reg, W};
use crate::runtime::{self, ctx_off};
use lb_core::{BoundsStrategy, TrapKind};
use lb_wasm::instr::Instr;
use lb_wasm::validate::FuncMeta;
use lb_wasm::{Module, ValType, Value};
use std::collections::HashMap;

/// Code-quality tiers, mapping to the paper's engine profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptLevel {
    /// Baseline tier (V8 before tier-up): the abstract stack is flushed
    /// after every instruction — values never stay in registers.
    None,
    /// Register abstract stack (the Wasmtime-profile default).
    Basic,
    /// Mid-tier: `Basic` plus IR-driven linear-scan register homes for
    /// hot locals (`crate::regalloc`), dead-store elimination, and the
    /// `Full` redundancy passes. Register assignment comes from liveness
    /// over the three-address IR rather than a first-locals heuristic.
    Mid,
    /// `Basic` plus constant folding and redundant-bounds-check
    /// elimination (the WAVM/LLVM-profile stand-in).
    Full,
}

/// Everything compilation needs besides the function itself.
#[derive(Debug, Clone, Copy)]
pub struct CompileParams<'a> {
    /// The module being compiled.
    pub module: &'a Module,
    /// Validation metadata for all defined functions.
    pub metas: &'a [FuncMeta],
    /// The bounds-checking strategy to emit.
    pub strategy: BoundsStrategy,
    /// Optimization tier.
    pub opt: OptLevel,
    /// Emit safepoint polls at loop back-edges (V8 profile).
    pub safepoints: bool,
    /// Address of function-pointer table entry 0.
    pub funcptrs_base: usize,
    /// Module-level bounds-check plan from `lb-analysis`. `None` falls
    /// back to the legacy per-basic-block peephole (kept for differential
    /// testing).
    pub plans: Option<&'a lb_analysis::ModulePlan>,
    /// Run the IR dataflow guard optimizations (`crate::dataflow`):
    /// dominance-based redundant-guard elimination and guard/access
    /// fusion. Consulted at the mid tier under the trap strategy only;
    /// supersedes the legacy peephole there.
    pub guardopt: bool,
    /// The module's fused-guard extent table
    /// ([`crate::dataflow::module_extents`]); the runtime programs the
    /// same table into `VmCtx::limit_extents`. Empty disables fusion.
    pub limit_extents: &'a [u64],
}

/// Telemetry counters for bounds-check decisions, cached because counter
/// registration takes a lock and these sites run once per compiled access.
struct CheckCounters {
    elided: lb_telemetry::Counter,
    hoisted: lb_telemetry::Counter,
    emitted: lb_telemetry::Counter,
    static_oob: lb_telemetry::Counter,
    gvn_elided: lb_telemetry::Counter,
    fused: lb_telemetry::Counter,
}

fn check_counters() -> &'static CheckCounters {
    static C: std::sync::OnceLock<CheckCounters> = std::sync::OnceLock::new();
    C.get_or_init(|| CheckCounters {
        elided: lb_telemetry::counter("jit.checks.static_elided"),
        hoisted: lb_telemetry::counter("jit.checks.hoisted"),
        emitted: lb_telemetry::counter("jit.checks.emitted"),
        static_oob: lb_telemetry::counter("jit.checks.static_oob"),
        gvn_elided: lb_telemetry::counter("jit.checks.gvn_elided"),
        fused: lb_telemetry::counter("jit.checks.fused"),
    })
}

/// Telemetry counters for the mid-tier's redundant-access elimination,
/// incremented at compile time (per site lowered, not per execution).
struct MidtierCounters {
    /// Caller-saved home save/reload pairs emitted around call-like sites.
    spills: lb_telemetry::Counter,
    /// `local.get`s satisfied from a register home (no slot reload).
    reloads_elided: lb_telemetry::Counter,
    /// Dead `local.set`s dropped entirely.
    dead_stores_elided: lb_telemetry::Counter,
}

fn midtier_counters() -> &'static MidtierCounters {
    static C: std::sync::OnceLock<MidtierCounters> = std::sync::OnceLock::new();
    C.get_or_init(|| MidtierCounters {
        spills: lb_telemetry::counter("jit.midtier.spills"),
        reloads_elided: lb_telemetry::counter("jit.midtier.reloads_elided"),
        dead_stores_elided: lb_telemetry::counter("jit.midtier.dead_stores_elided"),
    })
}

const INT_POOL: [Reg; 8] = [
    Reg::RAX,
    Reg::RCX,
    Reg::RDX,
    Reg::RSI,
    Reg::RDI,
    Reg::R8,
    Reg::R9,
    Reg::R10,
];
const SCRATCH: Reg = Reg::R11;
const FSCRATCH: Xmm = Xmm(15);
const F_POOL_N: u8 = 14; // xmm0..xmm13

const INT_ARGS: [Reg; 6] = [Reg::RDI, Reg::RSI, Reg::RDX, Reg::RCX, Reg::R8, Reg::R9];

#[derive(Debug, Clone, Copy, PartialEq)]
enum AVal {
    /// Value lives in its canonical frame slot (slot index == position).
    Slot,
    /// Value in an integer register (i32 values keep the upper half zero;
    /// float values may live here bit-identically after `select`).
    I(Reg),
    /// Value in an SSE register.
    F(Xmm),
    /// Known constant.
    C(Value),
    /// Alias of a local pinned in a callee-saved register (`Full` opt).
    /// The register is never owned by the pool; consumers copy out of it,
    /// and `local.set` snapshots live aliases first.
    P(Reg),
}

/// Callee-saved registers available for local pinning (WAVM profile) and
/// mid-tier register homes (in allocation-priority order).
pub const PIN_REGS: [Reg; 3] = [Reg::RBX, Reg::R12, Reg::R13];

struct Gen<'a> {
    a: Asm,
    p: CompileParams<'a>,
    fmeta: &'a FuncMeta,
    body: &'a [Instr],
    /// Plan for this function, when module analysis ran.
    plan: Option<&'a lb_analysis::FuncPlan>,
    /// Program counter of the instruction currently being lowered (indexes
    /// into the plan).
    cur_pc: usize,
    n_locals: usize,
    local_types: &'a [ValType],
    stack: Vec<AVal>,
    free_i: Vec<Reg>,
    free_f: Vec<Xmm>,
    labels: HashMap<u32, Label>,
    loop_headers: std::collections::HashSet<u32>,
    /// Loop-versioning context while a hoisted loop's fast (1) or slow (2)
    /// copy is being emitted: `(loop_pc, end_pc, copy)`.
    copy_ctx: Option<(u32, u32, u8)>,
    /// Per-copy duplicates of branch-target labels inside the versioned
    /// range, keyed by `(dest_pc, copy)` — the backedge of each copy must
    /// re-enter that same copy.
    copy_labels: HashMap<(u32, u8), Label>,
    trap_labels: [Option<Label>; 12],
    end_label: Label,
    end_label_used: bool,
    dead: bool,
    depth: i32,
    /// Redundant-bounds-check elimination (`Full`, trap strategy):
    /// (local, shift, max checked addend+extent) — see `track_origin`.
    checked: HashMap<(u32, u8), u64>,
    /// Provenance of register values for check elimination.
    origin: HashMap<u8, (u32, u8, u64)>,
    /// Locals pinned to callee-saved registers (`Full` opt only) or to
    /// mid-tier register homes (`Mid`, callee- and caller-saved).
    pinned: HashMap<u32, Reg>,
    /// Number of pinned (saved) registers, in PIN_REGS order.
    n_pinned: usize,
    /// Mid-tier allocation plan (register homes, dead stores). `Mid` only.
    midplan: Option<crate::regalloc::MidPlan>,
    /// IR dataflow guard decisions by wasm pc (`Mid` + trap + guardopt
    /// only; empty otherwise). When non-empty the legacy peephole is
    /// superseded.
    guardopt: HashMap<u32, lb_analysis::GuardOpt>,
    /// Whether the guard-optimization pass ran for this function (even if
    /// it produced no decisions — still disables the legacy peephole so
    /// on/off runs differ only by the dataflow pass itself).
    guardopt_on: bool,
    /// Caller-saved registers withheld from the allocation pools because
    /// they serve as mid-tier homes.
    reserved: Vec<Reg>,
    /// `(code_offset, wasm_pc)` per lowered instruction — the
    /// wasm-offset side table the profiler resolves samples through.
    pc_map: Vec<(u32, u32)>,
}

fn full_pools() -> (Vec<Reg>, Vec<Xmm>) {
    (
        INT_POOL.to_vec(),
        (0..F_POOL_N).map(Xmm).collect::<Vec<_>>(),
    )
}

/// The imm32 whose sign-extended 64-bit image equals the value's slot
/// representation (slots hold 64 bits, i32/f32 zero-extended), if any.
fn const_as_imm32(v: Value) -> Option<i32> {
    match v {
        Value::I32(i) if i >= 0 => Some(i),
        Value::I64(i) => i32::try_from(i).ok(),
        Value::F32(f) if f.to_bits() <= i32::MAX as u32 => Some(f.to_bits() as i32),
        Value::F64(f) => i32::try_from(f.to_bits() as i64).ok(),
        _ => None,
    }
}

/// Compile one defined function to machine code (self-contained except for
/// absolute helper/funcptr addresses embedded as immediates).
pub fn compile_function(p: CompileParams<'_>, defined_idx: usize) -> Vec<u8> {
    compile_function_mapped(p, defined_idx).0
}

/// [`compile_function`], additionally returning the `(code_offset,
/// wasm_pc)` side table recorded while lowering. Offsets are relative to
/// the function start; entries are sorted by code offset (the walk is
/// front-to-back) and one entry is recorded per wasm instruction, so
/// consecutive entries may share an offset when lowering emitted nothing
/// (dead code, stack-only bookkeeping).
pub fn compile_function_mapped(
    p: CompileParams<'_>,
    defined_idx: usize,
) -> (Vec<u8>, Vec<(u32, u32)>) {
    let func = &p.module.functions[defined_idx];
    let fmeta = &p.metas[defined_idx];
    let plan = p.plans.and_then(|mp| mp.funcs.get(defined_idx));
    let midplan = (p.opt == OptLevel::Mid)
        .then(|| crate::regalloc::allocate(p.module, fmeta, &func.body, plan));
    let guardopt_on = p.guardopt && p.opt == OptLevel::Mid && p.strategy == BoundsStrategy::Trap;
    let guardopt: HashMap<u32, lb_analysis::GuardOpt> = if guardopt_on {
        crate::dataflow::decide(p.module, fmeta, &func.body, plan, p.limit_extents)
            .into_iter()
            .collect()
    } else {
        HashMap::new()
    };
    let reserved: Vec<Reg> = midplan.as_ref().map_or(Vec::new(), |mp| {
        mp.caller_saved().iter().map(|&(_, r)| r).collect()
    });
    let (mut free_i, free_f) = full_pools();
    free_i.retain(|r| !reserved.contains(r));
    let mut a = Asm::new();
    let end_label = a.label();
    let mut g = Gen {
        a,
        p,
        fmeta,
        body: &func.body,
        plan,
        cur_pc: 0,
        n_locals: fmeta.local_types.len(),
        local_types: &fmeta.local_types,
        stack: Vec::new(),
        free_i,
        free_f,
        labels: HashMap::new(),
        loop_headers: std::collections::HashSet::new(),
        copy_ctx: None,
        copy_labels: HashMap::new(),
        trap_labels: [None; 12],
        end_label,
        end_label_used: false,
        dead: false,
        depth: 0,
        checked: HashMap::new(),
        origin: HashMap::new(),
        pinned: HashMap::new(),
        n_pinned: 0,
        midplan,
        guardopt,
        guardopt_on,
        reserved,
        pc_map: Vec::with_capacity(func.body.len()),
    };
    if let Some(mp) = &g.midplan {
        // Mid-tier: homes come from linear-scan allocation over the IR —
        // liveness-weighted, not first-come — plus up to two caller-saved
        // homes the `Full` heuristic cannot use.
        g.pinned = mp.homes().iter().copied().collect();
        g.n_pinned = mp.n_pinned;
    } else if p.opt == OptLevel::Full {
        // Pin the first few integer locals (loop counters, bases) in
        // callee-saved registers — the optimizing-AOT register allocation
        // that separates the WAVM profile from the baseline tiers.
        let mut k = 0;
        for (l, ty) in fmeta.local_types.iter().enumerate() {
            if k == PIN_REGS.len() {
                break;
            }
            if ty.is_int() {
                g.pinned.insert(l as u32, PIN_REGS[k]);
                k += 1;
            }
        }
        g.n_pinned = k;
    }
    g.collect_labels();
    g.prologue();
    g.walk();
    g.epilogue_and_stubs();
    let pc_map = std::mem::take(&mut g.pc_map);
    (g.a.finish(), pc_map)
}

impl<'a> Gen<'a> {
    // ── frame addressing ───────────────────────────────────────────

    fn local_mem(&self, l: u32) -> Mem {
        Mem::base(Reg::RBP, -8 * (self.n_pinned as i32 + 1 + l as i32))
    }

    fn slot_mem(&self, s: usize) -> Mem {
        Mem::base(
            Reg::RBP,
            -8 * (self.n_pinned as i32 + 1 + self.n_locals as i32 + s as i32),
        )
    }

    fn frame_size(&self) -> i32 {
        let slots = self.n_locals + self.fmeta.max_stack as usize + 2;
        let mut f = (((slots * 8) + 15) & !15) as i32;
        if self.n_pinned % 2 == 1 {
            // Keep rsp 16-aligned past the odd number of saved registers.
            f += 8;
        }
        f
    }

    // ── register pools ─────────────────────────────────────────────

    fn alloc_i_ex(&mut self, ex: &[Reg]) -> Reg {
        if let Some(pos) = self.free_i.iter().position(|r| !ex.contains(r)) {
            return self.free_i.remove(pos);
        }
        // Spill the lowest stack entry holding a usable int register.
        for idx in 0..self.stack.len() {
            if let AVal::I(r) = self.stack[idx] {
                if !ex.contains(&r) {
                    self.spill_entry(idx);
                    let pos = self
                        .free_i
                        .iter()
                        .position(|x| *x == r)
                        .expect("spilled reg returns to pool");
                    return self.free_i.remove(pos);
                }
            }
        }
        panic!("out of integer registers");
    }

    fn alloc_i(&mut self) -> Reg {
        self.alloc_i_ex(&[])
    }

    fn alloc_f(&mut self) -> Xmm {
        if let Some(x) = self.free_f.pop() {
            return x;
        }
        for idx in 0..self.stack.len() {
            if matches!(self.stack[idx], AVal::F(_)) {
                self.spill_entry(idx);
                return self.free_f.pop().expect("spilled xmm returns to pool");
            }
        }
        panic!("out of float registers");
    }

    fn claim_i(&mut self, r: Reg) {
        let pos = self
            .free_i
            .iter()
            .position(|x| *x == r)
            .unwrap_or_else(|| panic!("register {r:?} not free"));
        self.free_i.remove(pos);
    }

    fn release_i(&mut self, r: Reg) {
        debug_assert!(!self.free_i.contains(&r));
        self.free_i.push(r);
        self.origin.remove(&r.0);
    }

    fn release_f(&mut self, x: Xmm) {
        debug_assert!(!self.free_f.contains(&x));
        self.free_f.push(x);
    }

    fn free_val(&mut self, v: AVal) {
        match v {
            AVal::I(r) => self.release_i(r),
            AVal::F(x) => self.release_f(x),
            AVal::Slot | AVal::C(_) | AVal::P(_) => {}
        }
    }

    // ── abstract stack ─────────────────────────────────────────────

    fn spill_entry(&mut self, idx: usize) {
        let m = self.slot_mem(idx);
        match self.stack[idx] {
            AVal::Slot => return,
            AVal::I(r) => {
                self.a.mov_mr(W::W64, m, r);
                self.release_i(r);
            }
            AVal::F(x) => {
                self.a.fstore(true, m, x);
                self.release_f(x);
            }
            AVal::C(v) => {
                if self.p.opt == OptLevel::Mid {
                    if let Some(imm) = const_as_imm32(v) {
                        // Single store, no scratch round-trip: the slot's
                        // 64-bit image equals the sign-extended imm32.
                        self.a.mov_mi(m, imm);
                        self.stack[idx] = AVal::Slot;
                        return;
                    }
                }
                match v {
                    Value::I32(i) => self.a.mov_ri32(SCRATCH, i),
                    Value::F32(f) => self.a.mov_ri32(SCRATCH, f.to_bits() as i32),
                    Value::I64(i) => self.a.mov_ri64(SCRATCH, i),
                    Value::F64(f) => self.a.mov_ri64(SCRATCH, f.to_bits() as i64),
                }
                // mov_ri32 zero-extends, keeping the slot's upper half clean.
                self.a.mov_mr(W::W64, m, SCRATCH);
            }
            AVal::P(r) => {
                // Snapshot the pinned local's current value; the register
                // stays pinned (never returned to the pool).
                self.a.mov_mr(W::W64, m, r);
            }
        }
        self.stack[idx] = AVal::Slot;
    }

    fn spill_all(&mut self) {
        for i in 0..self.stack.len() {
            self.spill_entry(i);
        }
        // Note: registers popped by the current lowering may still be held;
        // only *stack entries* are guaranteed spilled here.
        self.origin.clear();
    }

    /// Before overwriting a pinned local, snapshot any stack entries that
    /// alias it into their canonical slots.
    fn materialize_pinned_aliases(&mut self, pr: Reg) {
        for i in 0..self.stack.len() {
            if self.stack[i] == AVal::P(pr) {
                self.spill_entry(i);
            }
        }
    }

    fn spill_regs(&mut self, regs: &[Reg]) {
        for i in 0..self.stack.len() {
            if let AVal::I(r) = self.stack[i] {
                if regs.contains(&r) {
                    self.spill_entry(i);
                }
            }
        }
    }

    fn push_i(&mut self, r: Reg) {
        self.stack.push(AVal::I(r));
    }

    fn push_f(&mut self, x: Xmm) {
        self.stack.push(AVal::F(x));
    }

    /// Pop into an integer register (cross-bank and materializing moves as
    /// needed). i32/f32 values keep the upper 32 bits zero.
    fn pop_i_ex(&mut self, ex: &[Reg]) -> Reg {
        let idx = self.stack.len() - 1;
        let v = self.stack.pop().expect("validated stack");
        match v {
            AVal::I(r) if !ex.contains(&r) => r,
            AVal::I(r) => {
                let d = self.alloc_i_ex(ex);
                self.a.mov_rr(W::W64, d, r);
                self.release_i(r);
                d
            }
            AVal::F(x) => {
                let d = self.alloc_i_ex(ex);
                self.a.movq_rx(W::W64, d, x);
                self.release_f(x);
                d
            }
            AVal::C(c) => {
                let d = self.alloc_i_ex(ex);
                match c {
                    Value::I32(v) => self.a.mov_ri32(d, v),
                    Value::F32(f) => self.a.mov_ri32(d, f.to_bits() as i32),
                    Value::I64(v) => self.a.mov_ri64(d, v),
                    Value::F64(f) => self.a.mov_ri64(d, f.to_bits() as i64),
                }
                d
            }
            AVal::Slot => {
                let d = self.alloc_i_ex(ex);
                let m = self.slot_mem(idx);
                self.a.mov_rm(W::W64, d, m);
                d
            }
            AVal::P(r) => {
                // Copy out of the pinned register: consumers may mutate.
                let d = self.alloc_i_ex(ex);
                self.a.mov_rr(W::W64, d, r);
                d
            }
        }
    }

    fn pop_i(&mut self) -> Reg {
        self.pop_i_ex(&[])
    }

    /// Pop for a *read-only* consumer: pinned-local aliases are returned
    /// directly (no copy, not owned); everything else is materialized into
    /// an owned register. Returns `(reg, owned)`; call [`Gen::done_read`].
    fn pop_i_read(&mut self, ex: &[Reg]) -> (Reg, bool) {
        if let Some(AVal::P(r)) = self.stack.last().copied() {
            self.stack.pop();
            return (r, false);
        }
        (self.pop_i_ex(ex), true)
    }

    fn done_read(&mut self, r: Reg, owned: bool) {
        if owned {
            self.release_i(r);
        }
    }

    fn pop_f(&mut self) -> Xmm {
        let idx = self.stack.len() - 1;
        let v = self.stack.pop().expect("validated stack");
        match v {
            AVal::F(x) => x,
            AVal::I(r) => {
                let d = self.alloc_f();
                self.a.movq_xr(W::W64, d, r);
                self.release_i(r);
                d
            }
            AVal::C(c) => {
                let d = self.alloc_f();
                match c {
                    Value::F64(f) => self.a.mov_ri64(SCRATCH, f.to_bits() as i64),
                    Value::F32(f) => self.a.mov_ri32(SCRATCH, f.to_bits() as i32),
                    Value::I64(v) => self.a.mov_ri64(SCRATCH, v),
                    Value::I32(v) => self.a.mov_ri32(SCRATCH, v),
                }
                self.a.movq_xr(W::W64, d, SCRATCH);
                d
            }
            AVal::Slot => {
                let d = self.alloc_f();
                let m = self.slot_mem(idx);
                self.a.fload(true, d, m);
                d
            }
            AVal::P(r) => {
                let d = self.alloc_f();
                self.a.movq_xr(W::W64, d, r);
                d
            }
        }
    }

    /// Pop into a *specific* integer register (claimed for the caller).
    fn pop_to_fixed(&mut self, target: Reg) {
        // No stack entry below the top may occupy the target.
        self.spill_regs(&[target]);
        if let Some(AVal::I(r)) = self.stack.last().copied() {
            if r == target {
                self.stack.pop();
                return;
            }
        }
        let r = self.pop_i();
        if r != target {
            self.claim_i(target);
            self.a.mov_rr(W::W64, target, r);
            self.release_i(r);
        }
    }

    // ── trap stubs & labels ────────────────────────────────────────

    fn trap_label(&mut self, kind: TrapKind) -> Label {
        let code = kind.code() as usize;
        if let Some(l) = self.trap_labels[code] {
            return l;
        }
        let l = self.a.label();
        self.trap_labels[code] = Some(l);
        l
    }

    fn collect_labels(&mut self) {
        let mut dests: Vec<u32> = Vec::new();
        for (pc, instr) in self.body.iter().enumerate() {
            match instr {
                Instr::If(_) | Instr::Else => dests.push(self.fmeta.ctrl[pc]),
                Instr::Br(_) | Instr::BrIf(_) => {
                    dests.push(self.fmeta.branch_table[self.fmeta.ctrl[pc] as usize].dest_pc);
                }
                Instr::BrTable(t) => {
                    let base = self.fmeta.ctrl[pc] as usize;
                    for k in 0..=t.targets.len() {
                        dests.push(self.fmeta.branch_table[base + k].dest_pc);
                    }
                }
                Instr::Loop(_) => {
                    self.loop_headers.insert(pc as u32 + 1);
                }
                _ => {}
            }
        }
        for d in dests {
            if d == self.fmeta.body_len {
                self.end_label_used = true;
                continue;
            }
            if !self.labels.contains_key(&d) {
                let l = self.a.label();
                self.labels.insert(d, l);
            }
        }
    }

    fn label_height(&self, pc: u32) -> usize {
        self.fmeta.height_at[pc as usize] as usize
    }

    /// The label a branch to `dest` resolves to: the per-copy duplicate
    /// when `dest` lies inside the loop range currently being versioned
    /// (the backedge must re-enter the same copy), the shared label
    /// otherwise (loop exits converge outside the range).
    fn jump_label(&mut self, dest: u32) -> Label {
        if let Some((lp, ep, copy)) = self.copy_ctx {
            if dest > lp && dest <= ep {
                return self.copy_label(dest, copy);
            }
        }
        self.labels[&dest]
    }

    /// The label to bind at `pc`, if any. Inside a versioned copy the
    /// range's own targets bind their per-copy duplicates; the `Loop` pc
    /// itself was already handled by the preheader.
    fn bind_label_at(&mut self, pc: u32) -> Option<Label> {
        if let Some((lp, ep, copy)) = self.copy_ctx {
            if pc >= lp && pc <= ep {
                if pc == lp || !self.labels.contains_key(&pc) {
                    return None;
                }
                return Some(self.copy_label(pc, copy));
            }
        }
        self.labels.get(&pc).copied()
    }

    fn copy_label(&mut self, pc: u32, copy: u8) -> Label {
        if let Some(&l) = self.copy_labels.get(&(pc, copy)) {
            return l;
        }
        let l = self.a.label();
        self.copy_labels.insert((pc, copy), l);
        l
    }

    fn in_fast_copy(&self) -> bool {
        matches!(self.copy_ctx, Some((_, _, 1)))
    }

    // ── prologue / epilogue ────────────────────────────────────────

    fn prologue(&mut self) {
        self.a.push(Reg::RBP);
        self.a.mov_rr(W::W64, Reg::RBP, Reg::RSP);
        for k in 0..self.n_pinned {
            self.a.push(PIN_REGS[k]);
        }
        self.a.sub_ri(W::W64, Reg::RSP, self.frame_size());
        // Stack-overflow check (one of wasm's safety mechanisms the paper
        // lists alongside bounds checks).
        self.a
            .cmp_rm(W::W64, Reg::RSP, Mem::base(Reg::R15, ctx_off::STACK_LIMIT));
        let so = self.trap_label(TrapKind::StackOverflow);
        self.a.jcc(Cc::B, so);
        // Park incoming arguments in their local slots. The mid-tier
        // always parks to the slot first and loads register homes
        // afterwards: its caller-saved homes (r8/r9) double as the 5th
        // and 6th integer argument registers, so a direct move could
        // clobber an argument not yet parked.
        let mid = self.p.opt == OptLevel::Mid;
        let n_params = self.fmeta.n_params as usize;
        let mut ii = 0usize;
        let mut fi = 0usize;
        for i in 0..n_params {
            let m = self.local_mem(i as u32);
            match self.local_types[i] {
                ValType::I32 | ValType::I64 => {
                    match self.pinned.get(&(i as u32)) {
                        Some(&pr) if !mid => self.a.mov_rr(W::W64, pr, INT_ARGS[ii]),
                        _ => self.a.mov_mr(W::W64, m, INT_ARGS[ii]),
                    }
                    ii += 1;
                }
                ValType::F32 | ValType::F64 => {
                    self.a.fstore(true, m, Xmm(fi as u8));
                    fi += 1;
                }
            }
        }
        if mid {
            for i in 0..n_params {
                if let Some(&pr) = self.pinned.get(&(i as u32)) {
                    let m = self.local_mem(i as u32);
                    self.a.mov_rm(W::W64, pr, m);
                }
            }
        }
        // Zero the declared locals.
        if self.n_locals > n_params {
            self.a.xor_rr(W::W64, SCRATCH, SCRATCH);
            for i in n_params..self.n_locals {
                if let Some(&pr) = self.pinned.get(&(i as u32)) {
                    self.a.xor_rr(W::W64, pr, pr);
                } else {
                    let m = self.local_mem(i as u32);
                    self.a.mov_mr(W::W64, m, SCRATCH);
                }
            }
        }
    }

    fn emit_epilogue(&mut self) {
        if let Some(res) = self.fmeta.result {
            let m = self.slot_mem(0);
            match res {
                ValType::I32 | ValType::I64 => self.a.mov_rm(W::W64, Reg::RAX, m),
                ValType::F32 | ValType::F64 => self.a.fload(true, Xmm(0), m),
            }
        }
        if self.n_pinned > 0 {
            let m = Mem::base(Reg::RBP, -8 * self.n_pinned as i32);
            self.a.lea(W::W64, Reg::RSP, m);
            for k in (0..self.n_pinned).rev() {
                self.a.pop(PIN_REGS[k]);
            }
        } else {
            self.a.mov_rr(W::W64, Reg::RSP, Reg::RBP);
        }
        self.a.pop(Reg::RBP);
        self.a.ret();
    }

    fn epilogue_and_stubs(&mut self) {
        for code in 0..self.trap_labels.len() {
            if let Some(l) = self.trap_labels[code] {
                self.a.bind(l);
                self.a.ud2_trap(code as u8);
            }
        }
    }

    // ── control-flow plumbing ──────────────────────────────────────

    fn reset_stack_to(&mut self, height: usize) {
        self.stack.clear();
        self.stack.resize(height, AVal::Slot);
        let (mut fi, ff) = full_pools();
        fi.retain(|r| !self.reserved.contains(r));
        self.free_i = fi;
        self.free_f = ff;
        self.origin.clear();
        self.checked.clear();
    }

    /// Shuffle kept values into the destination's canonical layout, then
    /// jump. Stack must already be spilled.
    fn branch_to(&mut self, dest: lb_wasm::validate::BranchDest) {
        let cur = self.stack.len();
        let th = dest.target_height as usize;
        if dest.keep == 1 && cur - 1 != th {
            let src = self.slot_mem(cur - 1);
            let dst = self.slot_mem(th);
            self.a.mov_rm(W::W64, SCRATCH, src);
            self.a.mov_mr(W::W64, dst, SCRATCH);
        }
        if dest.dest_pc == self.fmeta.body_len {
            self.end_label_used = true;
            let l = self.end_label;
            self.a.jmp(l);
        } else {
            let l = self.jump_label(dest.dest_pc);
            self.a.jmp(l);
        }
    }

    fn branch_needs_shuffle(&self, dest: lb_wasm::validate::BranchDest) -> bool {
        dest.keep == 1 && self.stack.len() - 1 != dest.target_height as usize
    }

    fn emit_safepoint(&mut self) {
        // mov r11, [r15 + PAUSE_FLAG]; test; jz skip; cmp [r11],0; je skip;
        // call pause helper.
        let skip = self.a.label();
        self.a
            .mov_rm(W::W64, SCRATCH, Mem::base(Reg::R15, ctx_off::PAUSE_FLAG));
        self.a.test_rr(W::W64, SCRATCH, SCRATCH);
        self.a.jcc(Cc::E, skip);
        self.a.mov_rm(W::W32, SCRATCH, Mem::base(SCRATCH, 0));
        self.a.test_rr(W::W32, SCRATCH, SCRATCH);
        self.a.jcc(Cc::E, skip);
        // Save/reload stays inside the taken region: the untaken fast
        // path must not touch the homes.
        self.save_caller_homes();
        self.a.mov_rr(W::W64, Reg::RDI, Reg::R15);
        self.a
            .mov_ri64(SCRATCH, runtime::lb_jit_pause as *const () as usize as i64);
        self.a.call_r(SCRATCH);
        self.reload_caller_homes();
        self.a.bind(skip);
    }

    // ── helper-call plumbing ───────────────────────────────────────

    /// Caller-saved mid-tier homes do not survive a call: snapshot each
    /// into its local's canonical frame slot. Pairs with
    /// [`Gen::reload_caller_homes`] after the call instruction.
    fn save_caller_homes(&mut self) {
        let saves: Vec<(u32, Reg)> = self
            .midplan
            .as_ref()
            .map_or(Vec::new(), |mp| mp.caller_saved());
        if saves.is_empty() {
            return;
        }
        for &(l, r) in &saves {
            let m = self.local_mem(l);
            self.a.mov_mr(W::W64, m, r);
        }
        midtier_counters().spills.add(saves.len() as u64);
    }

    /// Restore caller-saved homes from their canonical slots after a
    /// call. Touches neither `rax` nor `xmm0`, so it is safe to emit
    /// before the call result is claimed.
    fn reload_caller_homes(&mut self) {
        let saves: Vec<(u32, Reg)> = self
            .midplan
            .as_ref()
            .map_or(Vec::new(), |mp| mp.caller_saved());
        for &(l, r) in &saves {
            let m = self.local_mem(l);
            self.a.mov_rm(W::W64, r, m);
        }
    }

    /// Call an `extern "C"` helper taking one f32/f64 argument (in xmm0)
    /// and returning an integer (rax). Used for trapping truncations.
    fn helper_f_to_i(&mut self, addr: usize) {
        self.spill_all();
        self.save_caller_homes();
        let top = self.stack.len() - 1;
        let m = self.slot_mem(top);
        self.a.fload(true, Xmm(0), m);
        self.stack.pop();
        self.a.mov_ri64(SCRATCH, addr as i64);
        self.a.call_r(SCRATCH);
        self.reload_caller_homes();
        self.claim_i(Reg::RAX);
        self.push_i(Reg::RAX);
    }

    /// Call a helper taking one u64 (rdi) returning float (xmm0).
    fn helper_i_to_f(&mut self, addr: usize) {
        self.spill_all();
        self.save_caller_homes();
        let top = self.stack.len() - 1;
        let m = self.slot_mem(top);
        self.a.mov_rm(W::W64, Reg::RDI, m);
        self.stack.pop();
        self.a.mov_ri64(SCRATCH, addr as i64);
        self.a.call_r(SCRATCH);
        self.reload_caller_homes();
        let x = Xmm(0);
        let pos = self.free_f.iter().position(|v| *v == x).expect("xmm0 free");
        self.free_f.remove(pos);
        self.push_f(x);
    }

    /// Call a helper taking two floats (xmm0, xmm1) returning float.
    fn helper_ff_to_f(&mut self, addr: usize) {
        self.spill_all();
        self.save_caller_homes();
        let n = self.stack.len();
        let (m0, m1) = (self.slot_mem(n - 2), self.slot_mem(n - 1));
        self.a.fload(true, Xmm(0), m0);
        self.a.fload(true, Xmm(1), m1);
        self.stack.pop();
        self.stack.pop();
        self.a.mov_ri64(SCRATCH, addr as i64);
        self.a.call_r(SCRATCH);
        self.reload_caller_homes();
        let x = Xmm(0);
        let pos = self.free_f.iter().position(|v| *v == x).expect("xmm0 free");
        self.free_f.remove(pos);
        self.push_f(x);
    }

    // ── memory access ──────────────────────────────────────────────

    /// Record provenance for check elimination: value in `r` is
    /// `local << shift` plus a non-negative addend.
    fn track_local_origin(&mut self, r: Reg, l: u32) {
        if matches!(self.p.opt, OptLevel::Full | OptLevel::Mid) {
            self.origin.insert(r.0, (l, 0, 0));
        }
    }

    /// Emit the bounds check + compute the access operand for a load/store
    /// of `size` bytes at popped address register `addr` plus `offset`.
    /// Returns the memory operand; the caller must `release_i(addr)` after
    /// the access.
    fn mem_operand(&mut self, addr: Reg, offset: u32, size: u32) -> Mem {
        use lb_analysis::CheckKind;
        let origin = self.origin.get(&addr.0).copied();
        // The analysis plan is consulted at the optimizing tiers only:
        // `OptLevel::None` models a baseline compiler that emits every
        // check (and is the differential-testing reference).
        let plan_kind = if self.p.opt == OptLevel::None {
            None
        } else {
            self.plan.map(|pl| pl.kind_at(self.cur_pc))
        };
        match self.p.strategy {
            BoundsStrategy::None | BoundsStrategy::Mprotect | BoundsStrategy::Uffd => {
                self.access_mem(addr, offset)
            }
            BoundsStrategy::Trap => {
                let extent = u64::from(offset) + u64::from(size);
                enum Act {
                    Skip,
                    Hoisted,
                    Check,
                    Dead,
                    /// IR dataflow proved a dominating guard covers this
                    /// access: emit nothing.
                    Gvn,
                    /// Fuse the guard with the access: one compare against
                    /// the module limit table, no flag-setup `lea`.
                    Fuse(u8),
                }
                // IR dataflow decisions (mid tier, guardopt on) take
                // precedence; they exist only for sites the plan marked
                // `Emit` (or plan-less sites) outside versioned ranges.
                let dec = self.guardopt.get(&(self.cur_pc as u32)).copied();
                let act = match (dec, plan_kind) {
                    (Some(lb_analysis::GuardOpt::GvnElide), _) => Act::Gvn,
                    (Some(lb_analysis::GuardOpt::Fuse(slot)), _) => Act::Fuse(slot),
                    // Both elisions are sound under trap: in-bounds is
                    // proven against the declared minimum memory, and a
                    // dominating check has already trapped any OOB path.
                    (_, Some(CheckKind::ElideInBounds | CheckKind::ElideDominated)) => Act::Skip,
                    // Fast-copy sites are covered by the preheader guard;
                    // the slow copy — and a loop body reached only through
                    // dead-code revival, where no guard ran — re-emits the
                    // full check.
                    (_, Some(CheckKind::ElideHoisted)) => {
                        if self.in_fast_copy() {
                            Act::Hoisted
                        } else {
                            Act::Check
                        }
                    }
                    (_, Some(CheckKind::StaticOob)) => Act::Dead,
                    // The plan never carries `ElideDominatedIr` (it is the
                    // dataflow pass's kind); treat it as `Emit` if seen.
                    (_, Some(CheckKind::Emit | CheckKind::ElideDominatedIr)) => Act::Check,
                    (_, None) => {
                        // Legacy per-basic-block peephole (Full): if an
                        // earlier check on the same (local, shift) origin
                        // covered at least this addend+extent, the access
                        // cannot newly go out of bounds. Kept as the
                        // fallback mode for differential testing; the IR
                        // dataflow pass supersedes it when active.
                        let mut skip = false;
                        if !self.guardopt_on && matches!(self.p.opt, OptLevel::Full | OptLevel::Mid)
                        {
                            if let Some((l, sh, add)) = origin {
                                let key = (l, sh);
                                let need = add + extent;
                                match self.checked.get(&key) {
                                    Some(&have) if have >= need => skip = true,
                                    _ => {
                                        self.checked.insert(key, need);
                                    }
                                }
                            }
                        }
                        if skip {
                            Act::Skip
                        } else {
                            Act::Check
                        }
                    }
                };
                let c = check_counters();
                match act {
                    Act::Skip => c.elided.inc(),
                    Act::Hoisted => c.hoisted.inc(),
                    Act::Gvn => c.gvn_elided.inc(),
                    Act::Fuse(slot) => {
                        // Fused guard: `addr < mem_limits[slot]` iff
                        // `addr + extent <= mem_size` (the limit saturates
                        // to 0 when the memory is smaller than the extent,
                        // making the check always-trap). One compare, one
                        // branch, no scratch `lea`.
                        c.fused.inc();
                        let m = Mem::base(Reg::R15, ctx_off::MEM_LIMITS + 8 * i32::from(slot));
                        self.a.cmp_rm(W::W64, addr, m);
                        let t = self.trap_label(TrapKind::OutOfBounds);
                        self.a.jcc(Cc::Ae, t);
                    }
                    Act::Dead => {
                        // Provably out of bounds: trap unconditionally.
                        // The access code that follows is unreachable but
                        // keeps register/stack bookkeeping uniform.
                        c.static_oob.inc();
                        let t = self.trap_label(TrapKind::OutOfBounds);
                        self.a.jmp(t);
                    }
                    Act::Check => {
                        c.emitted.inc();
                        match i32::try_from(extent) {
                            Ok(ext) => self.a.lea(W::W64, SCRATCH, Mem::base(addr, ext)),
                            Err(_) => {
                                // offset near u32::MAX: extent exceeds an
                                // i32 displacement (max < 2^33, fits i64).
                                self.a.mov_ri64(SCRATCH, extent as i64);
                                self.a.add_rr(W::W64, SCRATCH, addr);
                            }
                        }
                        self.a
                            .cmp_rm(W::W64, SCRATCH, Mem::base(Reg::R15, ctx_off::MEM_SIZE));
                        let t = self.trap_label(TrapKind::OutOfBounds);
                        self.a.jcc(Cc::A, t);
                    }
                }
                self.access_mem(addr, offset)
            }
            BoundsStrategy::Clamp => {
                let c = check_counters();
                // The static in-bounds proof survives clamping; so does a
                // fast-copy hoisted site (the preheader guard proved every
                // iteration in bounds, making the clamp the identity) and
                // a dominated site whose dominating fact was itself static
                // (`clamp_ok`: a dominating *clamp* redirects instead of
                // trapping and proves nothing dynamic, but a static fact
                // stands regardless of what the dominator emitted).
                let elide = match plan_kind {
                    Some(CheckKind::ElideInBounds) => {
                        c.elided.inc();
                        true
                    }
                    Some(CheckKind::ElideHoisted) if self.in_fast_copy() => {
                        c.hoisted.inc();
                        true
                    }
                    Some(CheckKind::ElideDominated)
                        if self.plan.is_some_and(|pl| pl.clamp_elidable(self.cur_pc)) =>
                    {
                        c.elided.inc();
                        true
                    }
                    _ => false,
                };
                if elide {
                    return self.access_mem(addr, offset);
                }
                c.emitted.inc();
                // ea = min(addr + offset, mem_size - size), as the paper's
                // clamp redirects out-of-bounds accesses to the memory end.
                match i32::try_from(offset) {
                    Ok(off) => self.a.lea(W::W64, SCRATCH, Mem::base(addr, off)),
                    Err(_) => {
                        self.a.mov_ri64(SCRATCH, i64::from(offset));
                        self.a.add_rr(W::W64, SCRATCH, addr);
                    }
                }
                let t = self.alloc_i();
                self.a
                    .mov_rm(W::W64, t, Mem::base(Reg::R15, ctx_off::MEM_SIZE));
                self.a.sub_ri(W::W64, t, size as i32);
                self.a.cmp_rr(W::W64, SCRATCH, t);
                self.a.cmov(W::W64, Cc::A, SCRATCH, t);
                self.release_i(t);
                Mem::bi(Reg::R14, SCRATCH, 0)
            }
        }
    }

    fn access_mem(&mut self, addr: Reg, offset: u32) -> Mem {
        match i32::try_from(offset) {
            Ok(disp) => Mem {
                base: Reg::R14,
                index: Some((addr, 1)),
                disp,
            },
            Err(_) => {
                self.a.mov_ri64(SCRATCH, i64::from(offset));
                self.a.add_rr(W::W64, SCRATCH, addr);
                Mem::bi(Reg::R14, SCRATCH, 0)
            }
        }
    }

    fn lower_load(&mut self, acc: lb_wasm::instr::MemAccess) {
        let (addr, owned) = self.pop_i_read(&[]);
        let m = self.mem_operand(addr, acc.memarg.offset, acc.bytes);
        use ValType::*;
        match (acc.ty, acc.bytes, acc.sign_extend) {
            (F32, 4, _) => {
                self.done_read(addr, owned);
                let x = self.alloc_f();
                self.a.fload(false, x, m);
                self.push_f(x);
                return;
            }
            (F64, 8, _) => {
                self.done_read(addr, owned);
                let x = self.alloc_f();
                self.a.fload(true, x, m);
                self.push_f(x);
                return;
            }
            _ => {}
        }
        // Integer loads reuse an owned address register as the destination
        // (legal: the load reads before the write for movzx/movsx/mov).
        let d = if owned { addr } else { self.alloc_i() };
        match (acc.ty, acc.bytes, acc.sign_extend) {
            (I32, 1, false) => self.a.movzx8(d, m),
            (I32, 1, true) => self.a.movsx8(W::W32, d, m),
            (I32, 2, false) => self.a.movzx16(d, m),
            (I32, 2, true) => self.a.movsx16(W::W32, d, m),
            (I32, 4, _) => self.a.mov_rm(W::W32, d, m),
            (I64, 1, false) => self.a.movzx8(d, m),
            (I64, 1, true) => self.a.movsx8(W::W64, d, m),
            (I64, 2, false) => self.a.movzx16(d, m),
            (I64, 2, true) => self.a.movsx16(W::W64, d, m),
            (I64, 4, false) => self.a.mov_rm(W::W32, d, m),
            (I64, 4, true) => self.a.movsxd_m(d, m),
            (I64, 8, _) => self.a.mov_rm(W::W64, d, m),
            other => unreachable!("load shape {other:?}"),
        }
        self.origin.remove(&d.0);
        self.push_i(d);
    }

    fn lower_store(&mut self, acc: lb_wasm::instr::MemAccess) {
        use ValType::*;
        match acc.ty {
            F32 | F64 => {
                let v = self.pop_f();
                let addr = self.pop_i();
                let m = self.mem_operand(addr, acc.memarg.offset, acc.bytes);
                self.a.fstore(acc.bytes == 8, m, v);
                self.release_i(addr);
                self.release_f(v);
            }
            I32 | I64 => {
                let (v, vo) = self.pop_i_read(&[]);
                let (addr, ao) = self.pop_i_read(&[v]);
                let m = self.mem_operand(addr, acc.memarg.offset, acc.bytes);
                match acc.bytes {
                    1 => self.a.mov_mr8(m, v),
                    2 => self.a.mov_mr16(m, v),
                    4 => self.a.mov_mr(W::W32, m, v),
                    8 => self.a.mov_mr(W::W64, m, v),
                    other => unreachable!("store width {other}"),
                }
                self.done_read(addr, ao);
                self.done_read(v, vo);
            }
        }
    }

    // ── calls ──────────────────────────────────────────────────────

    fn load_abi_args(&mut self, params: &[ValType], base_slot: usize) {
        let mut ii = 0usize;
        let mut fi = 0usize;
        for (i, ty) in params.iter().enumerate() {
            let m = self.slot_mem(base_slot + i);
            match ty {
                ValType::I32 | ValType::I64 => {
                    self.a.mov_rm(W::W64, INT_ARGS[ii], m);
                    ii += 1;
                }
                ValType::F32 | ValType::F64 => {
                    self.a.fload(true, Xmm(fi as u8), m);
                    fi += 1;
                }
            }
        }
    }

    fn push_call_result(&mut self, result: Option<ValType>) {
        match result {
            Some(ValType::I32 | ValType::I64) => {
                self.claim_i(Reg::RAX);
                self.push_i(Reg::RAX);
            }
            Some(ValType::F32 | ValType::F64) => {
                let pos = self
                    .free_f
                    .iter()
                    .position(|v| *v == Xmm(0))
                    .expect("xmm0 free after spill");
                self.free_f.remove(pos);
                self.push_f(Xmm(0));
            }
            None => {}
        }
    }

    fn lower_call(&mut self, fi: u32) {
        let ty = self.p.module.func_type(fi).expect("validated call").clone();
        let ni = self.p.module.num_imported_funcs();
        self.spill_all();
        self.checked.clear();
        self.save_caller_homes();
        let n = ty.params.len();
        let base_slot = self.stack.len() - n;
        if fi < ni {
            // Host import: args are already a (descending) array in the
            // frame; hand the helper a pointer to arg0's slot.
            let ptr_slot = if n > 0 { base_slot } else { self.stack.len() };
            self.a.mov_rr(W::W64, Reg::RDI, Reg::R15);
            self.a.mov_ri32(Reg::RSI, fi as i32);
            let pm = self.slot_mem(ptr_slot);
            self.a.lea(W::W64, Reg::RDX, pm);
            self.a.xor_rr(W::W32, Reg::RCX, Reg::RCX);
            self.a
                .mov_ri64(SCRATCH, runtime::lb_jit_host as *const () as usize as i64);
            self.a.call_r(SCRATCH);
            self.reload_caller_homes();
            self.stack.truncate(base_slot);
            if ty.result().is_some() {
                // Result was written into the arg0 slot (== new top).
                self.stack.push(AVal::Slot);
            }
        } else {
            self.load_abi_args(&ty.params, base_slot);
            self.stack.truncate(base_slot);
            self.a
                .mov_ri64(SCRATCH, (self.p.funcptrs_base + fi as usize * 8) as i64);
            self.a.call_m(Mem::base(SCRATCH, 0));
            self.reload_caller_homes();
            self.push_call_result(ty.result());
        }
    }

    fn lower_call_indirect(&mut self, type_idx: u32) {
        let ty = self.p.module.types[type_idx as usize].clone();
        self.pop_to_fixed(Reg::R10);
        self.spill_all();
        self.checked.clear();
        self.save_caller_homes();
        // Bounds-check the table index.
        self.a
            .cmp_rm(W::W64, Reg::R10, Mem::base(Reg::R15, ctx_off::TABLE_LEN));
        let oob = self.trap_label(TrapKind::TableOutOfBounds);
        self.a.jcc(Cc::Ae, oob);
        // entry = table + idx * 16
        self.a
            .mov_rm(W::W64, SCRATCH, Mem::base(Reg::R15, ctx_off::TABLE));
        self.a.shl_i(W::W64, Reg::R10, 4);
        self.a.add_rr(W::W64, SCRATCH, Reg::R10);
        // func_idx, or MAX for uninitialized slots.
        self.a.mov_rm(W::W64, Reg::R10, Mem::base(SCRATCH, 0));
        self.a.cmp_ri(W::W64, Reg::R10, -1);
        let uninit = self.trap_label(TrapKind::UninitializedElement);
        self.a.jcc(Cc::E, uninit);
        // Signature check (the paper's indirect-call safety check).
        self.a.mov_rm(W::W64, SCRATCH, Mem::base(SCRATCH, 8));
        self.a.cmp_ri(W::W64, SCRATCH, type_idx as i32);
        let mismatch = self.trap_label(TrapKind::IndirectCallTypeMismatch);
        self.a.jcc(Cc::Ne, mismatch);

        let n = ty.params.len();
        let base_slot = self.stack.len() - n;
        self.load_abi_args(&ty.params, base_slot);
        self.stack.truncate(base_slot);
        self.a.mov_ri64(SCRATCH, self.p.funcptrs_base as i64);
        self.a.mov_rm(
            W::W64,
            Reg::R10,
            Mem {
                base: SCRATCH,
                index: Some((Reg::R10, 8)),
                disp: 0,
            },
        );
        self.a.call_r(Reg::R10);
        self.reload_caller_homes();
        self.release_i(Reg::R10);
        self.push_call_result(ty.result());
    }

    // ── integer op helpers ─────────────────────────────────────────

    fn try_fold2_i(&mut self) -> Option<(Value, Value)> {
        if self.p.opt == OptLevel::None {
            return None;
        }
        let n = self.stack.len();
        if n < 2 {
            return None;
        }
        if let (AVal::C(a), AVal::C(b)) = (self.stack[n - 2], self.stack[n - 1]) {
            self.stack.truncate(n - 2);
            Some((a, b))
        } else {
            None
        }
    }

    fn binop_i(&mut self, f: impl FnOnce(&mut Asm, Reg, Reg)) {
        let (b, bo) = self.pop_i_read(&[]);
        let a = self.pop_i_ex(&[b]);
        f(&mut self.a, a, b);
        self.done_read(b, bo);
        self.origin.remove(&a.0);
        self.push_i(a);
    }

    fn cmp_set(&mut self, w: W, cc: Cc) {
        let (b, bo) = self.pop_i_read(&[]);
        let (a, ao) = self.pop_i_read(&[b]);
        let d = self.alloc_i_ex(&[a, b]);
        self.a.xor_rr(W::W32, d, d);
        self.a.cmp_rr(w, a, b);
        self.a.setcc(cc, d);
        self.done_read(a, ao);
        self.done_read(b, bo);
        self.push_i(d);
    }

    fn fcmp_set(&mut self, double: bool, swapped: bool, cc: Cc, nan_is_one: bool) {
        let b = self.pop_f();
        let a = self.pop_f();
        let d = self.alloc_i();
        if nan_is_one {
            self.a.mov_ri32(d, 1);
        } else {
            self.a.xor_rr(W::W32, d, d);
        }
        if swapped {
            self.a.ucomis(double, b, a);
        } else {
            self.a.ucomis(double, a, b);
        }
        // For eq/ne we must ignore the comparison result when unordered.
        let skip = self.a.label();
        if matches!(cc, Cc::E | Cc::Ne) {
            self.a.jcc(Cc::P, skip);
        }
        self.a.setcc(cc, d);
        self.a.bind(skip);
        self.release_f(a);
        self.release_f(b);
        self.push_i(d);
    }

    fn shift_op(&mut self, w: W, f: impl FnOnce(&mut Asm, W, Reg)) {
        self.spill_regs(&[Reg::RCX]);
        // Pop the count into RCX.
        self.pop_to_fixed(Reg::RCX);
        let a = self.pop_i_ex(&[Reg::RCX]);
        f(&mut self.a, w, a);
        self.release_i(Reg::RCX);
        self.origin.remove(&a.0);
        self.push_i(a);
    }

    fn div_op(&mut self, w: W, signed: bool, want_rem: bool) {
        self.spill_regs(&[Reg::RAX, Reg::RDX]);
        let b = self.pop_i_ex(&[Reg::RAX, Reg::RDX]);
        self.pop_to_fixed(Reg::RAX);
        self.claim_i(Reg::RDX);
        // Divide-by-zero check.
        self.a.test_rr(w, b, b);
        let dz = self.trap_label(TrapKind::IntegerDivByZero);
        self.a.jcc(Cc::E, dz);
        let done = self.a.label();
        if signed {
            // INT_MIN / -1 overflow (or defined-zero remainder).
            let ok = self.a.label();
            self.a.cmp_ri(w, b, -1);
            self.a.jcc(Cc::Ne, ok);
            match w {
                W::W32 => self.a.cmp_ri(W::W32, Reg::RAX, i32::MIN),
                W::W64 => {
                    self.a.mov_ri64(SCRATCH, i64::MIN);
                    self.a.cmp_rr(W::W64, Reg::RAX, SCRATCH);
                }
            }
            if want_rem {
                self.a.jcc(Cc::Ne, ok);
                self.a.xor_rr(W::W32, Reg::RDX, Reg::RDX);
                self.a.jmp(done);
            } else {
                let ovf = self.trap_label(TrapKind::IntegerOverflow);
                self.a.jcc(Cc::E, ovf);
            }
            self.a.bind(ok);
            self.a.cdq_cqo(w);
            self.a.idiv(w, b);
        } else {
            self.a.xor_rr(W::W32, Reg::RDX, Reg::RDX);
            self.a.div(w, b);
        }
        self.a.bind(done);
        self.release_i(b);
        if want_rem {
            self.release_i(Reg::RAX);
            if w == W::W32 {
                // edx already zero-extended by the 32-bit divide.
            }
            self.push_i(Reg::RDX);
        } else {
            self.release_i(Reg::RDX);
            self.push_i(Reg::RAX);
        }
    }

    fn funop(&mut self, f: impl FnOnce(&mut Asm, Xmm)) {
        let a = self.pop_f();
        f(&mut self.a, a);
        self.push_f(a);
    }

    fn fbinop(&mut self, double: bool, op: u8) {
        let b = self.pop_f();
        let a = self.pop_f();
        self.a.farith(double, op, a, b);
        self.release_f(b);
        self.push_f(a);
    }

    fn fsign_op(&mut self, mask: u64, op: u8) {
        let a = self.pop_f();
        self.a.mov_ri64(SCRATCH, mask as i64);
        self.a.movq_xr(W::W64, FSCRATCH, SCRATCH);
        self.a.fbit(op, a, FSCRATCH);
        self.push_f(a);
    }

    // ── the main walk ──────────────────────────────────────────────

    #[allow(clippy::too_many_lines)]
    fn walk(&mut self) {
        let mut pc = 0usize;
        while pc < self.body.len() {
            if let Some(end) = self.hoistable_at(pc) {
                self.emit_versioned_loop(pc, end);
                pc = end + 1;
                continue;
            }
            if self.step(pc) {
                return;
            }
            pc += 1;
        }
        unreachable!("function body must end with End");
    }

    /// Lower one instruction. Returns `true` when the function's final
    /// `End` was reached (the epilogue has been emitted).
    fn step(&mut self, pc: usize) -> bool {
        use Instr::*;
        {
            self.cur_pc = pc;
            self.pc_map.push((self.a.len() as u32, pc as u32));
            // Label binding (and revival of dead code).
            if let Some(l) = self.bind_label_at(pc as u32) {
                if !self.dead {
                    self.spill_all();
                    let h = self.stack.len();
                    debug_assert_eq!(h, self.label_height(pc as u32));
                    self.a.bind(l);
                } else {
                    self.a.bind(l);
                    let h = self.label_height(pc as u32);
                    self.reset_stack_to(h);
                    self.dead = false;
                }
                self.checked.clear();
                if self.p.safepoints && self.loop_headers.contains(&(pc as u32)) {
                    self.emit_safepoint();
                }
            }

            let instr = &self.body[pc];
            if self.dead {
                match instr {
                    Block(_) | Loop(_) | If(_) => self.depth += 1,
                    End => {
                        self.depth -= 1;
                        if self.depth < 0 {
                            self.finish_function();
                            return true;
                        }
                    }
                    _ => {}
                }
                return false;
            }

            match instr {
                Unreachable => {
                    self.a.ud2_trap(TrapKind::Unreachable.code() as u8);
                    self.dead = true;
                }
                Nop => {}
                Block(_) => self.depth += 1,
                Loop(_) => {
                    self.depth += 1;
                    // Header label (pc+1) binds on the next iteration.
                }
                If(_) => {
                    self.depth += 1;
                    let (c, co) = self.pop_i_read(&[]);
                    self.spill_all();
                    self.a.test_rr(W::W32, c, c);
                    self.done_read(c, co);
                    let dest = self.fmeta.ctrl[pc];
                    let l = self.jump_label(dest);
                    self.a.jcc(Cc::E, l);
                    self.checked.clear();
                }
                Else => {
                    self.spill_all();
                    let dest = self.fmeta.ctrl[pc];
                    if dest == self.fmeta.body_len {
                        self.end_label_used = true;
                        let l = self.end_label;
                        self.a.jmp(l);
                    } else {
                        let l = self.jump_label(dest);
                        self.a.jmp(l);
                    }
                    self.dead = true;
                }
                End => {
                    self.depth -= 1;
                    if self.depth < 0 {
                        self.spill_all();
                        self.finish_function();
                        return true;
                    }
                    self.checked.clear();
                }
                Br(_) => {
                    self.spill_all();
                    let dest = self.fmeta.branch_table[self.fmeta.ctrl[pc] as usize];
                    self.branch_to(dest);
                    self.dead = true;
                }
                BrIf(_) => {
                    let (c, co) = self.pop_i_read(&[]);
                    self.spill_all();
                    let dest = self.fmeta.branch_table[self.fmeta.ctrl[pc] as usize];
                    self.a.test_rr(W::W32, c, c);
                    self.done_read(c, co);
                    if self.branch_needs_shuffle(dest) {
                        let skip = self.a.label();
                        self.a.jcc(Cc::E, skip);
                        self.branch_to(dest);
                        self.a.bind(skip);
                    } else if dest.dest_pc == self.fmeta.body_len {
                        self.end_label_used = true;
                        let l = self.end_label;
                        self.a.jcc(Cc::Ne, l);
                    } else {
                        let l = self.jump_label(dest.dest_pc);
                        self.a.jcc(Cc::Ne, l);
                    }
                    self.checked.clear();
                }
                BrTable(t) => {
                    let sel = self.pop_i();
                    self.spill_all();
                    let base = self.fmeta.ctrl[pc] as usize;
                    let mut arms = Vec::with_capacity(t.targets.len());
                    for k in 0..t.targets.len() {
                        let arm = self.a.label();
                        self.a.cmp_ri(W::W32, sel, k as i32);
                        self.a.jcc(Cc::E, arm);
                        arms.push(arm);
                    }
                    self.release_i(sel);
                    // Default falls through.
                    let d = self.fmeta.branch_table[base + t.targets.len()];
                    self.branch_to(d);
                    for (k, arm) in arms.into_iter().enumerate() {
                        self.a.bind(arm);
                        let d = self.fmeta.branch_table[base + k];
                        self.branch_to(d);
                    }
                    self.dead = true;
                }
                Return => {
                    self.spill_all();
                    let h = self.stack.len();
                    if self.fmeta.result.is_some() && h - 1 != 0 {
                        let src = self.slot_mem(h - 1);
                        let dst = self.slot_mem(0);
                        self.a.mov_rm(W::W64, SCRATCH, src);
                        self.a.mov_mr(W::W64, dst, SCRATCH);
                    }
                    self.end_label_used = true;
                    let l = self.end_label;
                    self.a.jmp(l);
                    self.dead = true;
                }
                Call(fi) => self.lower_call(*fi),
                CallIndirect(ti) => self.lower_call_indirect(*ti),
                Drop => {
                    let v = self.stack.pop().expect("validated stack");
                    self.free_val(v);
                }
                Select => {
                    let (c, co) = self.pop_i_read(&[]);
                    let (b, bo) = self.pop_i_read(&[c]);
                    let a = self.pop_i_ex(&[c, b]);
                    self.a.test_rr(W::W32, c, c);
                    self.a.cmov(W::W64, Cc::E, a, b);
                    self.done_read(c, co);
                    self.done_read(b, bo);
                    self.origin.remove(&a.0);
                    self.push_i(a);
                }

                LocalGet(l) => {
                    let ty = self.local_types[*l as usize];
                    if let Some(&pr) = self.pinned.get(l) {
                        // Zero-cost: push an alias of the pinned register.
                        self.stack.push(AVal::P(pr));
                        if self.p.opt == OptLevel::Mid {
                            midtier_counters().reloads_elided.inc();
                        }
                    } else {
                        let m = self.local_mem(*l);
                        match ty {
                            ValType::I32 | ValType::I64 => {
                                let r = self.alloc_i();
                                self.a.mov_rm(W::W64, r, m);
                                self.track_local_origin(r, *l);
                                self.push_i(r);
                            }
                            ValType::F32 | ValType::F64 => {
                                let x = self.alloc_f();
                                self.a.fload(true, x, m);
                                self.push_f(x);
                            }
                        }
                    }
                }
                LocalSet(l) | LocalTee(l) => {
                    let tee = matches!(instr, LocalTee(_));
                    let ty = self.local_types[*l as usize];
                    let dead_store = !tee
                        && self
                            .midplan
                            .as_ref()
                            .is_some_and(|mp| mp.is_dead_store(pc as u32));
                    if dead_store {
                        // Liveness proved no path reads this local again:
                        // drop the value instead of storing it. A homed
                        // local keeps its old value in the register, so
                        // stack aliases of it stay valid untouched.
                        let v = self.stack.pop().expect("validated stack");
                        self.free_val(v);
                        midtier_counters().dead_stores_elided.inc();
                    } else if let Some(&pr) = self.pinned.get(l) {
                        // Snapshot any live aliases of the old value first.
                        self.materialize_pinned_aliases(pr);
                        let r = self.pop_i();
                        self.a.mov_rr(W::W64, pr, r);
                        self.release_i(r);
                        if tee {
                            self.stack.push(AVal::P(pr));
                        }
                    } else {
                        let m = self.local_mem(*l);
                        match ty {
                            ValType::I32 | ValType::I64 => {
                                let r = self.pop_i();
                                self.a.mov_mr(W::W64, m, r);
                                if tee {
                                    self.track_local_origin(r, *l);
                                    self.push_i(r);
                                } else {
                                    self.release_i(r);
                                }
                            }
                            ValType::F32 | ValType::F64 => {
                                let x = self.pop_f();
                                self.a.fstore(true, m, x);
                                if tee {
                                    self.push_f(x);
                                } else {
                                    self.release_f(x);
                                }
                            }
                        }
                    }
                    // Any cached check against this local is now stale.
                    if matches!(self.p.opt, OptLevel::Full | OptLevel::Mid) {
                        self.checked.retain(|(cl, _), _| cl != l);
                        self.origin.retain(|_, (ol, _, _)| ol != l);
                    }
                }
                GlobalGet(gi) => {
                    let ty = self.p.module.globals[*gi as usize].ty.content;
                    self.a
                        .mov_rm(W::W64, SCRATCH, Mem::base(Reg::R15, ctx_off::GLOBALS));
                    let m = Mem::base(SCRATCH, *gi as i32 * 8);
                    match ty {
                        ValType::I32 | ValType::I64 => {
                            let r = self.alloc_i();
                            self.a.mov_rm(W::W64, r, m);
                            self.push_i(r);
                        }
                        ValType::F32 | ValType::F64 => {
                            let x = self.alloc_f();
                            self.a.fload(true, x, m);
                            self.push_f(x);
                        }
                    }
                }
                GlobalSet(gi) => {
                    let ty = self.p.module.globals[*gi as usize].ty.content;
                    match ty {
                        ValType::I32 | ValType::I64 => {
                            let r = self.pop_i();
                            self.a
                                .mov_rm(W::W64, SCRATCH, Mem::base(Reg::R15, ctx_off::GLOBALS));
                            self.a.mov_mr(W::W64, Mem::base(SCRATCH, *gi as i32 * 8), r);
                            self.release_i(r);
                        }
                        ValType::F32 | ValType::F64 => {
                            let x = self.pop_f();
                            self.a
                                .mov_rm(W::W64, SCRATCH, Mem::base(Reg::R15, ctx_off::GLOBALS));
                            self.a.fstore(true, Mem::base(SCRATCH, *gi as i32 * 8), x);
                            self.release_f(x);
                        }
                    }
                }

                MemorySize => {
                    let r = self.alloc_i();
                    self.a
                        .mov_rm(W::W64, r, Mem::base(Reg::R15, ctx_off::MEM_SIZE));
                    self.a.shr_i(W::W64, r, 16);
                    self.push_i(r);
                }
                MemoryGrow => {
                    self.spill_all();
                    self.checked.clear();
                    self.save_caller_homes();
                    let top = self.stack.len() - 1;
                    let tm = self.slot_mem(top);
                    self.a.mov_rm(W::W32, Reg::RSI, tm);
                    self.stack.pop();
                    self.a.mov_rr(W::W64, Reg::RDI, Reg::R15);
                    self.a
                        .mov_ri64(SCRATCH, runtime::lb_jit_grow as *const () as usize as i64);
                    self.a.call_r(SCRATCH);
                    self.reload_caller_homes();
                    self.claim_i(Reg::RAX);
                    // Sign-extended i32 result: clear upper bits.
                    self.a.mov_rr(W::W32, Reg::RAX, Reg::RAX);
                    self.push_i(Reg::RAX);
                }

                I32Const(v) => self.stack.push(AVal::C(Value::I32(*v))),
                I64Const(v) => self.stack.push(AVal::C(Value::I64(*v))),
                F32Const(v) => self.stack.push(AVal::C(Value::F32(*v))),
                F64Const(v) => self.stack.push(AVal::C(Value::F64(*v))),

                I32Eqz => {
                    let (a, ao) = self.pop_i_read(&[]);
                    let d = self.alloc_i_ex(&[a]);
                    self.a.xor_rr(W::W32, d, d);
                    self.a.test_rr(W::W32, a, a);
                    self.a.setcc(Cc::E, d);
                    self.done_read(a, ao);
                    self.push_i(d);
                }
                I64Eqz => {
                    let (a, ao) = self.pop_i_read(&[]);
                    let d = self.alloc_i_ex(&[a]);
                    self.a.xor_rr(W::W32, d, d);
                    self.a.test_rr(W::W64, a, a);
                    self.a.setcc(Cc::E, d);
                    self.done_read(a, ao);
                    self.push_i(d);
                }
                I32Eq => self.cmp_set(W::W32, Cc::E),
                I32Ne => self.cmp_set(W::W32, Cc::Ne),
                I32LtS => self.cmp_set(W::W32, Cc::L),
                I32LtU => self.cmp_set(W::W32, Cc::B),
                I32GtS => self.cmp_set(W::W32, Cc::G),
                I32GtU => self.cmp_set(W::W32, Cc::A),
                I32LeS => self.cmp_set(W::W32, Cc::Le),
                I32LeU => self.cmp_set(W::W32, Cc::Be),
                I32GeS => self.cmp_set(W::W32, Cc::Ge),
                I32GeU => self.cmp_set(W::W32, Cc::Ae),
                I64Eq => self.cmp_set(W::W64, Cc::E),
                I64Ne => self.cmp_set(W::W64, Cc::Ne),
                I64LtS => self.cmp_set(W::W64, Cc::L),
                I64LtU => self.cmp_set(W::W64, Cc::B),
                I64GtS => self.cmp_set(W::W64, Cc::G),
                I64GtU => self.cmp_set(W::W64, Cc::A),
                I64LeS => self.cmp_set(W::W64, Cc::Le),
                I64LeU => self.cmp_set(W::W64, Cc::Be),
                I64GeS => self.cmp_set(W::W64, Cc::Ge),
                I64GeU => self.cmp_set(W::W64, Cc::Ae),

                F32Eq => self.fcmp_set(false, false, Cc::E, false),
                F32Ne => self.fcmp_set(false, false, Cc::Ne, true),
                F32Lt => self.fcmp_set(false, true, Cc::A, false),
                F32Gt => self.fcmp_set(false, false, Cc::A, false),
                F32Le => self.fcmp_set(false, true, Cc::Ae, false),
                F32Ge => self.fcmp_set(false, false, Cc::Ae, false),
                F64Eq => self.fcmp_set(true, false, Cc::E, false),
                F64Ne => self.fcmp_set(true, false, Cc::Ne, true),
                F64Lt => self.fcmp_set(true, true, Cc::A, false),
                F64Gt => self.fcmp_set(true, false, Cc::A, false),
                F64Le => self.fcmp_set(true, true, Cc::Ae, false),
                F64Ge => self.fcmp_set(true, false, Cc::Ae, false),

                I32Clz => {
                    let a = self.pop_i();
                    self.a.lzcnt(W::W32, a, a);
                    self.push_i(a);
                }
                I32Ctz => {
                    let a = self.pop_i();
                    self.a.tzcnt(W::W32, a, a);
                    self.push_i(a);
                }
                I32Popcnt => {
                    let a = self.pop_i();
                    self.a.popcnt(W::W32, a, a);
                    self.push_i(a);
                }
                I64Clz => {
                    let a = self.pop_i();
                    self.a.lzcnt(W::W64, a, a);
                    self.push_i(a);
                }
                I64Ctz => {
                    let a = self.pop_i();
                    self.a.tzcnt(W::W64, a, a);
                    self.push_i(a);
                }
                I64Popcnt => {
                    let a = self.pop_i();
                    self.a.popcnt(W::W64, a, a);
                    self.push_i(a);
                }

                I32Add => {
                    if let Some((Value::I32(a), Value::I32(b))) = self.try_fold2_i() {
                        self.stack.push(AVal::C(Value::I32(a.wrapping_add(b))));
                    } else {
                        self.binop_i(|asm, a, b| asm.add_rr(W::W32, a, b));
                    }
                }
                I32Sub => {
                    if let Some((Value::I32(a), Value::I32(b))) = self.try_fold2_i() {
                        self.stack.push(AVal::C(Value::I32(a.wrapping_sub(b))));
                    } else {
                        self.binop_i(|asm, a, b| asm.sub_rr(W::W32, a, b));
                    }
                }
                I32Mul => {
                    if let Some((Value::I32(a), Value::I32(b))) = self.try_fold2_i() {
                        self.stack.push(AVal::C(Value::I32(a.wrapping_mul(b))));
                    } else {
                        self.binop_i(|asm, a, b| {
                            asm.imul_rr(W::W32, a, b);
                        });
                    }
                }
                I32And => self.binop_i(|asm, a, b| asm.and_rr(W::W32, a, b)),
                I32Or => self.binop_i(|asm, a, b| asm.or_rr(W::W32, a, b)),
                I32Xor => self.binop_i(|asm, a, b| asm.xor_rr(W::W32, a, b)),
                I64Add => self.binop_i(|asm, a, b| asm.add_rr(W::W64, a, b)),
                I64Sub => self.binop_i(|asm, a, b| asm.sub_rr(W::W64, a, b)),
                I64Mul => self.binop_i(|asm, a, b| {
                    asm.imul_rr(W::W64, a, b);
                }),
                I64And => self.binop_i(|asm, a, b| asm.and_rr(W::W64, a, b)),
                I64Or => self.binop_i(|asm, a, b| asm.or_rr(W::W64, a, b)),
                I64Xor => self.binop_i(|asm, a, b| asm.xor_rr(W::W64, a, b)),

                I32DivS => self.div_op(W::W32, true, false),
                I32DivU => self.div_op(W::W32, false, false),
                I32RemS => self.div_op(W::W32, true, true),
                I32RemU => self.div_op(W::W32, false, true),
                I64DivS => self.div_op(W::W64, true, false),
                I64DivU => self.div_op(W::W64, false, false),
                I64RemS => self.div_op(W::W64, true, true),
                I64RemU => self.div_op(W::W64, false, true),

                I32Shl => self.shift_op(W::W32, |a, w, d| a.shl_cl(w, d)),
                I32ShrS => self.shift_op(W::W32, |a, w, d| a.sar_cl(w, d)),
                I32ShrU => self.shift_op(W::W32, |a, w, d| a.shr_cl(w, d)),
                I32Rotl => self.shift_op(W::W32, |a, w, d| a.rol_cl(w, d)),
                I32Rotr => self.shift_op(W::W32, |a, w, d| a.ror_cl(w, d)),
                I64Shl => self.shift_op(W::W64, |a, w, d| a.shl_cl(w, d)),
                I64ShrS => self.shift_op(W::W64, |a, w, d| a.sar_cl(w, d)),
                I64ShrU => self.shift_op(W::W64, |a, w, d| a.shr_cl(w, d)),
                I64Rotl => self.shift_op(W::W64, |a, w, d| a.rol_cl(w, d)),
                I64Rotr => self.shift_op(W::W64, |a, w, d| a.ror_cl(w, d)),

                F32Abs => self.fsign_op(0x7FFF_FFFF, 0x54),
                F32Neg => self.fsign_op(0x8000_0000, 0x57),
                F64Abs => self.fsign_op(0x7FFF_FFFF_FFFF_FFFF, 0x54),
                F64Neg => self.fsign_op(0x8000_0000_0000_0000, 0x57),
                F32Ceil => self.funop(|a, x| a.rounds(false, x, x, 2)),
                F32Floor => self.funop(|a, x| a.rounds(false, x, x, 1)),
                F32Trunc => self.funop(|a, x| a.rounds(false, x, x, 3)),
                F32Nearest => self.funop(|a, x| a.rounds(false, x, x, 0)),
                F64Ceil => self.funop(|a, x| a.rounds(true, x, x, 2)),
                F64Floor => self.funop(|a, x| a.rounds(true, x, x, 1)),
                F64Trunc => self.funop(|a, x| a.rounds(true, x, x, 3)),
                F64Nearest => self.funop(|a, x| a.rounds(true, x, x, 0)),
                F32Sqrt => self.funop(|a, x| a.farith(false, 0x51, x, x)),
                F64Sqrt => self.funop(|a, x| a.farith(true, 0x51, x, x)),

                F32Add => self.fbinop(false, 0x58),
                F32Sub => self.fbinop(false, 0x5C),
                F32Mul => self.fbinop(false, 0x59),
                F32Div => self.fbinop(false, 0x5E),
                F64Add => self.fbinop(true, 0x58),
                F64Sub => self.fbinop(true, 0x5C),
                F64Mul => self.fbinop(true, 0x59),
                F64Div => self.fbinop(true, 0x5E),

                F32Min => self.helper_ff_to_f(runtime::lb_f32_min as *const () as usize),
                F32Max => self.helper_ff_to_f(runtime::lb_f32_max as *const () as usize),
                F64Min => self.helper_ff_to_f(runtime::lb_f64_min as *const () as usize),
                F64Max => self.helper_ff_to_f(runtime::lb_f64_max as *const () as usize),
                F32Copysign => self.helper_ff_to_f(runtime::lb_f32_copysign as *const () as usize),
                F64Copysign => self.helper_ff_to_f(runtime::lb_f64_copysign as *const () as usize),

                I32WrapI64 => {
                    let a = self.pop_i();
                    self.a.mov_rr(W::W32, a, a);
                    self.push_i(a);
                }
                I64ExtendI32S => {
                    let a = self.pop_i();
                    self.a.movsxd_r(a, a);
                    self.push_i(a);
                }
                I64ExtendI32U => {
                    // Upper half already zero by invariant.
                    let a = self.pop_i();
                    self.push_i(a);
                }

                I32TruncF32S => {
                    self.helper_f_to_i(runtime::lb_i32_trunc_f32_s as *const () as usize)
                }
                I32TruncF32U => {
                    self.helper_f_to_i(runtime::lb_i32_trunc_f32_u as *const () as usize)
                }
                I32TruncF64S => {
                    self.helper_f_to_i(runtime::lb_i32_trunc_f64_s as *const () as usize)
                }
                I32TruncF64U => {
                    self.helper_f_to_i(runtime::lb_i32_trunc_f64_u as *const () as usize)
                }
                I64TruncF32S => {
                    self.helper_f_to_i(runtime::lb_i64_trunc_f32_s as *const () as usize)
                }
                I64TruncF32U => {
                    self.helper_f_to_i(runtime::lb_i64_trunc_f32_u as *const () as usize)
                }
                I64TruncF64S => {
                    self.helper_f_to_i(runtime::lb_i64_trunc_f64_s as *const () as usize)
                }
                I64TruncF64U => {
                    self.helper_f_to_i(runtime::lb_i64_trunc_f64_u as *const () as usize)
                }

                F32ConvertI32S => {
                    let a = self.pop_i();
                    let x = self.alloc_f();
                    self.a.cvt_i2f(false, W::W32, x, a);
                    self.release_i(a);
                    self.push_f(x);
                }
                F32ConvertI32U => {
                    let a = self.pop_i();
                    let x = self.alloc_f();
                    self.a.cvt_i2f(false, W::W64, x, a);
                    self.release_i(a);
                    self.push_f(x);
                }
                F32ConvertI64S => {
                    let a = self.pop_i();
                    let x = self.alloc_f();
                    self.a.cvt_i2f(false, W::W64, x, a);
                    self.release_i(a);
                    self.push_f(x);
                }
                F32ConvertI64U => {
                    self.helper_i_to_f(runtime::lb_f32_convert_u64 as *const () as usize)
                }
                F64ConvertI32S => {
                    let a = self.pop_i();
                    let x = self.alloc_f();
                    self.a.cvt_i2f(true, W::W32, x, a);
                    self.release_i(a);
                    self.push_f(x);
                }
                F64ConvertI32U => {
                    let a = self.pop_i();
                    let x = self.alloc_f();
                    self.a.cvt_i2f(true, W::W64, x, a);
                    self.release_i(a);
                    self.push_f(x);
                }
                F64ConvertI64S => {
                    let a = self.pop_i();
                    let x = self.alloc_f();
                    self.a.cvt_i2f(true, W::W64, x, a);
                    self.release_i(a);
                    self.push_f(x);
                }
                F64ConvertI64U => {
                    self.helper_i_to_f(runtime::lb_f64_convert_u64 as *const () as usize)
                }
                F32DemoteF64 => self.funop(|a, x| a.cvt_d2s(x, x)),
                F64PromoteF32 => self.funop(|a, x| a.cvt_s2d(x, x)),

                I32ReinterpretF32 => {
                    let x = self.pop_f();
                    let r = self.alloc_i();
                    self.a.movq_rx(W::W32, r, x);
                    self.release_f(x);
                    self.push_i(r);
                }
                I64ReinterpretF64 => {
                    let x = self.pop_f();
                    let r = self.alloc_i();
                    self.a.movq_rx(W::W64, r, x);
                    self.release_f(x);
                    self.push_i(r);
                }
                F32ReinterpretI32 => {
                    let r = self.pop_i();
                    let x = self.alloc_f();
                    self.a.movq_xr(W::W32, x, r);
                    self.release_i(r);
                    self.push_f(x);
                }
                F64ReinterpretI64 => {
                    let r = self.pop_i();
                    let x = self.alloc_f();
                    self.a.movq_xr(W::W64, x, r);
                    self.release_i(r);
                    self.push_f(x);
                }

                other => {
                    if let Some(acc) = other.mem_access() {
                        if acc.is_store {
                            self.lower_store(acc);
                        } else {
                            self.lower_load(acc);
                        }
                    } else {
                        unreachable!("unhandled instruction {other:?}");
                    }
                }
            }

            // The baseline tier (V8 before tier-up) flushes everything
            // after each instruction — values never persist in registers.
            if self.p.opt == OptLevel::None && !self.dead {
                self.spill_all();
            }
        }
        false
    }

    // ── loop versioning (hoisted bounds checks) ────────────────────

    /// When `pc` is the `Loop` of a plan-versioned range reachable here
    /// (live, or revived by a label at the loop itself), the range's end
    /// pc. The plan is consulted at the optimizing tiers under the
    /// strategies whose codegen honours it, mirroring `mem_operand`; a
    /// loop whose header is dead and only revived *inside* the range is
    /// not versioned — its body is emitted once, fully checked.
    fn hoistable_at(&self, pc: usize) -> Option<usize> {
        if self.p.opt == OptLevel::None
            || !matches!(
                self.p.strategy,
                BoundsStrategy::Trap | BoundsStrategy::Clamp
            )
            || (self.dead && !self.labels.contains_key(&(pc as u32)))
        {
            return None;
        }
        let h = self.plan?.hoist_at(pc as u32)?;
        Some(h.end_pc as usize)
    }

    /// Emit a hoisted loop `[loop_pc, end_pc]` twice: preheader guards
    /// select the check-free fast copy when every per-iteration bound is
    /// proven within `mem_size`, the fully checked slow copy otherwise.
    /// Both copies start and end in canonical spilled state at the same
    /// stack heights, so wasm-level machine state at every iteration —
    /// and at any trap — is bit-identical to the unversioned lowering;
    /// the only difference is which copy's checks execute.
    fn emit_versioned_loop(&mut self, loop_pc: usize, end_pc: usize) {
        self.cur_pc = loop_pc;
        self.pc_map.push((self.a.len() as u32, loop_pc as u32));
        // The preheader is a control-flow boundary: bind any label at the
        // `Loop` pc (an else-arm or branch may start here, possibly
        // reviving dead code), then flush to canonical slots.
        if let Some(&l) = self.labels.get(&(loop_pc as u32)) {
            if !self.dead {
                self.spill_all();
                self.a.bind(l);
            } else {
                self.a.bind(l);
                let h = self.label_height(loop_pc as u32);
                self.reset_stack_to(h);
                self.dead = false;
            }
        } else {
            self.spill_all();
        }
        self.checked.clear();
        let entry_h = self.stack.len();

        let slow = self.a.label();
        let cont = self.a.label();
        let guards = self
            .plan
            .and_then(|pl| pl.hoist_at(loop_pc as u32))
            .expect("caller checked hoist_at")
            .guards
            .clone();
        for g in &guards {
            self.emit_hoist_guard(g, slow);
        }

        // Fast copy: `mem_operand` skips every `ElideHoisted` check.
        self.copy_ctx = Some((loop_pc as u32, end_pc as u32, 1));
        for pc in loop_pc..=end_pc {
            let done = self.step(pc);
            debug_assert!(!done, "hoisted range balances its Loop/End");
        }
        let fast_dead = self.dead;
        let mut exit_h = 0;
        if !fast_dead {
            self.spill_all();
            exit_h = self.stack.len();
            self.a.jmp(cont);
        }

        // Slow copy: every check re-emitted.
        self.copy_ctx = Some((loop_pc as u32, end_pc as u32, 2));
        self.dead = false;
        self.reset_stack_to(entry_h);
        self.a.bind(slow);
        for pc in loop_pc..=end_pc {
            let done = self.step(pc);
            debug_assert!(!done, "hoisted range balances its Loop/End");
        }
        // Same instruction range under the same label set: the copies
        // agree on end-of-range liveness and stack height. When both end
        // dead, the walk continues dead past the loop and `cont` (which
        // nothing jumped to) stays unbound.
        debug_assert_eq!(self.dead, fast_dead);
        self.copy_ctx = None;
        if !fast_dead {
            self.spill_all();
            self.a.bind(cont);
            self.reset_stack_to(exit_h);
            self.dead = false;
        }
    }

    /// One preheader guard: route to `slow` unless
    /// `((bound - strict) << shift) + addend <= mem_size` with the
    /// adjusted bound in `0..=i32::MAX`. The range pre-check keeps the
    /// 64-bit bound computation exact and conservatively sends huge,
    /// zero-strict, or wrapping bounds down the checked copy. This exact
    /// instruction shape is what `lb-verify`'s abstract interpreter
    /// recognizes as a hoisted-guard fact source — keep them in sync.
    fn emit_hoist_guard(&mut self, g: &lb_analysis::GuardExpr, slow: Label) {
        if let Some(&pr) = self.pinned.get(&g.bound_local) {
            self.a.mov_rr(W::W32, SCRATCH, pr);
        } else {
            let m = self.local_mem(g.bound_local);
            self.a.mov_rm(W::W32, SCRATCH, m);
        }
        if g.strict {
            self.a.sub_ri(W::W64, SCRATCH, 1);
        }
        self.a.cmp_ri(W::W64, SCRATCH, 0x7FFF_FFFF);
        self.a.jcc(Cc::A, slow);
        if g.shift > 0 {
            self.a.shl_i(W::W64, SCRATCH, g.shift);
        }
        if g.addend > 0 {
            self.a.add_ri(W::W64, SCRATCH, g.addend as i32);
        }
        self.a
            .cmp_rm(W::W64, SCRATCH, Mem::base(Reg::R15, ctx_off::MEM_SIZE));
        self.a.jcc(Cc::A, slow);
    }

    fn finish_function(&mut self) {
        let l = self.end_label;
        self.a.bind(l);
        self.emit_epilogue();
        self.dead = true;
    }
}
