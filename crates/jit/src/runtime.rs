//! The JIT's runtime contract: the `VmCtx` block pinned in `r15`, the
//! function-pointer table (indirected so the tiering thread can swap code
//! under running instances), and the `extern "C"` helpers generated code
//! calls for memory growth, host imports, trapping conversions, and the
//! NaN-sensitive float operations.

use lb_core::exec::{HostCtx, HostFn};
use lb_core::signals::raise_trap;
use lb_core::{LinearMemory, TrapKind};
use lb_wasm::numeric::{self, NumError};
use lb_wasm::{FuncType, Value};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Field offsets of [`VmCtx`], shared with the code generator.
pub mod ctx_off {
    /// `mem_base: *mut u8`.
    pub const MEM_BASE: i32 = 0;
    /// `mem_size: usize` (bytes currently accessible).
    pub const MEM_SIZE: i32 = 8;
    /// `globals: *mut u64`.
    pub const GLOBALS: i32 = 16;
    /// `table: *const TableEntry`.
    pub const TABLE: i32 = 24;
    /// `table_len: usize`.
    pub const TABLE_LEN: i32 = 32;
    /// `stack_limit: usize`.
    pub const STACK_LIMIT: i32 = 40;
    /// `instance: *mut InstanceInner`.
    pub const INSTANCE: i32 = 48;
    /// `pause_flag: *const AtomicU32` (null when safepoints are inactive).
    pub const PAUSE_FLAG: i32 = 56;
    /// `mem_limits: [usize; N_LIMIT_SLOTS]` — per-module fused-guard
    /// limits. Slot `i` holds `mem_size - (limit_extents[i] - 1)`
    /// (saturating at 0), so a fused check is the single instruction pair
    /// `cmp addr, [r15 + MEM_LIMITS + 8*i]; jae trap`: not-taken iff
    /// `addr < mem_size - extent + 1` iff `addr + extent <= mem_size`.
    pub const MEM_LIMITS: i32 = 64;
    /// `limit_extents: [usize; N_LIMIT_SLOTS]` — the extent each limit
    /// slot was derived from (0 for unused slots). Kept in the ctx so the
    /// limits can be recomputed whenever `mem_size` changes.
    pub const LIMIT_EXTENTS: i32 = 64 + 8 * super::N_LIMIT_SLOTS as i32;
}

/// Number of fused-guard limit slots in [`VmCtx`]. The dataflow pass
/// selects at most this many distinct guard extents per module.
pub const N_LIMIT_SLOTS: usize = 8;

/// The per-instance context block. JIT code keeps its address in `r15`
/// and the memory base in `r14`.
#[repr(C)]
#[derive(Debug)]
pub struct VmCtx {
    /// Linear-memory base (the 8 GiB reservation).
    pub mem_base: *mut u8,
    /// Currently accessible bytes; reloaded by software bounds checks and
    /// updated by the grow helper.
    pub mem_size: usize,
    /// Global values as raw bits.
    pub globals: *mut u64,
    /// Function table entries.
    pub table: *const TableEntry,
    /// Number of table entries.
    pub table_len: usize,
    /// Stack-overflow guard: trap when `rsp` drops below this.
    pub stack_limit: usize,
    /// Backpointer for helpers.
    pub instance: *mut InstanceInner,
    /// Safepoint flag polled at loop back-edges (V8 profile), or null.
    pub pause_flag: *const AtomicU32,
    /// Fused-guard limits: `mem_size - (limit_extents[i] - 1)`, saturating
    /// at 0 (an always-trapping limit when the memory is smaller than the
    /// extent). Refreshed alongside `mem_size`.
    pub mem_limits: [usize; N_LIMIT_SLOTS],
    /// The guard extent each limit slot serves (0 = unused slot; its limit
    /// is never loaded by generated code).
    pub limit_extents: [usize; N_LIMIT_SLOTS],
}

impl VmCtx {
    /// Recompute every fused-guard limit from the current `mem_size`.
    /// Called at instantiation, after `memory.grow`, and whenever the
    /// engine refreshes `mem_size` before an invoke.
    pub fn refresh_limits(&mut self) {
        for i in 0..N_LIMIT_SLOTS {
            let e = self.limit_extents[i];
            self.mem_limits[i] = self.mem_size.saturating_sub(e.saturating_sub(1));
        }
    }
}

/// One function-table slot: a function index (or `usize::MAX` when
/// uninitialized) plus the interned signature id checked by
/// `call_indirect`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct TableEntry {
    /// Function index into the module's function-pointer table.
    pub func_idx: usize,
    /// Signature id (the module's type index — types are interned).
    pub type_id: usize,
}

/// The state helpers need, reachable from the ctx.
pub struct InstanceInner {
    /// The instance's memory (present if the module declares one).
    pub memory: Option<LinearMemory>,
    /// Resolved host imports.
    pub host: Vec<HostFn>,
    /// Host import signatures (for marshalling).
    pub host_sigs: Vec<FuncType>,
    /// The engine's pauser, kept alive while instances exist.
    pub pauser: Option<Arc<Pauser>>,
}

impl std::fmt::Debug for InstanceInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstanceInner")
            .field("memory", &self.memory.is_some())
            .field("imports", &self.host.len())
            .finish()
    }
}

/// The module's function-pointer table: one atomic entry per function in
/// the index space. Calls go through this table, so the tiering thread can
/// upgrade code mid-run by swapping pointers (how V8 replaces baseline
/// code with optimized code).
#[derive(Debug)]
pub struct FuncPtrs {
    ptrs: Box<[AtomicUsize]>,
}

impl FuncPtrs {
    /// A table of `n` null entries.
    pub fn new(n: usize) -> Arc<FuncPtrs> {
        Arc::new(FuncPtrs {
            ptrs: (0..n).map(|_| AtomicUsize::new(0)).collect(),
        })
    }

    /// Address of entry `i` (embedded as an immediate by the codegen).
    pub fn entry_addr(&self, i: usize) -> usize {
        &self.ptrs[i] as *const AtomicUsize as usize
    }

    /// Base address of the table (entry 0).
    pub fn base_addr(&self) -> usize {
        self.ptrs.as_ptr() as usize
    }

    /// Current code address of function `i`.
    pub fn get(&self, i: usize) -> usize {
        self.ptrs[i].load(Ordering::Acquire)
    }

    /// Publish new code for function `i`.
    pub fn set(&self, i: usize, addr: usize) {
        self.ptrs[i].store(addr, Ordering::Release);
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.ptrs.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.ptrs.is_empty()
    }
}

/// The V8-profile "garbage collector": a background thread that
/// periodically sets the safepoint flag and holds worker threads paused
/// for a short window, reproducing the stop-the-world pauses the paper
/// blames for V8's poor 16-thread scaling (§4.1.1, §4.2.1).
#[derive(Debug)]
pub struct Pauser {
    flag: AtomicU32,
    gate: Mutex<bool>,
    cv: Condvar,
    stop: AtomicU32,
    period: std::time::Duration,
    pause_len: std::time::Duration,
}

impl Pauser {
    /// Start a pauser pausing for `pause_len` every `period`.
    pub fn start(period: std::time::Duration, pause_len: std::time::Duration) -> Arc<Pauser> {
        let p = Arc::new(Pauser {
            flag: AtomicU32::new(0),
            gate: Mutex::new(false),
            cv: Condvar::new(),
            stop: AtomicU32::new(0),
            period,
            pause_len,
        });
        let p2 = Arc::clone(&p);
        std::thread::Builder::new()
            .name("lb-gc-pauser".into())
            .spawn(move || p2.run())
            .expect("spawn pauser");
        p
    }

    /// The flag address stored in `VmCtx::pause_flag`.
    pub fn flag_ptr(&self) -> *const AtomicU32 {
        &self.flag
    }

    fn run(&self) {
        let pause_ns = lb_telemetry::histogram("jit.gc_pause_ns");
        let pause_count = lb_telemetry::counter("jit.gc_pause.count");
        while self.stop.load(Ordering::Relaxed) == 0 {
            std::thread::sleep(self.period);
            if self.stop.load(Ordering::Relaxed) != 0 {
                break;
            }
            // Stop the world…
            let t0 = lb_telemetry::clock::now_ns();
            {
                let mut g = self.gate.lock().expect("pauser gate");
                *g = true;
                self.flag.store(1, Ordering::Release);
            }
            std::thread::sleep(self.pause_len);
            // …and release it.
            {
                let mut g = self.gate.lock().expect("pauser gate");
                *g = false;
                self.flag.store(0, Ordering::Release);
                self.cv.notify_all();
            }
            pause_ns.record(lb_telemetry::clock::now_ns().saturating_sub(t0));
            pause_count.inc();
        }
    }

    /// Block the calling worker while the pause window is open.
    pub fn park(&self) {
        let mut g = self.gate.lock().expect("pauser gate");
        while *g {
            g = self.cv.wait(g).expect("pauser wait");
        }
    }

    /// Ask the background thread to exit (it does so within one period).
    pub fn shutdown(&self) {
        self.stop.store(1, Ordering::Relaxed);
    }
}

impl Drop for Pauser {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// ── extern "C" helpers called from generated code ────────────────────────

fn num_trap_kind(e: NumError) -> TrapKind {
    match e {
        NumError::DivByZero => TrapKind::IntegerDivByZero,
        NumError::Overflow => TrapKind::IntegerOverflow,
        NumError::InvalidConversion => TrapKind::InvalidConversion,
    }
}

/// `memory.grow`: returns the old page count or −1.
pub extern "C" fn lb_jit_grow(ctx: *mut VmCtx, delta: u32) -> i32 {
    // SAFETY: ctx is the live VmCtx of the running instance.
    unsafe {
        let inner = &*(*ctx).instance;
        let Some(mem) = inner.memory.as_ref() else {
            return -1;
        };
        let r = mem.grow(delta);
        (*ctx).mem_size = mem.committed();
        (*ctx).refresh_limits();
        r.map(|p| p as i32).unwrap_or(-1)
    }
}

/// Host import dispatch. `args` points at the *highest-addressed* argument
/// slot; argument `i` lives at `args - i` (the JIT's canonical stack grows
/// downward). The result (if any) is written back to `*args` — which is
/// exactly the slot the value lands on in wasm terms.
pub extern "C" fn lb_jit_host(ctx: *mut VmCtx, import_idx: u32, args: *mut u64, _reserved: usize) {
    // SAFETY: ctx/instance live; args points into the caller's frame with
    // at least `params.len()` slots.
    unsafe {
        let inner = &*(*ctx).instance;
        let sig = &inner.host_sigs[import_idx as usize];
        let mut vals = [Value::I32(0); 16];
        let n = sig.params.len();
        assert!(n <= 16, "host imports limited to 16 parameters");
        for (i, &p) in sig.params.iter().enumerate() {
            vals[i] = Value::from_bits(p, *args.offset(-(i as isize)));
        }
        let f = inner.host[import_idx as usize].clone();
        let mut hctx = HostCtx {
            memory: inner.memory.as_ref(),
        };
        match f(&mut hctx, &vals[..n]) {
            Ok(Some(v)) if sig.result() == Some(v.ty()) => {
                *args = v.to_bits();
            }
            Ok(None) if sig.result().is_none() => {}
            Ok(_) => {
                drop(f);
                raise_trap(
                    TrapKind::Host("host function returned wrong type".into()),
                    0,
                )
            }
            Err(t) => {
                let kind = t.kind().clone();
                drop(t);
                drop(f);
                raise_trap(kind, 0)
            }
        }
    }
}

/// Safepoint slow path: park while the pauser's window is open.
pub extern "C" fn lb_jit_pause(ctx: *mut VmCtx) {
    // SAFETY: ctx/instance live.
    unsafe {
        if let Some(p) = (*(*ctx).instance).pauser.as_ref() {
            p.park();
        }
    }
}

macro_rules! trunc_helper {
    ($name:ident, $from:ty, $to:ty, $f:path) => {
        /// Trapping float→int truncation helper.
        pub extern "C" fn $name(v: $from) -> $to {
            match $f(f64::from(v)) {
                Ok(x) => x as $to,
                Err(e) => raise_trap(num_trap_kind(e), 0),
            }
        }
    };
}

trunc_helper!(lb_i32_trunc_f32_s, f32, i32, numeric::trunc_f_to_i32_s);
trunc_helper!(lb_i32_trunc_f32_u, f32, u32, numeric::trunc_f_to_i32_u);
trunc_helper!(lb_i32_trunc_f64_s, f64, i32, numeric::trunc_f_to_i32_s);
trunc_helper!(lb_i32_trunc_f64_u, f64, u32, numeric::trunc_f_to_i32_u);
trunc_helper!(lb_i64_trunc_f32_s, f32, i64, numeric::trunc_f_to_i64_s);
trunc_helper!(lb_i64_trunc_f32_u, f32, u64, numeric::trunc_f_to_i64_u);
trunc_helper!(lb_i64_trunc_f64_s, f64, i64, numeric::trunc_f_to_i64_s);
trunc_helper!(lb_i64_trunc_f64_u, f64, u64, numeric::trunc_f_to_i64_u);

/// wasm f64.min.
pub extern "C" fn lb_f64_min(a: f64, b: f64) -> f64 {
    numeric::wasm_fmin(a, b)
}

/// wasm f64.max.
pub extern "C" fn lb_f64_max(a: f64, b: f64) -> f64 {
    numeric::wasm_fmax(a, b)
}

/// wasm f32.min.
pub extern "C" fn lb_f32_min(a: f32, b: f32) -> f32 {
    numeric::wasm_fmin(a, b)
}

/// wasm f32.max.
pub extern "C" fn lb_f32_max(a: f32, b: f32) -> f32 {
    numeric::wasm_fmax(a, b)
}

/// wasm f64.copysign.
pub extern "C" fn lb_f64_copysign(a: f64, b: f64) -> f64 {
    a.copysign(b)
}

/// wasm f32.copysign.
pub extern "C" fn lb_f32_copysign(a: f32, b: f32) -> f32 {
    a.copysign(b)
}

/// u64 → f64 conversion (no single SSE2 instruction does this correctly).
pub extern "C" fn lb_f64_convert_u64(v: u64) -> f64 {
    v as f64
}

/// u64 → f32 conversion.
pub extern "C" fn lb_f32_convert_u64(v: u64) -> f32 {
    v as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_offsets_match_layout() {
        use std::mem::offset_of;
        assert_eq!(offset_of!(VmCtx, mem_base), ctx_off::MEM_BASE as usize);
        assert_eq!(offset_of!(VmCtx, mem_size), ctx_off::MEM_SIZE as usize);
        assert_eq!(offset_of!(VmCtx, globals), ctx_off::GLOBALS as usize);
        assert_eq!(offset_of!(VmCtx, table), ctx_off::TABLE as usize);
        assert_eq!(offset_of!(VmCtx, table_len), ctx_off::TABLE_LEN as usize);
        assert_eq!(
            offset_of!(VmCtx, stack_limit),
            ctx_off::STACK_LIMIT as usize
        );
        assert_eq!(offset_of!(VmCtx, instance), ctx_off::INSTANCE as usize);
        assert_eq!(offset_of!(VmCtx, pause_flag), ctx_off::PAUSE_FLAG as usize);
        assert_eq!(offset_of!(VmCtx, mem_limits), ctx_off::MEM_LIMITS as usize);
        assert_eq!(
            offset_of!(VmCtx, limit_extents),
            ctx_off::LIMIT_EXTENTS as usize
        );
        assert_eq!(std::mem::size_of::<TableEntry>(), 16);
    }

    #[test]
    fn limits_track_mem_size() {
        let mut ctx = VmCtx {
            mem_base: std::ptr::null_mut(),
            mem_size: 65536,
            globals: std::ptr::null_mut(),
            table: std::ptr::null(),
            table_len: 0,
            stack_limit: 0,
            instance: std::ptr::null_mut(),
            pause_flag: std::ptr::null(),
            mem_limits: [0; N_LIMIT_SLOTS],
            limit_extents: [0; N_LIMIT_SLOTS],
        };
        ctx.limit_extents[0] = 4;
        ctx.limit_extents[1] = 68; // static offset 64 + 4-byte access
        ctx.limit_extents[2] = 1 << 20; // larger than the memory
        ctx.refresh_limits();
        // addr < limit  ⟺  addr + extent <= mem_size
        assert_eq!(ctx.mem_limits[0], 65536 - 3);
        assert_eq!(ctx.mem_limits[1], 65536 - 67);
        assert_eq!(ctx.mem_limits[2], 0); // always-trap
        assert_eq!(ctx.mem_limits[3], 65536); // unused slot: extent 0
                                              // The boundary addresses themselves.
        assert!((65536 - 4) < ctx.mem_limits[0]); // last in-bounds word
        assert!((65536 - 3) >= ctx.mem_limits[0]); // first OOB word
    }

    #[test]
    fn funcptrs_swap() {
        let t = FuncPtrs::new(3);
        assert_eq!(t.len(), 3);
        t.set(1, 0x1234);
        assert_eq!(t.get(1), 0x1234);
        assert_eq!(t.get(0), 0);
        assert!(t.entry_addr(1) == t.base_addr() + 8);
    }

    #[test]
    fn pauser_pauses_and_releases() {
        let p = Pauser::start(
            std::time::Duration::from_millis(5),
            std::time::Duration::from_millis(5),
        );
        // Wait until a pause window opens, then park through it.
        let start = std::time::Instant::now();
        while p.flag.load(Ordering::Acquire) == 0 {
            if start.elapsed() > std::time::Duration::from_secs(2) {
                panic!("pauser never fired");
            }
            std::hint::spin_loop();
        }
        p.park(); // must return once the window closes
        p.shutdown();
    }

    #[test]
    fn trunc_helpers_work() {
        assert_eq!(lb_i32_trunc_f64_s(-3.7), -3);
        assert_eq!(lb_i32_trunc_f32_u(3.7), 3);
        assert_eq!(lb_i64_trunc_f64_u(1e18), 1_000_000_000_000_000_000);
        // Trapping path is exercised via catch_traps.
        let e =
            lb_core::catch_traps(|| -> Result<i32, lb_core::Trap> { Ok(lb_i32_trunc_f64_s(1e99)) })
                .unwrap_err();
        assert_eq!(*e.kind(), TrapKind::InvalidConversion);
    }

    #[test]
    fn u64_float_conversions() {
        assert_eq!(lb_f64_convert_u64(u64::MAX), u64::MAX as f64);
        assert_eq!(lb_f32_convert_u64(1 << 40), (1u64 << 40) as f32);
    }
}
