//! Executable code memory: W→X mapped buffers registered with the trap
//! machinery so SIGILL/SIGFPE inside generated code resolve to wasm traps.

use lb_core::registry::{CodeDesc, SlotId, CODE_REGIONS};
use std::io;

/// An executable code buffer holding one compilation's output.
#[derive(Debug)]
pub struct CodeBuf {
    base: *mut u8,
    len: usize,
    slot: Option<(SlotId, *const CodeDesc)>,
}

// SAFETY: the mapping is immutable (RX) after construction.
unsafe impl Send for CodeBuf {}
unsafe impl Sync for CodeBuf {}

impl CodeBuf {
    /// Map `code` into fresh executable memory (RW while copying, then RX)
    /// and register it with the signal handler's code registry.
    ///
    /// # Errors
    /// Propagates mmap/mprotect failures.
    pub fn publish(code: &[u8]) -> io::Result<CodeBuf> {
        assert!(!code.is_empty(), "empty code buffer");
        let len = (code.len() + 4095) & !4095;
        // SAFETY: fresh anonymous mapping.
        let p = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if p == libc::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        let base = p as *mut u8;
        // SAFETY: freshly mapped RW region of at least code.len() bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(code.as_ptr(), base, code.len());
            if libc::mprotect(p, len, libc::PROT_READ | libc::PROT_EXEC) != 0 {
                let e = io::Error::last_os_error();
                libc::munmap(p, len);
                return Err(e);
            }
        }
        let desc = Box::new(CodeDesc {
            base: base as usize,
            len,
        });
        let (slot, ptr) = CODE_REGIONS.register(desc);
        Ok(CodeBuf {
            base,
            len,
            slot: Some((slot, ptr)),
        })
    }

    /// Base address of the executable mapping.
    pub fn base(&self) -> *const u8 {
        self.base
    }

    /// Address of `offset` within the buffer.
    ///
    /// # Panics
    /// Panics if `offset` is out of range.
    pub fn addr(&self, offset: usize) -> usize {
        assert!(offset < self.len);
        self.base as usize + offset
    }

    /// Mapping length (page-rounded).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Never true; buffers are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for CodeBuf {
    fn drop(&mut self) {
        if let Some((slot, ptr)) = self.slot.take() {
            CODE_REGIONS.unregister(slot, ptr);
        }
        // SAFETY: we own the mapping.
        unsafe {
            libc::munmap(self.base as *mut libc::c_void, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executes_simple_code() {
        // mov eax, 42; ret
        let code = [0xB8, 42, 0, 0, 0, 0xC3];
        let buf = CodeBuf::publish(&code).unwrap();
        let f: extern "C" fn() -> i32 = unsafe { std::mem::transmute(buf.base()) };
        assert_eq!(f(), 42);
    }

    #[test]
    fn ud2_in_registered_code_is_a_wasm_trap() {
        // ud2; .byte 2  (Unreachable)
        let code = [0x0F, 0x0B, 0x02];
        let buf = CodeBuf::publish(&code).unwrap();
        let f: extern "C" fn() = unsafe { std::mem::transmute(buf.base()) };
        let e = lb_core::catch_traps(|| -> Result<(), lb_core::Trap> {
            f();
            Ok(())
        })
        .unwrap_err();
        assert_eq!(*e.kind(), lb_core::TrapKind::Unreachable);
    }

    #[test]
    fn trap_code_payload_selects_kind() {
        for (payload, kind) in [
            (1u8, lb_core::TrapKind::OutOfBounds),
            (3, lb_core::TrapKind::IntegerDivByZero),
            (9, lb_core::TrapKind::StackOverflow),
        ] {
            let code = [0x0F, 0x0B, payload];
            let buf = CodeBuf::publish(&code).unwrap();
            let f: extern "C" fn() = unsafe { std::mem::transmute(buf.base()) };
            let e = lb_core::catch_traps(|| -> Result<(), lb_core::Trap> {
                f();
                Ok(())
            })
            .unwrap_err();
            assert_eq!(*e.kind(), kind);
        }
    }
}
