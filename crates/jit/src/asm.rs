//! A minimal x86-64 assembler: exactly the instructions the baseline JIT
//! emits, with intra-function labels and rel32 fixups.
//!
//! Encodings follow the Intel SDM; the test suite cross-checks a sample of
//! them against `objdump` disassembly when binutils is present.

/// A general-purpose register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

#[allow(missing_docs)]
impl Reg {
    pub const RAX: Reg = Reg(0);
    pub const RCX: Reg = Reg(1);
    pub const RDX: Reg = Reg(2);
    pub const RBX: Reg = Reg(3);
    pub const RSP: Reg = Reg(4);
    pub const RBP: Reg = Reg(5);
    pub const RSI: Reg = Reg(6);
    pub const RDI: Reg = Reg(7);
    pub const R8: Reg = Reg(8);
    pub const R9: Reg = Reg(9);
    pub const R10: Reg = Reg(10);
    pub const R11: Reg = Reg(11);
    pub const R12: Reg = Reg(12);
    pub const R13: Reg = Reg(13);
    pub const R14: Reg = Reg(14);
    pub const R15: Reg = Reg(15);

    fn low(self) -> u8 {
        self.0 & 7
    }

    fn hi(self) -> bool {
        self.0 >= 8
    }
}

/// An SSE register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Xmm(pub u8);

impl Xmm {
    fn low(self) -> u8 {
        self.0 & 7
    }

    fn hi(self) -> bool {
        self.0 >= 8
    }
}

/// A memory operand `[base + index*scale + disp]`.
#[derive(Debug, Clone, Copy)]
pub struct Mem {
    /// Base register.
    pub base: Reg,
    /// Optional `(index, scale)`; scale ∈ {1, 2, 4, 8}; index ≠ RSP.
    pub index: Option<(Reg, u8)>,
    /// Signed 32-bit displacement.
    pub disp: i32,
}

impl Mem {
    /// `[base + disp]`.
    pub fn base(base: Reg, disp: i32) -> Mem {
        Mem {
            base,
            index: None,
            disp,
        }
    }

    /// `[base + index + disp]` (scale 1).
    pub fn bi(base: Reg, index: Reg, disp: i32) -> Mem {
        Mem {
            base,
            index: Some((index, 1)),
            disp,
        }
    }
}

/// Condition codes (the `cc` nibble of Jcc/SETcc/CMOVcc).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Cc {
    O = 0x0,
    No = 0x1,
    B = 0x2,
    Ae = 0x3,
    E = 0x4,
    Ne = 0x5,
    Be = 0x6,
    A = 0x7,
    S = 0x8,
    Ns = 0x9,
    P = 0xA,
    Np = 0xB,
    L = 0xC,
    Ge = 0xD,
    Le = 0xE,
    G = 0xF,
}

/// An unresolved intra-function label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Operand width for integer operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum W {
    /// 32-bit (upper half zeroed by the CPU).
    W32,
    /// 64-bit.
    W64,
}

/// `int3` — used to pad between functions in the code blob. The verifier
/// treats runs of this byte between functions as inert filler.
pub const INT3: u8 = 0xCC;

/// The instruction emitter.
#[derive(Debug, Default)]
pub struct Asm {
    buf: Vec<u8>,
    labels: Vec<Option<usize>>,
    fixups: Vec<(usize, Label)>, // rel32 location → target label
}

impl Asm {
    /// A fresh, empty assembler.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Bytes emitted so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish: apply all label fixups and return the code bytes.
    ///
    /// # Panics
    /// Panics if any referenced label was never bound.
    pub fn finish(mut self) -> Vec<u8> {
        for (at, label) in std::mem::take(&mut self.fixups) {
            let target = self.labels[label.0].expect("label bound before finish");
            let rel = target as i64 - (at as i64 + 4);
            let rel = i32::try_from(rel).expect("rel32 overflow");
            self.buf[at..at + 4].copy_from_slice(&rel.to_le_bytes());
        }
        self.buf
    }

    /// Create a new unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `l` to the current position.
    ///
    /// # Panics
    /// Panics if already bound.
    pub fn bind(&mut self, l: Label) {
        assert!(self.labels[l.0].is_none(), "label bound twice");
        self.labels[l.0] = Some(self.buf.len());
    }

    /// Whether `l` has been bound.
    pub fn is_bound(&self, l: Label) -> bool {
        self.labels[l.0].is_some()
    }

    fn b(&mut self, byte: u8) {
        self.buf.push(byte);
    }

    fn bytes(&mut self, bs: &[u8]) {
        self.buf.extend_from_slice(bs);
    }

    fn i32_(&mut self, v: i32) {
        self.bytes(&v.to_le_bytes());
    }

    /// Emit REX if needed. `w`: 64-bit, `r`: reg-field ext, `x`: index ext,
    /// `b`: rm/base ext. `force` emits REX even when 0x40 (for spl/dil…).
    fn rex(&mut self, w: bool, r: bool, x: bool, b: bool, force: bool) {
        let v = 0x40 | (u8::from(w) << 3) | (u8::from(r) << 2) | (u8::from(x) << 1) | u8::from(b);
        if v != 0x40 || force {
            self.b(v);
        }
    }

    fn modrm(&mut self, mode: u8, reg: u8, rm: u8) {
        self.b((mode << 6) | (reg << 3) | rm);
    }

    /// ModRM+SIB+disp for a memory operand, with `reg` as the reg field.
    fn mem_operand(&mut self, reg_field: u8, m: Mem) {
        let need_sib = m.index.is_some() || m.base.low() == 4;
        // Choose disp mode: rbp/r13 base cannot use mod=00.
        let (mode, disp8) = if m.disp == 0 && m.base.low() != 5 {
            (0u8, false)
        } else if i8::try_from(m.disp).is_ok() {
            (1u8, true)
        } else {
            (2u8, false)
        };
        if need_sib {
            self.modrm(mode, reg_field, 4);
            let (idx, scale) = match m.index {
                Some((r, s)) => {
                    assert!(r.low() != 4 || r.hi(), "RSP cannot be an index");
                    let ss = match s {
                        1 => 0u8,
                        2 => 1,
                        4 => 2,
                        8 => 3,
                        _ => panic!("bad scale {s}"),
                    };
                    (r.low(), ss)
                }
                None => (4u8, 0u8), // no index
            };
            self.b((scale << 6) | (idx << 3) | m.base.low());
        } else {
            self.modrm(mode, reg_field, m.base.low());
        }
        if mode == 1 {
            debug_assert!(disp8);
            self.b(m.disp as i8 as u8);
        } else if mode == 2 {
            self.i32_(m.disp);
        }
    }

    fn rex_mem(&mut self, w: bool, reg_hi: bool, m: Mem, force: bool) {
        let x = m.index.map(|(r, _)| r.hi()).unwrap_or(false);
        self.rex(w, reg_hi, x, m.base.hi(), force);
    }

    // ── moves ──────────────────────────────────────────────────────

    /// `mov r64, imm64` (or a shorter form when it fits).
    pub fn mov_ri64(&mut self, d: Reg, v: i64) {
        if v >= 0 && v <= u32::MAX as i64 {
            // mov r32, imm32 zero-extends.
            self.rex(false, false, false, d.hi(), false);
            self.b(0xB8 + d.low());
            self.i32_(v as u32 as i32);
        } else if i32::try_from(v).is_ok() {
            // mov r/m64, imm32 (sign-extended)
            self.rex(true, false, false, d.hi(), false);
            self.b(0xC7);
            self.modrm(3, 0, d.low());
            self.i32_(v as i32);
        } else {
            self.rex(true, false, false, d.hi(), false);
            self.b(0xB8 + d.low());
            self.bytes(&v.to_le_bytes());
        }
    }

    /// `mov r32, imm32`.
    pub fn mov_ri32(&mut self, d: Reg, v: i32) {
        self.rex(false, false, false, d.hi(), false);
        self.b(0xB8 + d.low());
        self.i32_(v);
    }

    /// `mov d, s` register-to-register.
    pub fn mov_rr(&mut self, w: W, d: Reg, s: Reg) {
        self.rex(w == W::W64, s.hi(), false, d.hi(), false);
        self.b(0x89);
        self.modrm(3, s.low(), d.low());
    }

    /// `mov d, [m]` (32 or 64-bit load).
    pub fn mov_rm(&mut self, w: W, d: Reg, m: Mem) {
        self.rex_mem(w == W::W64, d.hi(), m, false);
        self.b(0x8B);
        self.mem_operand(d.low(), m);
    }

    /// `mov [m], s` (32 or 64-bit store).
    pub fn mov_mr(&mut self, w: W, m: Mem, s: Reg) {
        self.rex_mem(w == W::W64, s.hi(), m, false);
        self.b(0x89);
        self.mem_operand(s.low(), m);
    }

    /// `mov qword [m], imm32` (sign-extended 64-bit immediate store).
    pub fn mov_mi(&mut self, m: Mem, v: i32) {
        self.rex_mem(true, false, m, false);
        self.b(0xC7);
        self.mem_operand(0, m);
        self.i32_(v);
    }

    /// `mov [m], s8` (8-bit store of the low byte).
    pub fn mov_mr8(&mut self, m: Mem, s: Reg) {
        // REX needed to address sil/dil/spl/bpl and r8b+.
        let force = s.low() >= 4;
        self.rex_mem(false, s.hi(), m, force);
        self.b(0x88);
        self.mem_operand(s.low(), m);
    }

    /// `mov [m], s16` (16-bit store).
    pub fn mov_mr16(&mut self, m: Mem, s: Reg) {
        self.b(0x66);
        self.rex_mem(false, s.hi(), m, false);
        self.b(0x89);
        self.mem_operand(s.low(), m);
    }

    /// `movzx d32, byte [m]`.
    pub fn movzx8(&mut self, d: Reg, m: Mem) {
        self.rex_mem(false, d.hi(), m, false);
        self.bytes(&[0x0F, 0xB6]);
        self.mem_operand(d.low(), m);
    }

    /// `movzx d32, word [m]`.
    pub fn movzx16(&mut self, d: Reg, m: Mem) {
        self.rex_mem(false, d.hi(), m, false);
        self.bytes(&[0x0F, 0xB7]);
        self.mem_operand(d.low(), m);
    }

    /// `movsx d, byte [m]` (sign-extend to 32 or 64 bits).
    pub fn movsx8(&mut self, w: W, d: Reg, m: Mem) {
        self.rex_mem(w == W::W64, d.hi(), m, false);
        self.bytes(&[0x0F, 0xBE]);
        self.mem_operand(d.low(), m);
    }

    /// `movsx d, word [m]`.
    pub fn movsx16(&mut self, w: W, d: Reg, m: Mem) {
        self.rex_mem(w == W::W64, d.hi(), m, false);
        self.bytes(&[0x0F, 0xBF]);
        self.mem_operand(d.low(), m);
    }

    /// `movsxd d64, dword [m]` (sign-extend 32→64).
    pub fn movsxd_m(&mut self, d: Reg, m: Mem) {
        self.rex_mem(true, d.hi(), m, false);
        self.b(0x63);
        self.mem_operand(d.low(), m);
    }

    /// `movsxd d64, s32` register form.
    pub fn movsxd_r(&mut self, d: Reg, s: Reg) {
        self.rex(true, d.hi(), false, s.hi(), false);
        self.b(0x63);
        self.modrm(3, d.low(), s.low());
    }

    // ── ALU ────────────────────────────────────────────────────────

    fn alu_rr(&mut self, w: W, op: u8, d: Reg, s: Reg) {
        self.rex(w == W::W64, s.hi(), false, d.hi(), false);
        self.b(op);
        self.modrm(3, s.low(), d.low());
    }

    fn alu_ri(&mut self, w: W, ext: u8, d: Reg, v: i32) {
        self.rex(w == W::W64, false, false, d.hi(), false);
        if i8::try_from(v).is_ok() {
            self.b(0x83);
            self.modrm(3, ext, d.low());
            self.b(v as i8 as u8);
        } else {
            self.b(0x81);
            self.modrm(3, ext, d.low());
            self.i32_(v);
        }
    }

    /// `add d, s`.
    pub fn add_rr(&mut self, w: W, d: Reg, s: Reg) {
        self.alu_rr(w, 0x01, d, s);
    }

    /// `add d, imm`.
    pub fn add_ri(&mut self, w: W, d: Reg, v: i32) {
        self.alu_ri(w, 0, d, v);
    }

    /// `sub d, s`.
    pub fn sub_rr(&mut self, w: W, d: Reg, s: Reg) {
        self.alu_rr(w, 0x29, d, s);
    }

    /// `sub d, imm`.
    pub fn sub_ri(&mut self, w: W, d: Reg, v: i32) {
        self.alu_ri(w, 5, d, v);
    }

    /// `and d, s`.
    pub fn and_rr(&mut self, w: W, d: Reg, s: Reg) {
        self.alu_rr(w, 0x21, d, s);
    }

    /// `and d, imm`.
    pub fn and_ri(&mut self, w: W, d: Reg, v: i32) {
        self.alu_ri(w, 4, d, v);
    }

    /// `or d, s`.
    pub fn or_rr(&mut self, w: W, d: Reg, s: Reg) {
        self.alu_rr(w, 0x09, d, s);
    }

    /// `xor d, s`.
    pub fn xor_rr(&mut self, w: W, d: Reg, s: Reg) {
        self.alu_rr(w, 0x31, d, s);
    }

    /// `cmp d, s`.
    pub fn cmp_rr(&mut self, w: W, d: Reg, s: Reg) {
        self.alu_rr(w, 0x39, d, s);
    }

    /// `cmp d, imm`.
    pub fn cmp_ri(&mut self, w: W, d: Reg, v: i32) {
        self.alu_ri(w, 7, d, v);
    }

    /// `cmp d, [m]`.
    pub fn cmp_rm(&mut self, w: W, d: Reg, m: Mem) {
        self.rex_mem(w == W::W64, d.hi(), m, false);
        self.b(0x3B);
        self.mem_operand(d.low(), m);
    }

    /// `test d, s`.
    pub fn test_rr(&mut self, w: W, d: Reg, s: Reg) {
        self.alu_rr(w, 0x85, d, s);
    }

    /// `imul d, s` (two-operand signed multiply).
    pub fn imul_rr(&mut self, w: W, d: Reg, s: Reg) {
        self.rex(w == W::W64, d.hi(), false, s.hi(), false);
        self.bytes(&[0x0F, 0xAF]);
        self.modrm(3, d.low(), s.low());
    }

    /// `neg d`.
    pub fn neg(&mut self, w: W, d: Reg) {
        self.rex(w == W::W64, false, false, d.hi(), false);
        self.b(0xF7);
        self.modrm(3, 3, d.low());
    }

    /// `cdq` / `cqo` (sign-extend rax into rdx).
    pub fn cdq_cqo(&mut self, w: W) {
        if w == W::W64 {
            self.b(0x48);
        }
        self.b(0x99);
    }

    /// `idiv s` (signed divide rdx:rax by s).
    pub fn idiv(&mut self, w: W, s: Reg) {
        self.rex(w == W::W64, false, false, s.hi(), false);
        self.b(0xF7);
        self.modrm(3, 7, s.low());
    }

    /// `div s` (unsigned divide rdx:rax by s).
    pub fn div(&mut self, w: W, s: Reg) {
        self.rex(w == W::W64, false, false, s.hi(), false);
        self.b(0xF7);
        self.modrm(3, 6, s.low());
    }

    fn shift_cl(&mut self, w: W, ext: u8, d: Reg) {
        self.rex(w == W::W64, false, false, d.hi(), false);
        self.b(0xD3);
        self.modrm(3, ext, d.low());
    }

    fn shift_imm(&mut self, w: W, ext: u8, d: Reg, v: u8) {
        self.rex(w == W::W64, false, false, d.hi(), false);
        self.b(0xC1);
        self.modrm(3, ext, d.low());
        self.b(v);
    }

    /// `shl d, cl`.
    pub fn shl_cl(&mut self, w: W, d: Reg) {
        self.shift_cl(w, 4, d);
    }

    /// `shr d, cl`.
    pub fn shr_cl(&mut self, w: W, d: Reg) {
        self.shift_cl(w, 5, d);
    }

    /// `sar d, cl`.
    pub fn sar_cl(&mut self, w: W, d: Reg) {
        self.shift_cl(w, 7, d);
    }

    /// `rol d, cl`.
    pub fn rol_cl(&mut self, w: W, d: Reg) {
        self.shift_cl(w, 0, d);
    }

    /// `ror d, cl`.
    pub fn ror_cl(&mut self, w: W, d: Reg) {
        self.shift_cl(w, 1, d);
    }

    /// `shl d, imm`.
    pub fn shl_i(&mut self, w: W, d: Reg, v: u8) {
        self.shift_imm(w, 4, d, v);
    }

    /// `shr d, imm`.
    pub fn shr_i(&mut self, w: W, d: Reg, v: u8) {
        self.shift_imm(w, 5, d, v);
    }

    /// `lea d, [m]`.
    pub fn lea(&mut self, w: W, d: Reg, m: Mem) {
        self.rex_mem(w == W::W64, d.hi(), m, false);
        self.b(0x8D);
        self.mem_operand(d.low(), m);
    }

    /// `popcnt d, s`.
    pub fn popcnt(&mut self, w: W, d: Reg, s: Reg) {
        self.b(0xF3);
        self.rex(w == W::W64, d.hi(), false, s.hi(), false);
        self.bytes(&[0x0F, 0xB8]);
        self.modrm(3, d.low(), s.low());
    }

    /// `lzcnt d, s`.
    pub fn lzcnt(&mut self, w: W, d: Reg, s: Reg) {
        self.b(0xF3);
        self.rex(w == W::W64, d.hi(), false, s.hi(), false);
        self.bytes(&[0x0F, 0xBD]);
        self.modrm(3, d.low(), s.low());
    }

    /// `tzcnt d, s`.
    pub fn tzcnt(&mut self, w: W, d: Reg, s: Reg) {
        self.b(0xF3);
        self.rex(w == W::W64, d.hi(), false, s.hi(), false);
        self.bytes(&[0x0F, 0xBC]);
        self.modrm(3, d.low(), s.low());
    }

    /// `setcc d8` (clobbers only the low byte — pair with a preceding xor).
    pub fn setcc(&mut self, cc: Cc, d: Reg) {
        let force = d.low() >= 4;
        self.rex(false, false, false, d.hi(), force);
        self.bytes(&[0x0F, 0x90 + cc as u8]);
        self.modrm(3, 0, d.low());
    }

    /// `cmovcc d, s`.
    pub fn cmov(&mut self, w: W, cc: Cc, d: Reg, s: Reg) {
        self.rex(w == W::W64, d.hi(), false, s.hi(), false);
        self.bytes(&[0x0F, 0x40 + cc as u8]);
        self.modrm(3, d.low(), s.low());
    }

    // ── control flow ───────────────────────────────────────────────

    /// `jcc label` (rel32 form).
    pub fn jcc(&mut self, cc: Cc, l: Label) {
        self.bytes(&[0x0F, 0x80 + cc as u8]);
        self.fixups.push((self.buf.len(), l));
        self.i32_(0);
    }

    /// `jmp label` (rel32 form).
    pub fn jmp(&mut self, l: Label) {
        self.b(0xE9);
        self.fixups.push((self.buf.len(), l));
        self.i32_(0);
    }

    /// `call r`.
    pub fn call_r(&mut self, r: Reg) {
        self.rex(false, false, false, r.hi(), false);
        self.b(0xFF);
        self.modrm(3, 2, r.low());
    }

    /// `call [m]`.
    pub fn call_m(&mut self, m: Mem) {
        self.rex_mem(false, false, m, false);
        self.b(0xFF);
        self.mem_operand(2, m);
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.b(0xC3);
    }

    /// `nop` (single-byte).
    pub fn nop(&mut self) {
        self.b(0x90);
    }

    /// `push r`.
    pub fn push(&mut self, r: Reg) {
        self.rex(false, false, false, r.hi(), false);
        self.b(0x50 + r.low());
    }

    /// `pop r`.
    pub fn pop(&mut self, r: Reg) {
        self.rex(false, false, false, r.hi(), false);
        self.b(0x58 + r.low());
    }

    /// `ud2` followed by a trap-code payload byte (read by the signal
    /// handler at `rip + 2`).
    pub fn ud2_trap(&mut self, code: u8) {
        self.bytes(&[0x0F, 0x0B, code]);
    }

    // ── SSE ────────────────────────────────────────────────────────

    fn sse_rr(&mut self, prefix: Option<u8>, op: &[u8], r: Xmm, rm: Xmm, w: bool) {
        if let Some(p) = prefix {
            self.b(p);
        }
        self.rex(w, r.hi(), false, rm.hi(), false);
        self.bytes(op);
        self.modrm(3, r.low(), rm.low());
    }

    fn sse_rm(&mut self, prefix: Option<u8>, op: &[u8], r: Xmm, m: Mem, w: bool) {
        if let Some(p) = prefix {
            self.b(p);
        }
        let x = m.index.map(|(i, _)| i.hi()).unwrap_or(false);
        self.rex(w, r.hi(), x, m.base.hi(), false);
        self.bytes(op);
        self.mem_operand(r.low(), m);
    }

    /// `movsd d, [m]` / `movss` when `double` is false.
    pub fn fload(&mut self, double: bool, d: Xmm, m: Mem) {
        let p = if double { 0xF2 } else { 0xF3 };
        self.sse_rm(Some(p), &[0x0F, 0x10], d, m, false);
    }

    /// `movsd [m], s` / `movss`.
    pub fn fstore(&mut self, double: bool, m: Mem, s: Xmm) {
        let p = if double { 0xF2 } else { 0xF3 };
        self.sse_rm(Some(p), &[0x0F, 0x11], s, m, false);
    }

    /// `movaps d, s` (register move; width-agnostic).
    pub fn fmov(&mut self, d: Xmm, s: Xmm) {
        self.sse_rr(None, &[0x0F, 0x28], d, s, false);
    }

    /// addsd/addss etc. families: 0x58 add, 0x5C sub, 0x59 mul, 0x5E div,
    /// 0x51 sqrt.
    pub fn farith(&mut self, double: bool, op: u8, d: Xmm, s: Xmm) {
        let p = if double { 0xF2 } else { 0xF3 };
        self.sse_rr(Some(p), &[0x0F, op], d, s, false);
    }

    /// `ucomisd a, b` / `ucomiss`.
    pub fn ucomis(&mut self, double: bool, a: Xmm, b: Xmm) {
        if double {
            self.sse_rr(Some(0x66), &[0x0F, 0x2E], a, b, false);
        } else {
            self.sse_rr(None, &[0x0F, 0x2E], a, b, false);
        }
    }

    /// `cvttsd2si d, s` (f64→int truncation) / `cvttss2si`.
    pub fn cvtt_f2i(&mut self, double: bool, w: W, d: Reg, s: Xmm) {
        self.b(if double { 0xF2 } else { 0xF3 });
        self.rex(w == W::W64, d.hi(), false, s.hi(), false);
        self.bytes(&[0x0F, 0x2C]);
        self.modrm(3, d.low(), s.low());
    }

    /// `cvtsi2sd d, s` (int→f64) / `cvtsi2ss`.
    pub fn cvt_i2f(&mut self, double: bool, w: W, d: Xmm, s: Reg) {
        self.b(if double { 0xF2 } else { 0xF3 });
        self.rex(w == W::W64, d.hi(), false, s.hi(), false);
        self.bytes(&[0x0F, 0x2A]);
        self.modrm(3, d.low(), s.low());
    }

    /// `cvtsd2ss d, s` (f64→f32).
    pub fn cvt_d2s(&mut self, d: Xmm, s: Xmm) {
        self.sse_rr(Some(0xF2), &[0x0F, 0x5A], d, s, false);
    }

    /// `cvtss2sd d, s` (f32→f64).
    pub fn cvt_s2d(&mut self, d: Xmm, s: Xmm) {
        self.sse_rr(Some(0xF3), &[0x0F, 0x5A], d, s, false);
    }

    /// `movq xmm, r64` / `movd xmm, r32`.
    pub fn movq_xr(&mut self, w: W, d: Xmm, s: Reg) {
        self.b(0x66);
        self.rex(w == W::W64, d.hi(), false, s.hi(), false);
        self.bytes(&[0x0F, 0x6E]);
        self.modrm(3, d.low(), s.low());
    }

    /// `movq r64, xmm` / `movd r32, xmm`.
    pub fn movq_rx(&mut self, w: W, d: Reg, s: Xmm) {
        self.b(0x66);
        self.rex(w == W::W64, s.hi(), false, d.hi(), false);
        self.bytes(&[0x0F, 0x7E]);
        self.modrm(3, s.low(), d.low());
    }

    /// `roundsd d, s, mode` / `roundss` (SSE4.1).
    /// Modes: 0 nearest-even, 1 floor, 2 ceil, 3 trunc (with |8 = no-exc).
    pub fn rounds(&mut self, double: bool, d: Xmm, s: Xmm, mode: u8) {
        self.b(0x66);
        self.rex(false, d.hi(), false, s.hi(), false);
        self.bytes(&[0x0F, 0x3A, if double { 0x0B } else { 0x0A }]);
        self.modrm(3, d.low(), s.low());
        self.b(mode | 8);
    }

    /// `pxor d, s` (zero an xmm with d==s).
    pub fn pxor(&mut self, d: Xmm, s: Xmm) {
        self.sse_rr(Some(0x66), &[0x0F, 0xEF], d, s, false);
    }

    /// Bitwise packed-double ops: 0x54 andpd, 0x55 andnpd, 0x56 orpd,
    /// 0x57 xorpd (used for float abs/neg via sign masks).
    pub fn fbit(&mut self, op: u8, d: Xmm, s: Xmm) {
        self.sse_rr(Some(0x66), &[0x0F, op], d, s, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disasm(code: &[u8]) -> String {
        use std::io::Write;
        use std::process::Command;
        let path = std::env::temp_dir().join(format!("lbjit-asm-{}.bin", std::process::id()));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(code).unwrap();
        drop(f);
        let out = Command::new("objdump")
            .args(["-D", "-b", "binary", "-m", "i386:x86-64", "-M", "intel"])
            .arg(&path)
            .output()
            .expect("objdump runs");
        let _ = std::fs::remove_file(&path);
        String::from_utf8_lossy(&out.stdout).to_string()
    }

    fn has_objdump() -> bool {
        std::process::Command::new("objdump")
            .arg("--version")
            .output()
            .is_ok()
    }

    #[test]
    fn basic_encodings_disassemble_correctly() {
        if !has_objdump() {
            eprintln!("skipping: no objdump");
            return;
        }
        let mut a = Asm::new();
        a.mov_ri64(Reg::RAX, 0x1122334455667788);
        a.mov_rr(W::W64, Reg::R12, Reg::RSI);
        a.mov_rm(W::W32, Reg::RCX, Mem::base(Reg::RBP, -8));
        a.add_rr(W::W32, Reg::RAX, Reg::R9);
        a.imul_rr(W::W64, Reg::RDX, Reg::R10);
        a.lea(
            W::W64,
            Reg::R11,
            Mem {
                base: Reg::R14,
                index: Some((Reg::RAX, 8)),
                disp: 0x40,
            },
        );
        a.cmp_ri(W::W64, Reg::R13, 100);
        a.mov_mi(Mem::base(Reg::RBP, -24), 7);
        a.mov_mi(Mem::base(Reg::RBP, -32), -1);
        a.push(Reg::RBP);
        a.pop(Reg::R15);
        a.ret();
        let d = disasm(&a.finish());
        assert!(d.contains("movabs rax,0x1122334455667788"), "{d}");
        assert!(d.contains("mov    r12,rsi"), "{d}");
        assert!(d.contains("mov    ecx,DWORD PTR [rbp-0x8]"), "{d}");
        assert!(d.contains("add    eax,r9d"), "{d}");
        assert!(d.contains("imul   rdx,r10"), "{d}");
        assert!(d.contains("lea    r11,[r14+rax*8+0x40]"), "{d}");
        assert!(d.contains("cmp    r13,0x64"), "{d}");
        assert!(d.contains("mov    QWORD PTR [rbp-0x18],0x7"), "{d}");
        assert!(
            d.contains("mov    QWORD PTR [rbp-0x20],0xffffffffffffffff"),
            "{d}"
        );
        assert!(d.contains("push   rbp"), "{d}");
        assert!(d.contains("pop    r15"), "{d}");
        assert!(d.contains("ret"), "{d}");
    }

    #[test]
    fn sse_encodings_disassemble_correctly() {
        if !has_objdump() {
            eprintln!("skipping: no objdump");
            return;
        }
        let mut a = Asm::new();
        a.fload(true, Xmm(0), Mem::bi(Reg::R14, Reg::RAX, 64));
        a.fstore(true, Mem::base(Reg::RBP, -16), Xmm(9));
        a.farith(true, 0x58, Xmm(1), Xmm(2));
        a.farith(false, 0x59, Xmm(3), Xmm(12));
        a.ucomis(true, Xmm(0), Xmm(1));
        a.cvtt_f2i(true, W::W32, Reg::RAX, Xmm(5));
        a.cvt_i2f(true, W::W64, Xmm(6), Reg::R8);
        a.movq_xr(W::W64, Xmm(2), Reg::RAX);
        a.movq_rx(W::W64, Reg::RCX, Xmm(2));
        a.rounds(true, Xmm(0), Xmm(0), 3);
        a.pxor(Xmm(7), Xmm(7));
        let d = disasm(&a.finish());
        assert!(d.contains("movsd  xmm0,QWORD PTR [r14+rax*1+0x40]"), "{d}");
        assert!(d.contains("movsd  QWORD PTR [rbp-0x10],xmm9"), "{d}");
        assert!(d.contains("addsd  xmm1,xmm2"), "{d}");
        assert!(d.contains("mulss  xmm3,xmm12"), "{d}");
        assert!(d.contains("ucomisd xmm0,xmm1"), "{d}");
        assert!(d.contains("cvttsd2si eax,xmm5"), "{d}");
        assert!(d.contains("cvtsi2sd xmm6,r8"), "{d}");
        assert!(d.contains("movq   xmm2,rax"), "{d}");
        assert!(d.contains("movq   rcx,xmm2"), "{d}");
        assert!(d.contains("roundsd xmm0,xmm0,0xb"), "{d}");
        assert!(d.contains("pxor   xmm7,xmm7"), "{d}");
    }

    #[test]
    fn labels_and_jumps_resolve() {
        if !has_objdump() {
            eprintln!("skipping: no objdump");
            return;
        }
        let mut a = Asm::new();
        let top = a.label();
        let out = a.label();
        a.bind(top);
        a.cmp_ri(W::W32, Reg::RAX, 10);
        a.jcc(Cc::Ge, out);
        a.add_ri(W::W32, Reg::RAX, 1);
        a.jmp(top);
        a.bind(out);
        a.ret();
        let d = disasm(&a.finish());
        assert!(d.contains("jge"), "{d}");
        assert!(d.contains("jmp"), "{d}");
    }

    #[test]
    fn branch_semantics_via_execution() {
        // Also validated end-to-end by the JIT integration tests.
        let mut a = Asm::new();
        a.ud2_trap(7);
        let code = a.finish();
        assert_eq!(code, vec![0x0F, 0x0B, 7]);
    }

    #[test]
    fn setcc_and_cmov_encode() {
        if !has_objdump() {
            eprintln!("skipping: no objdump");
            return;
        }
        let mut a = Asm::new();
        a.xor_rr(W::W32, Reg::RAX, Reg::RAX);
        a.cmp_rr(W::W32, Reg::RCX, Reg::RDX);
        a.setcc(Cc::L, Reg::RAX);
        a.setcc(Cc::E, Reg::RSI); // needs REX for sil
        a.cmov(W::W64, Cc::A, Reg::RBX, Reg::R9);
        let d = disasm(&a.finish());
        assert!(d.contains("setl   al"), "{d}");
        assert!(d.contains("sete   sil"), "{d}");
        assert!(d.contains("cmova  rbx,r9"), "{d}");
    }

    #[test]
    fn division_sequence_encodes() {
        if !has_objdump() {
            eprintln!("skipping: no objdump");
            return;
        }
        let mut a = Asm::new();
        a.cdq_cqo(W::W32);
        a.idiv(W::W32, Reg::RCX);
        a.cdq_cqo(W::W64);
        a.div(W::W64, Reg::R8);
        let d = disasm(&a.finish());
        assert!(d.contains("cdq"), "{d}");
        assert!(d.contains("idiv   ecx"), "{d}");
        assert!(d.contains("cqo"), "{d}");
        assert!(d.contains("div    r8"), "{d}");
    }

    #[test]
    fn bit_instructions_encode() {
        if !has_objdump() {
            eprintln!("skipping: no objdump");
            return;
        }
        let mut a = Asm::new();
        a.popcnt(W::W64, Reg::RAX, Reg::RCX);
        a.lzcnt(W::W32, Reg::RDX, Reg::RBX);
        a.tzcnt(W::W64, Reg::R9, Reg::R10);
        a.shl_cl(W::W32, Reg::RAX);
        a.rol_cl(W::W64, Reg::RDX);
        a.shr_i(W::W64, Reg::RSI, 3);
        let d = disasm(&a.finish());
        assert!(d.contains("popcnt rax,rcx"), "{d}");
        assert!(d.contains("lzcnt  edx,ebx"), "{d}");
        assert!(d.contains("tzcnt  r9,r10"), "{d}");
        assert!(d.contains("shl    eax,cl"), "{d}");
        assert!(d.contains("rol    rdx,cl"), "{d}");
        assert!(d.contains("shr    rsi,0x3"), "{d}");
    }

    #[test]
    fn memory_edge_cases_encode() {
        if !has_objdump() {
            eprintln!("skipping: no objdump");
            return;
        }
        let mut a = Asm::new();
        // rsp base requires SIB; rbp/r13 base requires disp.
        a.mov_rm(W::W64, Reg::RAX, Mem::base(Reg::RSP, 8));
        a.mov_rm(W::W64, Reg::RAX, Mem::base(Reg::RBP, 0));
        a.mov_rm(W::W64, Reg::RAX, Mem::base(Reg::R13, 0));
        a.mov_rm(W::W64, Reg::RAX, Mem::base(Reg::R12, 0));
        a.mov_mr8(Mem::base(Reg::R14, 1), Reg::RSI);
        a.mov_mr16(Mem::base(Reg::R14, 2), Reg::RDI);
        let d = disasm(&a.finish());
        assert!(d.contains("mov    rax,QWORD PTR [rsp+0x8]"), "{d}");
        assert!(d.contains("mov    rax,QWORD PTR [rbp+0x0]"), "{d}");
        assert!(d.contains("mov    rax,QWORD PTR [r13+0x0]"), "{d}");
        assert!(d.contains("mov    rax,QWORD PTR [r12]"), "{d}");
        assert!(d.contains("mov    BYTE PTR [r14+0x1],sil"), "{d}");
        assert!(d.contains("mov    WORD PTR [r14+0x2],di"), "{d}");
    }
}
