//! # lb-jit — a baseline x86-64 JIT for WebAssembly
//!
//! The compiling-runtime substrate of the *Leaps and bounds* reproduction:
//! a Liftoff-style single-pass JIT with three engine profiles modeling the
//! paper's runtimes — `wavm` (full optimization at load), `wasmtime`
//! (register allocation, no extra passes), and `v8` (baseline tier +
//! background optimizing recompile + periodic stop-the-world pauses).
//! Bounds-checking strategies are emitted as real instruction sequences
//! (see [`codegen`]), and hardware traps resolve through `lb-core`'s
//! signal machinery.
#![warn(missing_docs)]
pub mod asm;
pub mod codebuf;
pub mod codegen;
pub mod dataflow;
pub mod engine;
pub mod ir;
pub mod regalloc;
pub mod runtime;
pub mod verifier;

pub use codegen::OptLevel;
pub use engine::{JitEngine, JitProfile};
