//! IR dataflow framework: CFG + dominators over [`crate::ir`] blocks,
//! value numbering of address expressions, and a forward available-
//! guard-facts analysis driving two verified transformations at the mid
//! tier (trap strategy only):
//!
//! * **Dominance-based redundant guard elimination** — a `Guard` whose
//!   address value number is already covered by an equal-or-stronger
//!   guard whose generating block dominates it is dropped
//!   ([`CheckKind::ElideDominatedIr`], counter `jit.checks.gvn_elided`).
//! * **Guard/access fusion** — a `Guard` immediately dominating its sole
//!   access (the lowering invariant: every guard is adjacent to the one
//!   access it protects) is fused into a single
//!   `cmp addr, [r15 + MEM_LIMITS + 8*slot]; jae trap` pair against a
//!   per-module limit table (counter `jit.checks.fused`), replacing the
//!   three-instruction `lea`+`cmp`+`ja` flag-setup sequence.
//!
//! Everything here is a **pure function of `(module, meta, body, plan)`**
//! — no strategy, no environment — so the translation validator's caller
//! (`crate::verifier`) re-derives the identical decisions and the exact
//! limit table when checking mid-tier output, and `lb-verify` itself
//! never has to trust the compiler's claims.
//!
//! ## Soundness rules
//!
//! Value numbers are deliberately conservative: identity flows only
//! through virtual-register reuse and locals (`local.get`/`local.set`
//! propagation with memoized join numbers at merges). Arithmetic is
//! *not* folded — 32-bit machine ops produce fresh symbols in the
//! verifier's abstract interpreter, so an elision justified by folded IR
//! arithmetic could never be independently re-proven. A `local.set`
//! redefinition kills the local's number (the kill a mutation test can
//! remove); call-like ops kill every fact (covers `memory.grow` growing
//! memory mid-function and all helper clobbers); facts are widened to
//! empty at back-edge targets (loop headers), so no fact ever flows
//! around a cycle.
//!
//! Guards inside a loop the plan versions ([`FuncPlan::hoist_at`]) are
//! skipped entirely — codegen emits those bodies twice (fast + slow
//! copy) while the IR has each guard once, so a single per-pc decision
//! would be ambiguous there.

use crate::ir::{self, IrFunc, IrOp, VReg};
use lb_analysis::{CheckKind, FuncPlan, GuardOpt};
use lb_wasm::validate::FuncMeta;
use lb_wasm::{Instr, Module};
use std::collections::HashMap;

/// Marker for unreachable blocks in the immediate-dominator array.
pub const NO_IDOM: usize = usize::MAX;

/// Select the per-module fused-guard extent table: the (at most
/// [`crate::runtime::N_LIMIT_SLOTS`]) distinct `offset + bytes` extents
/// over every memory access in every defined function, most frequent
/// first (ties broken toward the smaller extent). Pure function of the
/// module, so the engine (programming `VmCtx::limit_extents`), codegen
/// (choosing fuse slots) and the verifier glue all recompute the same
/// table.
pub fn module_extents(module: &Module) -> Vec<u64> {
    let mut counts: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    for f in &module.functions {
        for instr in &f.body {
            if let Some(acc) = instr.mem_access() {
                let extent = u64::from(acc.memarg.offset) + u64::from(acc.bytes);
                *counts.entry(extent).or_insert(0) += 1;
            }
        }
    }
    let mut v: Vec<(u64, u64)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v.truncate(crate::runtime::N_LIMIT_SLOTS);
    v.into_iter().map(|(e, _)| e).collect()
}

/// Control-flow graph over the IR: basic blocks are half-open ranges of
/// instruction indices; edges follow the same label rules codegen uses
/// (`If` falls through on true, `Else` jumps to the `if`'s end label,
/// `br_table` has no fall-through).
#[derive(Debug)]
pub struct Cfg {
    /// Per-block `[start, end)` instruction index range.
    pub ranges: Vec<(usize, usize)>,
    /// Successor block indices.
    pub succs: Vec<Vec<usize>>,
    /// Predecessor block indices.
    pub preds: Vec<Vec<usize>>,
}

impl Cfg {
    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the CFG has no blocks (empty function body).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// First IR instruction index lowering wasm `pc`, if any. Instructions
/// are emitted in nondecreasing pc order, so this is a partition point.
fn first_at_pc(ir: &IrFunc, pc: u32) -> Option<usize> {
    let i = ir.insts.partition_point(|inst| inst.pc < pc);
    (i < ir.insts.len() && ir.insts[i].pc == pc).then_some(i)
}

/// The `Else` marker's jump destination: the owning `if`'s end label
/// (`meta.ctrl` of the `else` pc), exactly as codegen emits it.
fn else_dest(meta: &FuncMeta, pc: u32) -> u32 {
    meta.ctrl[pc as usize]
}

/// Build the CFG for a lowered function.
pub fn build_cfg(ir: &IrFunc, meta: &FuncMeta) -> Cfg {
    if ir.insts.is_empty() {
        return Cfg {
            ranges: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
        };
    }
    // Leaders: entry, every branch target, every post-branch instruction.
    let mut leaders = vec![0usize];
    let add_dest = |dest: u32, leaders: &mut Vec<usize>| {
        if dest < meta.body_len {
            if let Some(i) = first_at_pc(ir, dest) {
                leaders.push(i);
            }
        }
    };
    for (i, inst) in ir.insts.iter().enumerate() {
        let mut ends_block = true;
        match &inst.op {
            IrOp::Br { dest } => add_dest(*dest, &mut leaders),
            IrOp::BrIf { dest, .. } | IrOp::If { dest, .. } => add_dest(*dest, &mut leaders),
            IrOp::BrTable { dests, .. } => {
                for &d in dests {
                    add_dest(d, &mut leaders);
                }
            }
            IrOp::Else => add_dest(else_dest(meta, inst.pc), &mut leaders),
            IrOp::Return | IrOp::Unreachable => {}
            _ => ends_block = false,
        }
        if ends_block && i + 1 < ir.insts.len() {
            leaders.push(i + 1);
        }
    }
    leaders.sort_unstable();
    leaders.dedup();

    let n = leaders.len();
    let mut ranges = Vec::with_capacity(n);
    for (b, &start) in leaders.iter().enumerate() {
        let end = leaders.get(b + 1).copied().unwrap_or(ir.insts.len());
        ranges.push((start, end));
    }
    // Block index containing IR instruction `i`.
    let block_of = |i: usize| leaders.partition_point(|&l| l <= i) - 1;
    let block_at_pc = |pc: u32| -> Option<usize> {
        if pc >= meta.body_len {
            return None;
        }
        first_at_pc(ir, pc).map(block_of)
    };

    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (b, &(_, end)) in ranges.iter().enumerate() {
        let last = &ir.insts[end - 1];
        let fall = (end < ir.insts.len()).then(|| block_of(end));
        let mut out: Vec<usize> = Vec::new();
        match &last.op {
            IrOp::Br { dest } => out.extend(block_at_pc(*dest)),
            IrOp::Else => out.extend(block_at_pc(else_dest(meta, last.pc))),
            IrOp::BrIf { dest, .. } | IrOp::If { dest, .. } => {
                out.extend(fall);
                out.extend(block_at_pc(*dest));
            }
            IrOp::BrTable { dests, .. } => {
                for &d in dests {
                    out.extend(block_at_pc(d));
                }
            }
            IrOp::Return | IrOp::Unreachable => {}
            _ => out.extend(fall),
        }
        out.sort_unstable();
        out.dedup();
        succs[b] = out;
    }
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (b, ss) in succs.iter().enumerate() {
        for &s in ss {
            preds[s].push(b);
        }
    }
    Cfg {
        ranges,
        succs,
        preds,
    }
}

/// Reverse postorder of the blocks reachable from block 0.
pub fn reverse_postorder(succs: &[Vec<usize>]) -> Vec<usize> {
    let n = succs.len();
    if n == 0 {
        return Vec::new();
    }
    let mut post = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    // Iterative DFS with an explicit edge cursor per frame.
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    seen[0] = true;
    while let Some(&mut (b, ref mut cur)) = stack.last_mut() {
        if *cur < succs[b].len() {
            let s = succs[b][*cur];
            *cur += 1;
            if !seen[s] {
                seen[s] = true;
                stack.push((s, 0));
            }
        } else {
            post.push(b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Immediate dominators (Cooper–Harvey–Kennedy iterative algorithm).
/// Works on arbitrary graphs, including irreducible ones; block 0 is the
/// entry and its own idom. Unreachable blocks get [`NO_IDOM`].
pub fn dominators(succs: &[Vec<usize>]) -> Vec<usize> {
    let n = succs.len();
    let mut idom = vec![NO_IDOM; n];
    if n == 0 {
        return idom;
    }
    let rpo = reverse_postorder(succs);
    let mut rpo_index = vec![usize::MAX; n];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b] = i;
    }
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (b, ss) in succs.iter().enumerate() {
        if rpo_index[b] == usize::MAX {
            continue; // edges from unreachable blocks don't count
        }
        for &s in ss {
            preds[s].push(b);
        }
    }
    idom[0] = 0;
    let intersect = |idom: &[usize], rpo_index: &[usize], mut a: usize, mut b: usize| {
        while a != b {
            while rpo_index[a] > rpo_index[b] {
                a = idom[a];
            }
            while rpo_index[b] > rpo_index[a] {
                b = idom[b];
            }
        }
        a
    };
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.iter().skip(1) {
            let mut new = NO_IDOM;
            for &p in &preds[b] {
                if idom[p] == NO_IDOM {
                    continue;
                }
                new = if new == NO_IDOM {
                    p
                } else {
                    intersect(&idom, &rpo_index, new, p)
                };
            }
            if new != NO_IDOM && idom[b] != new {
                idom[b] = new;
                changed = true;
            }
        }
    }
    idom
}

/// Whether block `a` dominates block `b` under `idom` (reflexive).
pub fn dominates(idom: &[usize], a: usize, b: usize) -> bool {
    if idom.get(b).copied().unwrap_or(NO_IDOM) == NO_IDOM {
        return false;
    }
    let mut x = b;
    loop {
        if x == a {
            return true;
        }
        let up = idom[x];
        if up == x || up == NO_IDOM {
            return false;
        }
        x = up;
    }
}

// ── value numbering + available guard facts ─────────────────────────────

/// Interned value-number keys. Identity flows only through vreg reuse
/// and locals; every other def is opaque (unique per vreg).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum VnKey {
    /// A local's value on function entry.
    Param(u32),
    /// The (unique) value a vreg was defined with.
    Vreg(u32),
    /// Merge of disagreeing local values at a join, memoized per
    /// `(block, local)` so the fixpoint converges.
    Join(u32, u32),
}

type Vn = VnKey;

/// One available guard fact: every path to here passed an emitted guard
/// proving `value(vn) + covered <= mem_size`, generated in `gen_block`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fact {
    covered: u64,
    gen_block: usize,
}

/// Per-block-entry dataflow state.
#[derive(Debug, Clone, PartialEq)]
struct State {
    /// Value number currently held by each local.
    locals: Vec<Vn>,
    /// Available guard facts, keyed by value number.
    facts: std::collections::BTreeMap<Vn, Fact>,
}

impl State {
    fn entry(n_locals: u32) -> State {
        State {
            locals: (0..n_locals).map(VnKey::Param).collect(),
            facts: std::collections::BTreeMap::new(),
        }
    }
}

/// Must-facts join: locals agree or get the memoized join number; facts
/// survive only when present in every predecessor (covered = min), and
/// only when all copies share one generating block — a fact that merged
/// from distinct guards no longer has a single dominating generator we
/// can point the verifier at, so it is dropped.
fn join(states: &[&State], block: u32) -> State {
    let first = states[0];
    let mut out = State {
        locals: first.locals.clone(),
        facts: first.facts.clone(),
    };
    for s in &states[1..] {
        for (l, vn) in out.locals.iter_mut().enumerate() {
            if s.locals[l] != *vn {
                *vn = VnKey::Join(block, l as u32);
            }
        }
        out.facts.retain(|k, f| match s.facts.get(k) {
            Some(other) if other.gen_block == f.gen_block => {
                f.covered = f.covered.min(other.covered);
                true
            }
            _ => false,
        });
    }
    out
}

/// Wasm pc ranges codegen duplicates (versioned loops); guards inside
/// are neither producers nor consumers of facts.
fn hoist_ranges(plan: Option<&FuncPlan>) -> Vec<(u32, u32)> {
    plan.map_or(Vec::new(), |p| {
        p.hoists().iter().map(|h| (h.loop_pc, h.end_pc)).collect()
    })
}

fn in_ranges(ranges: &[(u32, u32)], pc: u32) -> bool {
    ranges.iter().any(|&(lo, hi)| pc >= lo && pc <= hi)
}

/// Compute the guard-optimization decisions for one function: which
/// `Emit` guards the mid tier may drop (`GvnElide`) and which it may
/// fuse against the module limit table (`Fuse(slot)`). Keyed by wasm pc,
/// sorted; at most one decision per pc (the lowering emits one guard per
/// access site, and versioned ranges are excluded).
///
/// Pure function of its arguments — callers on both sides of the
/// trust boundary (codegen and the verifier glue) recompute it
/// identically. `extents` must be [`module_extents`] of the same module.
pub fn decide(
    module: &Module,
    meta: &FuncMeta,
    body: &[Instr],
    plan: Option<&FuncPlan>,
    extents: &[u64],
) -> Vec<(u32, GuardOpt)> {
    let irf = ir::lower(module, meta, body, plan);
    decide_ir(&irf, meta, plan, extents)
}

/// [`decide`] over an already-lowered function (shared with tests).
pub fn decide_ir(
    irf: &IrFunc,
    meta: &FuncMeta,
    plan: Option<&FuncPlan>,
    extents: &[u64],
) -> Vec<(u32, GuardOpt)> {
    let cfg = build_cfg(irf, meta);
    if cfg.is_empty() {
        return Vec::new();
    }
    let idom = dominators(&cfg.succs);
    let rpo = reverse_postorder(&cfg.succs);
    let mut rpo_index = vec![usize::MAX; cfg.len()];
    for (i, &b) in rpo.iter().enumerate() {
        rpo_index[b] = i;
    }
    // Back-edge targets (loop headers, plus anything irreducible-shaped):
    // facts are widened to empty there, so none flows around a cycle.
    let mut widen = vec![false; cfg.len()];
    for (b, ss) in cfg.succs.iter().enumerate() {
        if rpo_index[b] == usize::MAX {
            continue;
        }
        for &s in ss {
            if rpo_index[s] <= rpo_index[b] {
                widen[s] = true;
            }
        }
    }
    let ranges = hoist_ranges(plan);

    // Fixpoint over block-entry states. The VN universe is finite
    // (params, vregs, memoized joins) and facts only shrink at joins, so
    // this converges; the visit cap is a safety net for pathological
    // shapes — exceeding it widens the block to the empty-fact state.
    const VISIT_CAP: usize = 64;
    let mut entry: Vec<Option<State>> = vec![None; cfg.len()];
    entry[0] = Some(State::entry(irf.n_locals));
    let mut vreg_vn: HashMap<u32, Vn> = HashMap::new();
    let mut visits = vec![0usize; cfg.len()];
    // Popping from the back: seed in reverse RPO so the first sweep runs
    // in RPO order.
    let mut work: Vec<usize> = rpo.iter().rev().copied().collect();
    let mut decisions: std::collections::BTreeMap<u32, GuardOpt> = Default::default();

    // Transfer one block from its entry state; when `record` is set,
    // final decisions are written.
    let transfer = |b: usize,
                    st: &State,
                    vreg_vn: &mut HashMap<u32, Vn>,
                    decisions: &mut std::collections::BTreeMap<u32, GuardOpt>,
                    record: bool|
     -> State {
        let mut st = st.clone();
        let vn_of = |vreg_vn: &HashMap<u32, Vn>, v: VReg| -> Vn {
            vreg_vn.get(&v.0).copied().unwrap_or(VnKey::Vreg(v.0))
        };
        let (start, end) = cfg.ranges[b];
        for inst in &irf.insts[start..end] {
            match &inst.op {
                IrOp::GetLocal { dst, local } => {
                    vreg_vn.insert(dst.0, st.locals[*local as usize]);
                }
                IrOp::SetLocal { src, local, .. } => {
                    // Redefinition: the local's old value number dies here
                    // (the IR-level kill site the mutation suite corrupts).
                    st.locals[*local as usize] = vn_of(vreg_vn, *src);
                }
                IrOp::Call { ret, .. } => {
                    // Call-like ops (incl. `memory.grow` and helper
                    // lowerings) clobber the caller-saved file and may
                    // grow memory: kill every fact.
                    st.facts.clear();
                    if let Some(r) = ret {
                        vreg_vn.insert(r.0, VnKey::Vreg(r.0));
                    }
                }
                IrOp::Guard {
                    addr,
                    kind,
                    offset,
                    bytes,
                } => {
                    if *kind != CheckKind::Emit || in_ranges(&ranges, inst.pc) {
                        continue;
                    }
                    let extent = u64::from(*offset) + u64::from(*bytes);
                    let vn = vn_of(vreg_vn, *addr);
                    let covered = st.facts.get(&vn).copied();
                    match covered {
                        Some(f) if f.covered >= extent && dominates(&idom, f.gen_block, b) => {
                            if record {
                                decisions.insert(inst.pc, GuardOpt::GvnElide);
                            }
                        }
                        _ => {
                            if record {
                                if let Some(slot) = extents.iter().position(|&e| e == extent) {
                                    decisions.insert(inst.pc, GuardOpt::Fuse(slot as u8));
                                }
                            }
                            // The emitted (plain or fused) guard proves
                            // `addr + extent <= mem_size` on fall-through.
                            if covered.map_or(true, |f| f.covered < extent) {
                                st.facts.insert(
                                    vn,
                                    Fact {
                                        covered: extent,
                                        gen_block: b,
                                    },
                                );
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        st
    };

    while let Some(b) = work.pop() {
        let Some(st) = entry[b].clone() else { continue };
        let out = transfer(b, &st, &mut vreg_vn, &mut decisions, false);
        for &s in &cfg.succs[b] {
            let mut incoming = out.clone();
            if widen[s] {
                incoming.facts.clear();
            }
            let merged = match &entry[s] {
                None => incoming,
                Some(prev) => join(&[prev, &incoming], s as u32),
            };
            if entry[s].as_ref() != Some(&merged) {
                visits[s] += 1;
                if visits[s] > VISIT_CAP {
                    // Widen: empty facts, memoized joins everywhere.
                    let mut widened = merged;
                    widened.facts.clear();
                    for (l, vn) in widened.locals.iter_mut().enumerate() {
                        *vn = VnKey::Join(s as u32, l as u32);
                    }
                    if entry[s].as_ref() != Some(&widened) {
                        entry[s] = Some(widened);
                        work.push(s);
                    }
                } else {
                    entry[s] = Some(merged);
                    work.push(s);
                }
            }
        }
    }

    // Final pass in RPO with converged states: vreg numbers defined in a
    // dominating block are recomputed before their uses are reached.
    vreg_vn.clear();
    for &b in &rpo {
        if let Some(st) = entry[b].clone() {
            transfer(b, &st, &mut vreg_vn, &mut decisions, true);
        }
    }
    decisions.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // ── dominators on raw successor lists ───────────────────────────

    #[test]
    fn dominators_linear_chain() {
        let succs = vec![vec![1], vec![2], vec![]];
        let idom = dominators(&succs);
        assert_eq!(idom, vec![0, 0, 1]);
        assert!(dominates(&idom, 0, 2));
        assert!(dominates(&idom, 1, 2));
        assert!(!dominates(&idom, 2, 1));
        assert!(dominates(&idom, 2, 2));
    }

    #[test]
    fn dominators_diamond() {
        // 0 → {1,2} → 3
        let succs = vec![vec![1, 2], vec![3], vec![3], vec![]];
        let idom = dominators(&succs);
        assert_eq!(idom[3], 0, "join's idom is the fork, not either arm");
        assert!(!dominates(&idom, 1, 3));
        assert!(!dominates(&idom, 2, 3));
        assert!(dominates(&idom, 0, 3));
    }

    #[test]
    fn dominators_loop_back_edge() {
        // 0 → 1 → 2 → 1 (back edge), 2 → 3
        let succs = vec![vec![1], vec![2], vec![1, 3], vec![]];
        let idom = dominators(&succs);
        assert_eq!(idom, vec![0, 0, 1, 2]);
        assert!(dominates(&idom, 1, 3), "loop header dominates the exit");
    }

    #[test]
    fn dominators_irreducible() {
        // Classic irreducible shape: 0 → {1, 2}, 1 ↔ 2, 2 → 3. Neither
        // loop entry dominates the other; both are idom'd by the fork.
        let succs = vec![vec![1, 2], vec![2], vec![1, 3], vec![]];
        let idom = dominators(&succs);
        assert_eq!(idom[1], 0);
        assert_eq!(idom[2], 0);
        assert_eq!(idom[3], 2);
        assert!(!dominates(&idom, 1, 2));
        assert!(!dominates(&idom, 2, 1));
    }

    #[test]
    fn dominators_unreachable_block() {
        // Block 2 has no in-edges from the entry component.
        let succs = vec![vec![1], vec![], vec![1]];
        let idom = dominators(&succs);
        assert_eq!(idom[2], NO_IDOM);
        assert!(!dominates(&idom, 0, 2));
        // The unreachable predecessor must not perturb block 1's idom.
        assert_eq!(idom[1], 0);
    }

    #[test]
    fn dominators_nested_loops() {
        // 0 → 1 → 2 → 3 → 2, 3 → 1, 3 → 4
        let succs = vec![vec![1], vec![2], vec![3], vec![1, 2, 4], vec![]];
        let idom = dominators(&succs);
        assert_eq!(idom, vec![0, 0, 1, 2, 3]);
    }
}
