//! The JIT engine: profiles modeling the paper's compiling runtimes, module
//! compilation, entry trampolines, import thunks, instances, and the
//! background tier-up thread.

use crate::asm;
use crate::asm::Xmm;
use crate::asm::{Asm, Mem, Reg, W};
use crate::codebuf::CodeBuf;
use crate::codegen::{compile_function_mapped, CompileParams, OptLevel};
use crate::runtime::{ctx_off, FuncPtrs, InstanceInner, Pauser, TableEntry, VmCtx};
use lb_core::exec::{build_instance_parts, Engine, Instance, Linker, LoadError, LoadedModule};
use lb_core::{catch_traps, BoundsStrategy, LinearMemory, MemoryConfig, Trap, TrapKind};
use lb_wasm::validate::{validate, ModuleMeta};
use lb_wasm::{FuncType, Module, ValType, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// How much host stack a wasm activation may consume before the inline
/// stack check traps.
const WASM_STACK_BUDGET: usize = 1 << 20;

/// Counter name for code bytes emitted at a tier (static, so the
/// telemetry registry can intern it).
fn code_bytes_counter(opt: OptLevel) -> &'static str {
    match opt {
        OptLevel::None => "jit.code_bytes.none",
        OptLevel::Basic => "jit.code_bytes.basic",
        OptLevel::Mid => "jit.code_bytes.mid",
        OptLevel::Full => "jit.code_bytes.full",
    }
}

/// Tier label attached to profiler code regions.
fn tier_label(opt: OptLevel) -> &'static str {
    match opt {
        OptLevel::None => "baseline",
        OptLevel::Basic => "basic",
        OptLevel::Mid => "mid",
        OptLevel::Full => "full",
    }
}

/// Hand a freshly published code buffer to `lb-prof` so samples landing
/// in it resolve to functions and wasm offsets. Regions stay registered
/// (with a private byte copy) for the life of the process — tier-up
/// replaces the funcptrs, not the registration — so samples taken in an
/// old tier still attribute correctly. No-op unless profiling is on.
fn register_prof_region(
    buf: &CodeBuf,
    blob: &[u8],
    strategy: BoundsStrategy,
    opt: OptLevel,
    funcs: Vec<lb_prof::FuncRange>,
) {
    if !lb_prof::enabled() {
        return;
    }
    lb_prof::register_region(lb_prof::RegionInfo {
        base: buf.addr(0),
        len: blob.len(),
        code: blob.to_vec(),
        tier: tier_label(opt),
        strategy: strategy.name(),
        mem_size_disp: ctx_off::MEM_SIZE,
        funcs,
    });
}

/// An engine profile: which of the paper's runtimes this engine models.
#[derive(Debug, Clone, Copy)]
pub struct JitProfile {
    /// Report name (matches the paper's runtime names).
    pub name: &'static str,
    /// Code quality of the initial compile.
    pub opt: OptLevel,
    /// Recompile at `Full` on a background thread and swap code in
    /// (V8's baseline → TurboFan tiering).
    pub tiered: bool,
    /// Poll for stop-the-world pauses at loop back-edges.
    pub safepoints: bool,
    /// Run the periodic GC pauser thread (V8's worker-thread pauses).
    pub gc_pause: bool,
    /// Run the `lb-analysis` bounds-check elimination pass at load time
    /// and consume its plan at the optimizing tiers.
    pub analysis: bool,
    /// Let the analysis synthesize loop-preheader guards and version the
    /// covered loops (no effect with `analysis` off).
    pub hoisting: bool,
    /// Run the IR dataflow guard optimizations (`crate::dataflow`) at the
    /// mid tier under the trap strategy: dominance-based redundant-guard
    /// elimination and guard/access fusion. No effect at other tiers or
    /// strategies. The `LB_GUARDOPT=0` environment knob force-disables it
    /// process-wide.
    pub guardopt: bool,
    /// Target tier of the background recompile when `tiered` (the
    /// `LB_TIER` knob swaps this between `Full` and `Mid`).
    pub tier_target: OptLevel,
}

impl JitProfile {
    /// Toggle the static bounds-check analysis (on by default; turning it
    /// off restores the legacy per-basic-block peephole, for differential
    /// testing).
    pub fn with_analysis(mut self, on: bool) -> JitProfile {
        self.analysis = on;
        self
    }

    /// Toggle hoisted-guard synthesis / loop versioning (on by default;
    /// turning it off keeps per-access checks, for differential testing
    /// and A/B benchmarks).
    pub fn with_hoisting(mut self, on: bool) -> JitProfile {
        self.hoisting = on;
        self
    }

    /// Toggle the mid tier's IR dataflow guard optimizations (GVN-based
    /// elision + guard/access fusion; on by default — turning it off
    /// restores the exact pre-dataflow emission, for differential testing
    /// and A/B benchmarks).
    pub fn with_guardopt(mut self, on: bool) -> JitProfile {
        self.guardopt = on;
        self
    }

    /// Use the mid-tier (`OptLevel::Mid`: IR-driven linear-scan register
    /// homes plus redundant-access elimination) as this profile's
    /// optimizing tier — the load-time tier for AOT profiles, the
    /// background tier-up target for tiered ones. The `LB_TIER=mid`
    /// environment knob routes here.
    pub fn with_midtier(mut self, on: bool) -> JitProfile {
        if self.tiered {
            self.tier_target = if on { OptLevel::Mid } else { OptLevel::Full };
        } else if on {
            self.opt = OptLevel::Mid;
        }
        self
    }

    /// WAVM: LLVM-quality AOT — our `Full` tier at load time.
    pub fn wavm() -> JitProfile {
        JitProfile {
            name: "wavm",
            opt: OptLevel::Full,
            tiered: false,
            safepoints: false,
            gc_pause: false,
            analysis: true,
            hoisting: true,
            guardopt: true,
            tier_target: OptLevel::Full,
        }
    }

    /// Wasmtime: Cranelift AOT — register allocation without the extra
    /// optimization passes.
    pub fn wasmtime() -> JitProfile {
        JitProfile {
            name: "wasmtime",
            opt: OptLevel::Basic,
            tiered: false,
            safepoints: false,
            gc_pause: false,
            analysis: true,
            hoisting: true,
            guardopt: true,
            tier_target: OptLevel::Full,
        }
    }

    /// V8-TurboFan: baseline tier immediately, optimizing tier in the
    /// background, plus periodic stop-the-world pauses.
    pub fn v8() -> JitProfile {
        JitProfile {
            name: "v8",
            opt: OptLevel::None,
            tiered: true,
            safepoints: true,
            gc_pause: true,
            analysis: true,
            hoisting: true,
            guardopt: true,
            tier_target: OptLevel::Full,
        }
    }
}

/// The JIT execution engine.
pub struct JitEngine {
    profile: JitProfile,
    pauser: OnceLock<Arc<Pauser>>,
}

impl std::fmt::Debug for JitEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JitEngine")
            .field("profile", &self.profile.name)
            .finish()
    }
}

impl JitEngine {
    /// Create an engine with the given profile.
    pub fn new(profile: JitProfile) -> JitEngine {
        JitEngine {
            profile,
            pauser: OnceLock::new(),
        }
    }

    /// The profile this engine runs.
    pub fn profile(&self) -> JitProfile {
        self.profile
    }

    fn pauser(&self) -> Option<Arc<Pauser>> {
        if !self.profile.gc_pause {
            return None;
        }
        Some(
            self.pauser
                .get_or_init(|| {
                    Pauser::start(
                        std::time::Duration::from_millis(10),
                        std::time::Duration::from_micros(300),
                    )
                })
                .clone(),
        )
    }
}

/// Compilation artifacts for one strategy (code must be regenerated per
/// strategy because checks are inlined).
struct StrategyCode {
    /// Keeps executable mappings alive; index 0 is the initial tier.
    bufs: Mutex<Vec<Arc<CodeBuf>>>,
    funcptrs: Arc<FuncPtrs>,
    /// Entry-trampoline address per defined function.
    trampolines: Vec<usize>,
    /// 1 once the background tier-up (if any) has been published.
    tiered_up: AtomicU32,
}

/// A compiled module (per engine); per-strategy code is built lazily at
/// instantiation since the memory config carries the strategy.
pub struct JitModule {
    module: Module,
    meta: ModuleMeta,
    profile: JitProfile,
    pauser: Option<Arc<Pauser>>,
    /// Canonical type id per type index (types may repeat after decode).
    canon_types: Vec<usize>,
    /// Bounds-check plan from `lb-analysis` (absent when the profile
    /// disables analysis).
    plan: Option<Arc<lb_analysis::ModulePlan>>,
    /// Fused-guard extent table ([`crate::dataflow::module_extents`]),
    /// programmed into every instance's `VmCtx::limit_extents`.
    extents: Vec<u64>,
    code: Mutex<HashMap<BoundsStrategy, Arc<StrategyCode>>>,
}

/// Process-wide guard-optimization kill switch: `LB_GUARDOPT=0` (or
/// `off`) disables the dataflow pass regardless of profile knobs.
fn guardopt_env() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| !matches!(std::env::var("LB_GUARDOPT").as_deref(), Ok("0") | Ok("off")))
}

impl std::fmt::Debug for JitModule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JitModule")
            .field("profile", &self.profile.name)
            .field("funcs", &self.module.functions.len())
            .finish()
    }
}

impl Engine for JitEngine {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn load(&self, module: &Module) -> Result<Arc<dyn LoadedModule>, LoadError> {
        let meta = validate(module)?;
        // The internal calling convention passes up to 6 integer and 8
        // float arguments in registers.
        for (i, ty) in module.types.iter().enumerate() {
            let ints = ty.params.iter().filter(|t| t.is_int()).count();
            let floats = ty.params.iter().filter(|t| t.is_float()).count();
            if ints > 6 || floats > 8 {
                return Err(LoadError::Unsupported(format!(
                    "type {i}: too many parameters for the register convention"
                )));
            }
        }
        let canon_types = canonical_type_ids(module);
        let plan = self.profile.analysis.then(|| {
            let cfg = lb_analysis::AnalysisConfig {
                interprocedural: true,
                hoist: self.profile.hoisting,
            };
            Arc::new(lb_analysis::analyze_module_with(module, &meta, &cfg))
        });
        let extents = crate::dataflow::module_extents(module);
        Ok(Arc::new(JitModule {
            module: module.clone(),
            meta,
            profile: self.profile,
            pauser: self.pauser(),
            canon_types,
            plan,
            extents,
            code: Mutex::new(HashMap::new()),
        }))
    }
}

fn canonical_type_ids(module: &Module) -> Vec<usize> {
    let mut ids = Vec::with_capacity(module.types.len());
    for (i, ty) in module.types.iter().enumerate() {
        let id = module.types.iter().position(|t| t == ty).unwrap_or(i);
        ids.push(id);
    }
    ids
}

impl JitModule {
    fn compile_all(
        &self,
        strategy: BoundsStrategy,
        opt: OptLevel,
        funcptrs: &FuncPtrs,
    ) -> (Vec<u8>, Vec<usize>, Vec<usize>, Vec<lb_prof::FuncRange>) {
        let guardopt = self.profile.guardopt && guardopt_env();
        let params = CompileParams {
            module: &self.module,
            metas: &self.meta.funcs,
            strategy,
            opt,
            safepoints: self.profile.safepoints,
            funcptrs_base: funcptrs.base_addr(),
            plans: self.plan.as_deref(),
            guardopt,
            limit_extents: &self.extents,
        };
        let ni = self.module.num_imported_funcs() as usize;
        let mut blob = Vec::new();
        let mut func_offsets = Vec::with_capacity(self.module.functions.len());
        let mut func_ranges = Vec::with_capacity(self.module.functions.len());
        let compile_ns = lb_telemetry::histogram("jit.compile_ns");
        let compile_count = lb_telemetry::counter("jit.compile.count");
        let code_bytes = lb_telemetry::counter(code_bytes_counter(opt));
        for di in 0..self.module.functions.len() {
            let _span = lb_telemetry::span!("jit.compile", di);
            let t0 = lb_telemetry::clock::now_ns();
            let (code, pc_map) = compile_function_mapped(params, di);
            compile_ns.record(lb_telemetry::clock::now_ns().saturating_sub(t0));
            if crate::verifier::mode() != crate::verifier::VerifyMode::Off {
                crate::verifier::verify_emitted(
                    &self.module,
                    &self.meta,
                    self.plan.as_deref(),
                    strategy,
                    opt,
                    guardopt,
                    di,
                    &code,
                );
            }
            compile_count.inc();
            code_bytes.add(code.len() as u64);
            func_ranges.push(lb_prof::FuncRange {
                func_index: di as u32,
                start: blob.len() as u32,
                end: (blob.len() + code.len()) as u32,
                pc_map,
            });
            func_offsets.push(blob.len());
            blob.extend_from_slice(&code);
            // Align entries for decoding niceness.
            while blob.len() % 16 != 0 {
                blob.push(asm::INT3);
            }
        }
        // Import thunks (so tables can hold imports).
        let mut import_offsets = Vec::with_capacity(ni);
        for ii in 0..ni {
            let ty = self.module.func_type(ii as u32).expect("import type");
            let code = gen_import_thunk(ii as u32, ty);
            import_offsets.push(blob.len());
            blob.extend_from_slice(&code);
            while blob.len() % 16 != 0 {
                blob.push(asm::INT3);
            }
        }
        (blob, func_offsets, import_offsets, func_ranges)
    }

    fn strategy_code(&self, strategy: BoundsStrategy) -> Arc<StrategyCode> {
        let mut map = self.code.lock().unwrap();
        if let Some(sc) = map.get(&strategy) {
            return Arc::clone(sc);
        }
        let ni = self.module.num_imported_funcs() as usize;
        let nf = self.module.num_funcs() as usize;
        let funcptrs = FuncPtrs::new(nf);

        let (mut blob, func_offsets, import_offsets, func_ranges) =
            self.compile_all(strategy, self.profile.opt, &funcptrs);

        // Entry trampolines, one per defined function.
        let mut tramp_offsets = Vec::with_capacity(self.module.functions.len());
        for di in 0..self.module.functions.len() {
            let fi = ni + di;
            let ty = self.module.func_type(fi as u32).expect("defined type");
            let code = gen_trampoline(ty, funcptrs.entry_addr(fi));
            tramp_offsets.push(blob.len());
            blob.extend_from_slice(&code);
            while blob.len() % 16 != 0 {
                blob.push(asm::INT3);
            }
        }

        let buf = Arc::new(CodeBuf::publish(&blob).expect("publish code"));
        register_prof_region(&buf, &blob, strategy, self.profile.opt, func_ranges);
        for (di, off) in func_offsets.iter().enumerate() {
            funcptrs.set(ni + di, buf.addr(*off));
        }
        for (ii, off) in import_offsets.iter().enumerate() {
            funcptrs.set(ii, buf.addr(*off));
        }
        let trampolines: Vec<usize> = tramp_offsets.iter().map(|o| buf.addr(*o)).collect();

        let sc = Arc::new(StrategyCode {
            bufs: Mutex::new(vec![buf]),
            funcptrs,
            trampolines,
            tiered_up: AtomicU32::new(0),
        });
        map.insert(strategy, Arc::clone(&sc));
        sc
    }

    /// Kick off the V8-style background recompilation.
    fn spawn_tier_up(&self, strategy: BoundsStrategy, sc: Arc<StrategyCode>) {
        if !self.profile.tiered || sc.tiered_up.swap(1, Ordering::AcqRel) != 0 {
            return;
        }
        let module = self.module.clone();
        let metas = self.meta.clone();
        let safepoints = self.profile.safepoints;
        let target = self.profile.tier_target;
        let plan = self.plan.clone();
        let guardopt = self.profile.guardopt && guardopt_env();
        let extents = self.extents.clone();
        std::thread::Builder::new()
            .name("lb-tierup".into())
            .spawn(move || {
                let _span = lb_telemetry::span!("jit.tierup", module.functions.len());
                let ni = module.num_imported_funcs() as usize;
                let mut blob = Vec::new();
                let mut offsets = Vec::with_capacity(module.functions.len());
                let mut func_ranges = Vec::with_capacity(module.functions.len());
                let compile_ns = lb_telemetry::histogram("jit.compile_ns");
                let compile_count = lb_telemetry::counter("jit.compile.count");
                let code_bytes = lb_telemetry::counter(code_bytes_counter(target));
                for di in 0..module.functions.len() {
                    let params = CompileParams {
                        module: &module,
                        metas: &metas.funcs,
                        strategy,
                        opt: target,
                        safepoints,
                        funcptrs_base: sc.funcptrs.base_addr(),
                        plans: plan.as_deref(),
                        guardopt,
                        limit_extents: &extents,
                    };
                    let t0 = lb_telemetry::clock::now_ns();
                    let (code, pc_map) = compile_function_mapped(params, di);
                    compile_ns.record(lb_telemetry::clock::now_ns().saturating_sub(t0));
                    if crate::verifier::mode() != crate::verifier::VerifyMode::Off {
                        crate::verifier::verify_emitted(
                            &module,
                            &metas,
                            plan.as_deref(),
                            strategy,
                            target,
                            guardopt,
                            di,
                            &code,
                        );
                    }
                    compile_count.inc();
                    code_bytes.add(code.len() as u64);
                    func_ranges.push(lb_prof::FuncRange {
                        func_index: di as u32,
                        start: blob.len() as u32,
                        end: (blob.len() + code.len()) as u32,
                        pc_map,
                    });
                    offsets.push(blob.len());
                    blob.extend_from_slice(&code);
                    while blob.len() % 16 != 0 {
                        blob.push(asm::INT3);
                    }
                }
                let buf = Arc::new(CodeBuf::publish(&blob).expect("publish tier-up code"));
                register_prof_region(&buf, &blob, strategy, target, func_ranges);
                // Swap function pointers; running activations finish on the
                // old code, future calls use the optimized tier.
                for (di, off) in offsets.iter().enumerate() {
                    sc.funcptrs.set(ni + di, buf.addr(*off));
                }
                lb_telemetry::counter("jit.tierup.count").inc();
                sc.bufs.lock().unwrap().push(buf);
            })
            .expect("spawn tier-up thread");
    }
}

impl LoadedModule for JitModule {
    fn instantiate(
        &self,
        config: &MemoryConfig,
        linker: &Linker,
    ) -> Result<Box<dyn Instance>, LoadError> {
        // Instantiation latency is the pool's headline metric: pooled
        // linear-memory reuse should collapse this histogram's tail.
        let t0 = std::time::Instant::now();
        // `self` is always held in an Arc by the engine API.
        let parts = build_instance_parts(&self.module, config, linker)?;
        // Compile for the strategy the memory actually ended up with: if
        // construction degraded along the fallback chain (uffd → mprotect
        // → trap), code generated for the requested strategy would not
        // match the memory's protection scheme (e.g. raw guard-page
        // accesses over a software-checked memory).
        let effective = parts
            .memory
            .as_ref()
            .map(|m| m.strategy())
            .unwrap_or(config.strategy);
        let sc = self.strategy_code(effective);
        self.spawn_tier_up(effective, Arc::clone(&sc));

        let host_sigs: Vec<FuncType> = self
            .module
            .imports
            .iter()
            .map(|imp| self.module.types[imp.type_idx as usize].clone())
            .collect();

        let table: Box<[TableEntry]> = parts
            .table
            .iter()
            .map(|slot| match slot {
                Some(fi) => TableEntry {
                    func_idx: *fi as usize,
                    type_id: self.canon_types
                        [self.module.func_type_idx(*fi).expect("elem type") as usize],
                },
                None => TableEntry {
                    func_idx: usize::MAX,
                    type_id: usize::MAX,
                },
            })
            .collect();

        let globals: Box<[u64]> = parts.globals.into_boxed_slice();

        let mut inner = Box::new(InstanceInner {
            memory: parts.memory,
            host: parts.host,
            host_sigs,
            pauser: self.pauser.clone(),
        });

        let mut limit_extents = [0usize; crate::runtime::N_LIMIT_SLOTS];
        for (slot, &e) in self.extents.iter().enumerate() {
            limit_extents[slot] = e as usize;
        }
        let mut ctx = Box::new(VmCtx {
            mem_base: inner
                .memory
                .as_ref()
                .map(|m| m.base())
                .unwrap_or(std::ptr::null_mut()),
            mem_size: inner.memory.as_ref().map(|m| m.committed()).unwrap_or(0),
            globals: globals.as_ptr() as *mut u64,
            table: table.as_ptr(),
            table_len: table.len(),
            stack_limit: 0,
            instance: &mut *inner,
            pause_flag: self
                .pauser
                .as_ref()
                .map(|p| p.flag_ptr())
                .unwrap_or(std::ptr::null()),
            mem_limits: [0; crate::runtime::N_LIMIT_SLOTS],
            limit_extents,
        });
        ctx.refresh_limits();

        let mut inst = JitInstance {
            module_name_cache: HashMap::new(),
            module: self.module.clone(),
            sc,
            inner,
            ctx,
            globals,
            table,
            canon: self.canon_types.clone(),
        };

        if let Some(start) = self.module.start {
            inst.invoke_idx(start, &[]).map_err(LoadError::Start)?;
        }
        lb_telemetry::histogram("jit.instantiate_ns").record(t0.elapsed().as_nanos() as u64);
        Ok(Box::new(inst))
    }
}

/// A live JIT instance.
pub struct JitInstance {
    module: Module,
    module_name_cache: HashMap<String, u32>,
    sc: Arc<StrategyCode>,
    inner: Box<InstanceInner>,
    ctx: Box<VmCtx>,
    globals: Box<[u64]>,
    table: Box<[TableEntry]>,
    canon: Vec<usize>,
}

// SAFETY: all raw pointers in ctx point into boxes owned by this struct;
// the instance is used from one thread at a time (`&mut self`).
unsafe impl Send for JitInstance {}

impl std::fmt::Debug for JitInstance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JitInstance")
            .field("globals", &self.globals.len())
            .field("table", &self.table.len())
            .finish()
    }
}

impl JitInstance {
    fn invoke_idx(&mut self, fi: u32, args: &[Value]) -> Result<Option<Value>, Trap> {
        let _ = &self.canon;
        let ni = self.module.num_imported_funcs();
        if fi < ni {
            return Err(Trap::new(TrapKind::Host(
                "cannot invoke an imported function directly".into(),
            )));
        }
        let ty = self
            .module
            .func_type(fi)
            .map_err(|e| Trap::new(TrapKind::Host(e.to_string())))?
            .clone();
        if ty.params.len() != args.len() {
            return Err(Trap::new(TrapKind::Host(format!(
                "expected {} arguments, got {}",
                ty.params.len(),
                args.len()
            ))));
        }
        for (p, a) in ty.params.iter().zip(args) {
            if a.ty() != *p {
                return Err(Trap::new(TrapKind::Host(format!(
                    "argument type mismatch: expected {p}, got {}",
                    a.ty()
                ))));
            }
        }
        let mut bits = [0u64; 16];
        for (i, a) in args.iter().enumerate() {
            bits[i] = a.to_bits();
        }
        let mut ret: u64 = 0;

        let tramp_addr = self.sc.trampolines[(fi - ni) as usize];
        // SAFETY: the trampoline was generated for exactly this signature
        // shape (ctx, args, ret) and the code buffer outlives the call.
        let tramp: extern "C" fn(*mut VmCtx, *const u64, *mut u64) =
            unsafe { std::mem::transmute(tramp_addr) };

        // Stack limit: a fixed budget below the current stack pointer.
        let marker = 0u8;
        self.ctx.stack_limit = (&marker as *const u8 as usize).saturating_sub(WASM_STACK_BUDGET);
        if let Some(m) = self.inner.memory.as_ref() {
            self.ctx.mem_size = m.committed();
            self.ctx.refresh_limits();
        }

        let ctx_ptr: *mut VmCtx = &mut *self.ctx;
        let args_ptr = bits.as_ptr();
        let ret_ptr: *mut u64 = &mut ret;
        catch_traps(move || {
            tramp(ctx_ptr, args_ptr, ret_ptr);
            Ok(())
        })?;

        Ok(ty.result().map(|t| Value::from_bits(t, ret)))
    }
}

impl Instance for JitInstance {
    fn invoke(&mut self, name: &str, args: &[Value]) -> Result<Option<Value>, Trap> {
        let fi = if let Some(&fi) = self.module_name_cache.get(name) {
            fi
        } else {
            let fi = self.module.exported_func(name).ok_or_else(|| {
                Trap::new(TrapKind::Host(format!("no exported function {name:?}")))
            })?;
            self.module_name_cache.insert(name.to_string(), fi);
            fi
        };
        self.invoke_idx(fi, args)
    }

    fn memory(&self) -> Option<&LinearMemory> {
        self.inner.memory.as_ref()
    }
}

// ── trampoline / thunk generation ────────────────────────────────────────

const INT_ARGS: [Reg; 6] = [Reg::RDI, Reg::RSI, Reg::RDX, Reg::RCX, Reg::R8, Reg::R9];

/// `extern "C" fn(ctx: *mut VmCtx, args: *const u64, ret: *mut u64)` that
/// enters the wasm calling convention (r15 = ctx, r14 = mem base, args in
/// registers) and routes through the function-pointer table so tier-up
/// applies to exports too.
fn gen_trampoline(ty: &FuncType, funcptr_entry_addr: usize) -> Vec<u8> {
    let mut a = Asm::new();
    for r in [Reg::RBP, Reg::RBX, Reg::R12, Reg::R13, Reg::R14, Reg::R15] {
        a.push(r);
    }
    a.push(Reg::RDX); // ret pointer (7th push: aligns rsp to 16 at call)
    a.mov_rr(W::W64, Reg::R15, Reg::RDI);
    a.mov_rm(W::W64, Reg::R14, Mem::base(Reg::R15, ctx_off::MEM_BASE));

    // Float args first, then int args with RSI (the array pointer) last.
    let mut fi = 0usize;
    let mut int_loads: Vec<(Reg, i32)> = Vec::new();
    for (i, p) in ty.params.iter().enumerate() {
        match p {
            ValType::F32 | ValType::F64 => {
                a.fload(true, Xmm(fi as u8), Mem::base(Reg::RSI, i as i32 * 8));
                fi += 1;
            }
            ValType::I32 | ValType::I64 => {
                int_loads.push((INT_ARGS[int_loads.len()], i as i32 * 8));
            }
        }
    }
    int_loads.sort_by_key(|(r, _)| if *r == Reg::RSI { 1 } else { 0 });
    for (r, off) in int_loads {
        a.mov_rm(W::W64, r, Mem::base(Reg::RSI, off));
    }

    a.mov_ri64(Reg::R11, funcptr_entry_addr as i64);
    a.call_m(Mem::base(Reg::R11, 0));

    a.pop(Reg::RDX);
    match ty.result() {
        Some(ValType::I32 | ValType::I64) => a.mov_mr(W::W64, Mem::base(Reg::RDX, 0), Reg::RAX),
        Some(ValType::F32 | ValType::F64) => a.fstore(true, Mem::base(Reg::RDX, 0), Xmm(0)),
        None => {}
    }
    for r in [Reg::R15, Reg::R14, Reg::R13, Reg::R12, Reg::RBX, Reg::RBP] {
        a.pop(r);
    }
    a.ret();
    a.finish()
}

/// A thunk with the wasm calling convention that forwards to the host-call
/// helper, so function tables may contain imported functions.
fn gen_import_thunk(import_idx: u32, ty: &FuncType) -> Vec<u8> {
    let mut a = Asm::new();
    a.push(Reg::RBP);
    a.mov_rr(W::W64, Reg::RBP, Reg::RSP);
    let n = ty.params.len().max(1);
    let frame = ((n * 8 + 15) & !15) as i32;
    a.sub_ri(W::W64, Reg::RSP, frame);
    // Store args descending from rbp-8 (matching the helper's contract:
    // arg i at base - 8i).
    let mut ii = 0usize;
    let mut fi = 0usize;
    for (i, p) in ty.params.iter().enumerate() {
        let m = Mem::base(Reg::RBP, -8 * (1 + i as i32));
        match p {
            ValType::I32 | ValType::I64 => {
                a.mov_mr(W::W64, m, INT_ARGS[ii]);
                ii += 1;
            }
            ValType::F32 | ValType::F64 => {
                a.fstore(true, m, Xmm(fi as u8));
                fi += 1;
            }
        }
    }
    a.mov_rr(W::W64, Reg::RDI, Reg::R15);
    a.mov_ri32(Reg::RSI, import_idx as i32);
    a.lea(W::W64, Reg::RDX, Mem::base(Reg::RBP, -8));
    a.xor_rr(W::W32, Reg::RCX, Reg::RCX);
    a.mov_ri64(
        Reg::R11,
        crate::runtime::lb_jit_host as *const () as usize as i64,
    );
    a.call_r(Reg::R11);
    match ty.result() {
        Some(ValType::I32 | ValType::I64) => {
            a.mov_rm(W::W64, Reg::RAX, Mem::base(Reg::RBP, -8));
        }
        Some(ValType::F32 | ValType::F64) => {
            a.fload(true, Xmm(0), Mem::base(Reg::RBP, -8));
        }
        None => {}
    }
    a.mov_rr(W::W64, Reg::RSP, Reg::RBP);
    a.pop(Reg::RBP);
    a.ret();
    a.finish()
}
