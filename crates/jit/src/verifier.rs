//! Opt-in post-codegen translation validation.
//!
//! With `LB_VERIFY=1` every function the JIT compiles (at any tier) is
//! decoded and re-proven by `lb-verify` straight after codegen; findings
//! are logged to stderr and counted. With `LB_VERIFY=strict` a finding
//! aborts compilation instead. Off by default — validation roughly doubles
//! per-function compile time.
//!
//! Counters (all monotonic):
//! * `verify.sites_checked` — linear-memory sites examined
//! * `verify.proven_guarded` — proven by a check at the site, the guard
//!   region, or a static bound
//! * `verify.proven_elided` — proven by a re-checked elision (plan entry
//!   or peephole)
//! * `verify.proven_hoisted` — fast-loop-body sites proven by a matched
//!   loop-preheader guard (mirrors `jit.checks.hoisted`)
//! * `verify.proven_gvn` — IR-dataflow elisions re-proven from a dominating
//!   machine-level fact (mirrors `jit.checks.gvn_elided`)
//! * `verify.proven_fused` — fused compare-and-trap guards proven exact
//!   against the per-extent limit table (mirrors `jit.checks.fused`)
//! * `verify.findings` — everything that did not prove

use crate::codegen::OptLevel;
use lb_core::BoundsStrategy;
use lb_verify::{verify_function, FuncInput, FuncReport};
use lb_wasm::validate::ModuleMeta;
use lb_wasm::{Module, PAGE_SIZE};
use std::sync::OnceLock;

/// How much teeth `LB_VERIFY` has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyMode {
    /// No validation (the default).
    Off,
    /// Validate and log findings to stderr.
    Log,
    /// Validate and panic on the first finding (fails compilation).
    Strict,
}

/// The `LB_VERIFY` setting, read once per process.
pub fn mode() -> VerifyMode {
    static MODE: OnceLock<VerifyMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("LB_VERIFY").as_deref() {
        Ok("strict") => VerifyMode::Strict,
        Ok("") | Ok("0") | Err(_) => VerifyMode::Off,
        Ok(_) => VerifyMode::Log,
    })
}

struct VerifyCounters {
    sites: lb_telemetry::Counter,
    guarded: lb_telemetry::Counter,
    elided: lb_telemetry::Counter,
    hoisted: lb_telemetry::Counter,
    gvn: lb_telemetry::Counter,
    fused: lb_telemetry::Counter,
    findings: lb_telemetry::Counter,
}

fn counters() -> &'static VerifyCounters {
    static C: OnceLock<VerifyCounters> = OnceLock::new();
    C.get_or_init(|| VerifyCounters {
        sites: lb_telemetry::counter("verify.sites_checked"),
        guarded: lb_telemetry::counter("verify.proven_guarded"),
        elided: lb_telemetry::counter("verify.proven_elided"),
        hoisted: lb_telemetry::counter("verify.proven_hoisted"),
        gvn: lb_telemetry::counter("verify.proven_gvn"),
        fused: lb_telemetry::counter("verify.proven_fused"),
        findings: lb_telemetry::counter("verify.findings"),
    })
}

/// Validate one just-compiled function and record the outcome.
///
/// `opt` must be the tier the code was compiled at: the baseline tier
/// ignores the analysis plan, so the verifier must too. Panics on any
/// finding in [`VerifyMode::Strict`].
pub fn verify_emitted(
    module: &Module,
    meta: &ModuleMeta,
    plan: Option<&lb_analysis::ModulePlan>,
    strategy: BoundsStrategy,
    opt: OptLevel,
    guardopt: bool,
    defined_idx: usize,
    code: &[u8],
) -> FuncReport {
    let mem_min_bytes = match plan {
        Some(p) => p.mem_min_bytes,
        None => module
            .memory
            .as_ref()
            .map_or(0, |m| u64::from(m.limits.min) * PAGE_SIZE as u64),
    };
    // The plan is consulted by the optimizing tiers only (mirrors
    // `mem_operand`).
    let func_plan = if opt == OptLevel::None {
        None
    } else {
        plan.map(|p| &p.funcs[defined_idx])
    };
    // Re-derive the mid tier's register homes independently: `allocate` is
    // a pure function of the same inputs codegen consumed, so the verifier
    // recomputes rather than trusts the allocation it is checking.
    let homes = (opt == OptLevel::Mid).then(|| {
        crate::regalloc::allocate(
            module,
            &meta.funcs[defined_idx],
            &module.functions[defined_idx].body,
            func_plan,
        )
        .homes()
        .iter()
        .map(|&(l, r)| (l, r.0))
        .collect()
    });
    // Re-run the guard-optimization pass on the wasm, not the machine code:
    // the decisions tell the verifier which *site kinds* to expect, while
    // each elision/fusion must still be re-proven from emitted instructions.
    let (limit_extents, guardopt_decisions) =
        if guardopt && opt == OptLevel::Mid && strategy == BoundsStrategy::Trap {
            let extents = crate::dataflow::module_extents(module);
            let decisions = crate::dataflow::decide(
                module,
                &meta.funcs[defined_idx],
                &module.functions[defined_idx].body,
                func_plan,
                &extents,
            );
            (Some(extents), Some(decisions))
        } else {
            (None, None)
        };
    let report = verify_function(&FuncInput {
        func_index: defined_idx,
        code,
        body: &module.functions[defined_idx].body,
        meta: &meta.funcs[defined_idx],
        strategy,
        plan: func_plan,
        mem_min_bytes,
        reserve_bytes: lb_core::DEFAULT_RESERVE_BYTES as u64,
        homes,
        limit_extents,
        guardopt: guardopt_decisions,
    });
    let c = counters();
    c.sites.add(report.sites_checked);
    c.guarded.add(report.proven_guarded);
    c.elided.add(report.proven_elided);
    c.hoisted.add(report.proven_hoisted);
    c.gvn.add(report.proven_gvn);
    c.fused.add(report.proven_fused);
    c.findings.add(report.findings.len() as u64);
    if !report.findings.is_empty() {
        for f in &report.findings {
            eprintln!("lb-verify [{strategy:?}/{opt:?}]: {f}");
        }
        if mode() == VerifyMode::Strict {
            panic!(
                "LB_VERIFY=strict: {} finding(s) in defined function {defined_idx} \
                 ({strategy:?}, {opt:?})",
                report.findings.len()
            );
        }
    }
    report
}
