//! Three-address IR between wasm decode and machine-code emission.
//!
//! The mid-tier lowers each function body into a flat sequence of
//! [`IrOp`]s over *virtual registers*: every operand-stack value gets a
//! fresh vreg, local reads/writes become explicit defs/uses of a local
//! index, and every linear-memory access is preceded by an explicit
//! [`IrOp::Guard`] carrying the `CheckKind` the analysis plan assigned
//! to the site (bounds checks are first-class IR, not a lowering detail
//! — the same principle the translation validator enforces on the
//! emitted bytes). Call-like instructions — `call`, `call_indirect`,
//! `memory.grow`, and the ops the baseline lowers through `extern "C"`
//! helpers — are marked [`IrOp::Call`] because they clobber the
//! caller-saved register file.
//!
//! The operand stack is replayed with the validator's `height_at` table
//! as ground truth: at every pc the vreg stack is resynchronized to the
//! declared height, so control-flow merges (else arms, branch targets,
//! dead-code revival) need no special cases — merged values simply get
//! fresh vregs, exactly like the emitter's canonical-slot rule.
//!
//! `lb-regalloc` (`crate::regalloc`) consumes this form for liveness,
//! live intervals, and the redundant-access pass. The lowering is a pure
//! function of `(body, meta, module, plan)` — no strategy, no
//! environment — so the verifier can re-derive the identical IR (and
//! from it the identical register assignment) when checking mid-tier
//! output.

use lb_analysis::{CheckKind, FuncPlan};
use lb_wasm::validate::FuncMeta;
use lb_wasm::{Instr, Module};

/// A virtual register holding one operand-stack value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VReg(pub u32);

/// One IR operation. `pc` on the containing [`IrInst`] ties it back to
/// the wasm instruction it lowers.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum IrOp {
    /// `dst <- constant` (value immaterial to allocation).
    Const {
        dst: VReg,
    },
    /// `dst <- local[l]` — a reload; elided when `l` has a register home.
    GetLocal {
        dst: VReg,
        local: u32,
    },
    /// `local[l] <- src`. `tee` keeps `src` on the stack. A non-tee set
    /// whose local is not live-out is a dead store the allocator elides.
    SetLocal {
        src: VReg,
        local: u32,
        tee: bool,
    },
    /// `dst <- global[g]` (no call, no clobber).
    GetGlobal {
        dst: VReg,
    },
    /// `global[g] <- src`.
    SetGlobal {
        src: VReg,
    },
    /// Bounds check for the following access, in the shape the plan
    /// chose. `Emit` when no plan was consulted.
    Guard {
        addr: VReg,
        kind: CheckKind,
        offset: u32,
        bytes: u32,
    },
    /// `dst <- memory[addr + offset]`.
    Load {
        dst: VReg,
        addr: VReg,
    },
    /// `memory[addr + offset] <- src`.
    Store {
        addr: VReg,
        src: VReg,
    },
    /// Pure computation: pops `srcs`, pushes `dsts` (unary/binary ops,
    /// comparisons, conversions, `select`, `memory.size`).
    Pure {
        dsts: Vec<VReg>,
        srcs: Vec<VReg>,
    },
    /// Call-like op: clobbers every caller-saved register. Covers
    /// `call`, `call_indirect`, `memory.grow`, and helper-lowered ops
    /// (trapping truncations, float min/max/copysign, u64→float).
    Call {
        args: Vec<VReg>,
        ret: Option<VReg>,
    },
    /// Hoisted preheader guards at a versioned `Loop`: reads the bound
    /// locals, keeping them live into the loop even when the body never
    /// mentions them again.
    HoistGuard {
        locals: Vec<u32>,
    },
    /// Structured-control marker (`block`/`loop`/`if`/`else`/`end`).
    Enter {
        is_loop: bool,
    },
    Else,
    Exit,
    /// Unconditional branch to `dest` (a wasm pc; `body_len` = return).
    Br {
        dest: u32,
    },
    /// Conditional branch on `cond`.
    BrIf {
        cond: VReg,
        dest: u32,
    },
    /// Indexed branch on `sel` to one of `dests` (default last).
    BrTable {
        sel: VReg,
        dests: Vec<u32>,
    },
    /// `if` falls through on true, jumps to `dest` on false.
    If {
        cond: VReg,
        dest: u32,
    },
    Return,
    Unreachable,
    /// Pop-and-discard.
    Drop {
        src: VReg,
    },
    Nop,
}

/// An [`IrOp`] tagged with the wasm pc it lowers.
#[derive(Debug, Clone, PartialEq)]
pub struct IrInst {
    /// Instruction index in the wasm body.
    pub pc: u32,
    /// Loop-nesting depth at this pc (0 = top level).
    pub loop_depth: u32,
    /// The operation.
    pub op: IrOp,
}

/// A function lowered to three-address form.
#[derive(Debug, Clone, Default)]
pub struct IrFunc {
    /// Ops in program order; several may share a pc.
    pub insts: Vec<IrInst>,
    /// Number of virtual registers used.
    pub n_vregs: u32,
    /// Number of locals (params + declared).
    pub n_locals: u32,
}

/// Operand-stack effect `(pops, pushes)` of one instruction. Control
/// instructions are handled structurally and return `(0, 0)` here.
fn stack_effect(instr: &Instr, module: &Module) -> (usize, usize) {
    use Instr::*;
    match instr {
        Unreachable | Nop | Block(_) | Loop(_) | Else | End | Br(_) | Return => (0, 0),
        If(_) | BrIf(_) | BrTable(_) | Drop => (1, 0),
        Select => (3, 1),
        LocalGet(_) | GlobalGet(_) => (0, 1),
        LocalSet(_) | GlobalSet(_) => (1, 0),
        LocalTee(_) => (1, 1),
        Call(fi) => module.func_type(*fi).map_or((0, 0), |ty| {
            (ty.params.len(), usize::from(ty.result().is_some()))
        }),
        CallIndirect(ti) => module.types.get(*ti as usize).map_or((0, 0), |ty| {
            (ty.params.len() + 1, usize::from(ty.result().is_some()))
        }),
        MemorySize => (0, 1),
        MemoryGrow => (1, 1),
        I32Const(_) | I64Const(_) | F32Const(_) | F64Const(_) => (0, 1),
        i => {
            if let Some(acc) = i.mem_access() {
                if acc.is_store {
                    (2, 0)
                } else {
                    (1, 1)
                }
            } else if is_unary(i) {
                (1, 1)
            } else {
                // Everything else in the MVP numeric set is binary.
                (2, 1)
            }
        }
    }
}

/// Ops consuming one value and producing one (unary arithmetic,
/// conversions, reinterprets, eqz tests).
fn is_unary(instr: &Instr) -> bool {
    use Instr::*;
    matches!(
        instr,
        I32Eqz
            | I64Eqz
            | I32Clz
            | I32Ctz
            | I32Popcnt
            | I64Clz
            | I64Ctz
            | I64Popcnt
            | F32Abs
            | F32Neg
            | F32Ceil
            | F32Floor
            | F32Trunc
            | F32Nearest
            | F32Sqrt
            | F64Abs
            | F64Neg
            | F64Ceil
            | F64Floor
            | F64Trunc
            | F64Nearest
            | F64Sqrt
            | I32WrapI64
            | I32TruncF32S
            | I32TruncF32U
            | I32TruncF64S
            | I32TruncF64U
            | I64ExtendI32S
            | I64ExtendI32U
            | I64TruncF32S
            | I64TruncF32U
            | I64TruncF64S
            | I64TruncF64U
            | F32ConvertI32S
            | F32ConvertI32U
            | F32ConvertI64S
            | F32ConvertI64U
            | F32DemoteF64
            | F64ConvertI32S
            | F64ConvertI32U
            | F64ConvertI64S
            | F64ConvertI64U
            | F64PromoteF32
            | I32ReinterpretF32
            | I64ReinterpretF64
            | F32ReinterpretI32
            | F64ReinterpretI64
    )
}

/// Ops the baseline emitter lowers through an `extern "C"` helper call
/// (so they clobber caller-saved registers like a real call).
fn is_helper_call(instr: &Instr) -> bool {
    use Instr::*;
    matches!(
        instr,
        F32Min
            | F32Max
            | F64Min
            | F64Max
            | F32Copysign
            | F64Copysign
            | I32TruncF32S
            | I32TruncF32U
            | I32TruncF64S
            | I32TruncF64U
            | I64TruncF32S
            | I64TruncF32U
            | I64TruncF64S
            | I64TruncF64U
            | F32ConvertI64U
            | F64ConvertI64U
    )
}

/// Lower one validated function body to three-address form.
///
/// The walk mirrors the emitter's reachability rule (dead code after
/// `unreachable`/`br`/`br_table`/`return`/`else` until a branch-target
/// label revives it) so every op corresponds to code the emitter
/// actually produces. `plan` must be the same plan codegen consults;
/// pass `None` for plan-less tiers.
pub fn lower(module: &Module, meta: &FuncMeta, body: &[Instr], plan: Option<&FuncPlan>) -> IrFunc {
    // Branch-target labels, exactly as codegen's `collect_labels`.
    let mut labels: std::collections::HashSet<u32> = std::collections::HashSet::new();
    for (pc, instr) in body.iter().enumerate() {
        match instr {
            Instr::If(_) | Instr::Else => {
                labels.insert(meta.ctrl[pc]);
            }
            Instr::Br(_) | Instr::BrIf(_) => {
                labels.insert(meta.branch_table[meta.ctrl[pc] as usize].dest_pc);
            }
            Instr::BrTable(t) => {
                let base = meta.ctrl[pc] as usize;
                for k in 0..=t.targets.len() {
                    labels.insert(meta.branch_table[base + k].dest_pc);
                }
            }
            _ => {}
        }
    }
    labels.remove(&meta.body_len);

    let mut f = IrFunc {
        n_locals: meta.local_types.len() as u32,
        ..IrFunc::default()
    };
    let mut next = 0u32;
    let mut fresh = || {
        let v = VReg(next);
        next += 1;
        v
    };
    let mut vstack: Vec<VReg> = Vec::new();
    // The height resync above every instruction makes underflow
    // impossible on validated input; the fallback is never reached.
    fn popv(v: &mut Vec<VReg>) -> VReg {
        v.pop().unwrap_or(VReg(0))
    }
    // Kinds of open blocks; `true` = loop (for nesting depth).
    let mut blocks: Vec<bool> = Vec::new();
    let mut dead = false;

    for (pc, instr) in body.iter().enumerate() {
        use Instr::*;
        if labels.contains(&(pc as u32)) {
            dead = false;
        }
        let loop_depth = blocks.iter().filter(|&&l| l).count() as u32;
        let emit = |op: IrOp, f: &mut IrFunc| {
            f.insts.push(IrInst {
                pc: pc as u32,
                loop_depth,
                op,
            });
        };
        if dead {
            // Structure still nests in dead code (the emitter tracks
            // depth the same way to find the reviving `End`).
            match instr {
                Block(_) | If(_) => blocks.push(false),
                Loop(_) => blocks.push(true),
                End => {
                    if blocks.pop().is_none() {
                        break;
                    }
                }
                _ => {}
            }
            continue;
        }
        // Resynchronize the vreg stack to the validator's height: merge
        // points and revived code materialize fresh vregs for values
        // whose producers ran on another path.
        let h = meta.height_at[pc] as usize;
        while vstack.len() > h {
            vstack.pop();
        }
        while vstack.len() < h {
            vstack.push(fresh());
        }

        match instr {
            Unreachable => {
                emit(IrOp::Unreachable, &mut f);
                dead = true;
            }
            Nop => emit(IrOp::Nop, &mut f),
            Block(_) => {
                blocks.push(false);
                emit(IrOp::Enter { is_loop: false }, &mut f);
            }
            Loop(_) => {
                blocks.push(true);
                if let Some(hp) = plan.and_then(|p| p.hoist_at(pc as u32)) {
                    emit(
                        IrOp::HoistGuard {
                            locals: hp.guards.iter().map(|g| g.bound_local).collect(),
                        },
                        &mut f,
                    );
                }
                emit(IrOp::Enter { is_loop: true }, &mut f);
            }
            If(_) => {
                blocks.push(false);
                let cond = popv(&mut vstack);
                emit(
                    IrOp::If {
                        cond,
                        dest: meta.ctrl[pc],
                    },
                    &mut f,
                );
            }
            Else => {
                emit(IrOp::Else, &mut f);
                dead = true;
            }
            End => {
                emit(IrOp::Exit, &mut f);
                if blocks.pop().is_none() {
                    break;
                }
            }
            Br(_) => {
                emit(
                    IrOp::Br {
                        dest: meta.branch_table[meta.ctrl[pc] as usize].dest_pc,
                    },
                    &mut f,
                );
                dead = true;
            }
            BrIf(_) => {
                let cond = popv(&mut vstack);
                emit(
                    IrOp::BrIf {
                        cond,
                        dest: meta.branch_table[meta.ctrl[pc] as usize].dest_pc,
                    },
                    &mut f,
                );
            }
            BrTable(t) => {
                let sel = popv(&mut vstack);
                let base = meta.ctrl[pc] as usize;
                let dests = (0..=t.targets.len())
                    .map(|k| meta.branch_table[base + k].dest_pc)
                    .collect();
                emit(IrOp::BrTable { sel, dests }, &mut f);
                dead = true;
            }
            Return => {
                emit(IrOp::Return, &mut f);
                dead = true;
            }
            Call(_) | CallIndirect(_) | MemoryGrow => {
                let (pops, pushes) = stack_effect(instr, module);
                let args = vstack.split_off(vstack.len() - pops);
                let ret = (pushes == 1).then(&mut fresh);
                if let Some(r) = ret {
                    vstack.push(r);
                }
                emit(IrOp::Call { args, ret }, &mut f);
            }
            Drop => {
                let src = popv(&mut vstack);
                emit(IrOp::Drop { src }, &mut f);
            }
            LocalGet(l) => {
                let dst = fresh();
                vstack.push(dst);
                emit(IrOp::GetLocal { dst, local: *l }, &mut f);
            }
            LocalSet(l) | LocalTee(l) => {
                let tee = matches!(instr, LocalTee(_));
                let src = if tee {
                    vstack.last().copied().unwrap_or(VReg(0))
                } else {
                    popv(&mut vstack)
                };
                emit(
                    IrOp::SetLocal {
                        src,
                        local: *l,
                        tee,
                    },
                    &mut f,
                );
            }
            GlobalGet(_) => {
                let dst = fresh();
                vstack.push(dst);
                emit(IrOp::GetGlobal { dst }, &mut f);
            }
            GlobalSet(_) => {
                let src = popv(&mut vstack);
                emit(IrOp::SetGlobal { src }, &mut f);
            }
            i => {
                if let Some(acc) = i.mem_access() {
                    let kind = plan.map_or(CheckKind::Emit, |p| p.kind_at(pc));
                    if acc.is_store {
                        let src = popv(&mut vstack);
                        let addr = popv(&mut vstack);
                        emit(
                            IrOp::Guard {
                                addr,
                                kind,
                                offset: acc.memarg.offset,
                                bytes: acc.bytes,
                            },
                            &mut f,
                        );
                        emit(IrOp::Store { addr, src }, &mut f);
                    } else {
                        let addr = popv(&mut vstack);
                        let dst = fresh();
                        vstack.push(dst);
                        emit(
                            IrOp::Guard {
                                addr,
                                kind,
                                offset: acc.memarg.offset,
                                bytes: acc.bytes,
                            },
                            &mut f,
                        );
                        emit(IrOp::Load { dst, addr }, &mut f);
                    }
                } else if is_helper_call(i) {
                    let (pops, _) = stack_effect(i, module);
                    let args = vstack.split_off(vstack.len() - pops);
                    let ret = fresh();
                    vstack.push(ret);
                    emit(
                        IrOp::Call {
                            args,
                            ret: Some(ret),
                        },
                        &mut f,
                    );
                } else {
                    let (pops, pushes) = stack_effect(i, module);
                    let srcs = vstack.split_off(vstack.len() - pops);
                    let dsts: Vec<VReg> = (0..pushes).map(|_| fresh()).collect();
                    vstack.extend(&dsts);
                    emit(IrOp::Pure { dsts, srcs }, &mut f);
                }
            }
        }
    }
    f.n_vregs = next;
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_wasm::module::Function;
    use lb_wasm::{BlockType, FuncType, Limits, MemArg, MemoryType, ValType};

    fn module_with(body: Vec<Instr>, locals: Vec<ValType>) -> (Module, FuncMeta) {
        let mut m = Module::new();
        m.types.push(FuncType {
            params: vec![ValType::I32],
            results: vec![ValType::I32],
        });
        m.memory = Some(MemoryType {
            limits: Limits {
                min: 1,
                max: Some(1),
            },
        });
        m.functions.push(Function {
            type_idx: 0,
            locals,
            body,
            name: None,
        });
        let meta = lb_wasm::validate(&m).expect("module validates");
        let fm = meta.funcs[0].clone();
        (m, fm)
    }

    #[test]
    fn locals_become_defs_and_uses() {
        let (m, fm) = module_with(
            vec![
                Instr::LocalGet(0),
                Instr::LocalSet(1),
                Instr::LocalGet(1),
                Instr::End,
            ],
            vec![ValType::I32],
        );
        let ir = lower(&m, &fm, &m.functions[0].body, None);
        let gets: Vec<u32> = ir
            .insts
            .iter()
            .filter_map(|i| match i.op {
                IrOp::GetLocal { local, .. } => Some(local),
                _ => None,
            })
            .collect();
        let sets: Vec<u32> = ir
            .insts
            .iter()
            .filter_map(|i| match i.op {
                IrOp::SetLocal { local, .. } => Some(local),
                _ => None,
            })
            .collect();
        assert_eq!(gets, vec![0, 1]);
        assert_eq!(sets, vec![1]);
        // The set consumes the vreg the first get defined.
        let d0 = ir.insts.iter().find_map(|i| match i.op {
            IrOp::GetLocal { dst, local: 0 } => Some(dst),
            _ => None,
        });
        let s1 = ir.insts.iter().find_map(|i| match &i.op {
            IrOp::SetLocal { src, local: 1, .. } => Some(*src),
            _ => None,
        });
        assert_eq!(d0, s1);
    }

    #[test]
    fn guards_precede_accesses_with_plan_kind() {
        let (m, fm) = module_with(
            vec![
                Instr::LocalGet(0),
                Instr::I32Load(MemArg::offset(16)),
                Instr::End,
            ],
            vec![],
        );
        let ir = lower(&m, &fm, &m.functions[0].body, None);
        let gi = ir
            .insts
            .iter()
            .position(|i| matches!(i.op, IrOp::Guard { .. }))
            .expect("guard emitted");
        assert!(
            matches!(
                ir.insts[gi].op,
                IrOp::Guard {
                    kind: CheckKind::Emit,
                    offset: 16,
                    bytes: 4,
                    ..
                }
            ),
            "plan-less guard defaults to Emit: {:?}",
            ir.insts[gi].op
        );
        assert!(
            matches!(ir.insts[gi + 1].op, IrOp::Load { .. }),
            "guard immediately precedes its access"
        );
    }

    #[test]
    fn dead_code_is_not_lowered_until_revived() {
        let (m, fm) = module_with(
            vec![
                Instr::Block(BlockType::Empty),
                Instr::Br(0),
                Instr::LocalGet(0), // dead
                Instr::Drop,        // dead
                Instr::End,         // label: revives
                Instr::LocalGet(0),
                Instr::End,
            ],
            vec![],
        );
        let ir = lower(&m, &fm, &m.functions[0].body, None);
        let gets = ir
            .insts
            .iter()
            .filter(|i| matches!(i.op, IrOp::GetLocal { .. }))
            .count();
        assert_eq!(gets, 1, "dead local.get must not be lowered");
    }

    #[test]
    fn loop_depth_tracks_nesting() {
        let (m, fm) = module_with(
            vec![
                Instr::Loop(BlockType::Empty),
                Instr::LocalGet(0),
                Instr::Drop,
                Instr::End,
                Instr::LocalGet(0),
                Instr::End,
            ],
            vec![],
        );
        let ir = lower(&m, &fm, &m.functions[0].body, None);
        let depths: Vec<u32> = ir
            .insts
            .iter()
            .filter(|i| matches!(i.op, IrOp::GetLocal { .. }))
            .map(|i| i.loop_depth)
            .collect();
        assert_eq!(depths, vec![1, 0]);
    }
}
