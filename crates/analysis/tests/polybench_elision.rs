//! Acceptance: on the paper's own workloads, the analysis must statically
//! elide a substantial fraction of bounds checks under the `trap`
//! strategy (ISSUE 2 criterion: ≥ 25% on at least 3 PolyBench kernels —
//! in practice most kernels prove *every* access in-bounds, since their
//! loop bounds are compile-time constants and the DSL's array layouts fit
//! the declared minimum memory).

use lb_analysis::analyze_module;
use lb_polybench::{by_name, Dataset};

fn elision_ratio(name: &str) -> f64 {
    let bench = by_name(name, Dataset::Mini).expect("known benchmark");
    let meta = lb_wasm::validate(&bench.module).expect("polybench validates");
    let plan = analyze_module(&bench.module, &meta);
    let (accesses, elided, _emitted, _oob) = plan.totals();
    assert!(accesses > 0, "{name}: kernel has memory accesses");
    elided as f64 / accesses as f64
}

#[test]
fn at_least_a_quarter_of_checks_elided_on_representative_kernels() {
    for name in ["gemm", "atax", "mvt", "bicg", "jacobi-2d", "trisolv"] {
        let r = elision_ratio(name);
        assert!(
            r >= 0.25,
            "{name}: expected ≥25% of checks statically elided, got {:.1}%",
            100.0 * r
        );
    }
}

#[test]
fn constant_bound_kernels_prove_every_access_in_bounds() {
    // The common PolyBench shape — counted loops with constant trip
    // counts indexing constant-base arrays — is fully provable.
    for name in ["gemm", "atax", "mvt", "jacobi-2d"] {
        let r = elision_ratio(name);
        assert!(
            (r - 1.0).abs() < f64::EPSILON,
            "{name}: expected 100% elision, got {:.1}%",
            100.0 * r
        );
    }
}

#[test]
fn whole_suite_elides_a_majority_of_checks() {
    let (mut acc, mut el) = (0u64, 0u64);
    for name in lb_polybench::NAMES {
        let bench = by_name(name, Dataset::Mini).expect("known benchmark");
        let meta = lb_wasm::validate(&bench.module).expect("validates");
        let plan = analyze_module(&bench.module, &meta);
        let (a, e, _, _) = plan.totals();
        acc += a;
        el += e;
    }
    assert!(
        el * 2 > acc,
        "suite-wide elision should exceed 50% ({el}/{acc})"
    );
}

#[test]
fn check_free_memory_bound_is_reported() {
    // The footprint summary must name a finite memory size making gemm
    // check-free, and it must fit the declared memory.
    let bench = by_name("gemm", Dataset::Mini).expect("known benchmark");
    let meta = lb_wasm::validate(&bench.module).expect("validates");
    let plan = analyze_module(&bench.module, &meta);
    for f in &plan.funcs {
        let bytes = f
            .summary
            .check_free_min_bytes
            .expect("every gemm function has a bounded footprint");
        assert!(bytes <= plan.mem_min_bytes);
    }
}

#[test]
fn every_kernel_is_fully_elided() {
    // With interval splitting, relational facts, and interprocedural
    // summaries, all 30 kernels prove every access — including the four
    // (deriche, durbin, ludcmp, nussinov) whose triangular or
    // data-dependent index shapes previously kept some checks emitted.
    // None of them needs a hoisted guard for this: their bounds are
    // static once the analysis is precise enough.
    let mut partial = Vec::new();
    for name in lb_polybench::NAMES {
        let bench = by_name(name, Dataset::Mini).expect("known benchmark");
        let meta = lb_wasm::validate(&bench.module).expect("validates");
        let plan = analyze_module(&bench.module, &meta);
        let (accesses, elided, emitted, oob) = plan.totals();
        assert_eq!(oob, 0, "{name}: no statically-OOB accesses");
        assert_eq!(plan.total_hoisted(), 0, "{name}: static elision suffices");
        if emitted != 0 || elided != accesses {
            partial.push(format!("{name}: {elided}/{accesses} ({emitted} emitted)"));
        }
    }
    assert!(
        partial.is_empty(),
        "kernels with remaining checks:\n{}",
        partial.join("\n")
    );
}
