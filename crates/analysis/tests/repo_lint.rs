//! In-tree static lint, run as a normal test so CI needs no extra tooling.
//!
//! Two invariants the runtime's safety story depends on:
//!
//! 1. **`unsafe` containment** — all `unsafe` code lives in an explicitly
//!    allowlisted module set (memory mapping, signal handling, the JIT's
//!    code buffers and runtime thunks, the libc shim, the vDSO clock).
//!    Everything else — the wasm front end, both engines' logic, the
//!    analysis, the harness — must be safe Rust.
//! 2. **Async-signal-safety** — the functions that run in (or may be
//!    reached from) signal context — the trap-handler chain in
//!    `crates/core/src/signals.rs` and the SIGPROF sampling path in
//!    `crates/prof` — must not allocate or do formatted I/O: no
//!    `format!`/`println!`/`vec!`/`Box::new`/`.to_string()`-style calls.
//! 3. **No new aborts on the measurement path** — non-test code in
//!    `lb-core` and `lb-harness` must not call `.unwrap()`/`.expect()`:
//!    every fallible OS boundary there feeds the failure model (fault
//!    injection, fallback chains, per-run failure records), and a stray
//!    unwrap turns an injectable error back into a process abort. The
//!    few deliberate keepers are allowlisted with their justification.
//! 4. **Mapping containment** — `mmap`/`munmap` calls live only in
//!    `crates/core/src/region.rs` and `crates/core/src/pool.rs` (the
//!    reservation lifecycle and its recycling pool). A mapping created
//!    anywhere else bypasses the chaos sites, the `mem.mmap`/`mem.munmap`
//!    counters, and the pool's "zero mmap at steady state" guarantee;
//!    the deliberate exceptions are allowlisted with their justification.
//! 5. **Machine-code byte containment** — in the crates that produce or
//!    execute x86-64 code (`lb-jit`, `lb-core`), raw opcode bytes are
//!    emitted only by `crates/jit/src/asm.rs` and pattern-matched only by
//!    `lb-verify`'s decoder. Hand-rolled bytes anywhere else would bypass
//!    the encoder↔decoder round-trip tests that keep the translation
//!    validator's instruction model honest. The one deliberate exception
//!    (the signal handler recognizing a `ud2` at the fault pc) is
//!    allowlisted with its justification.
//! 6. **Telemetry name registry** — every `counter("…")`/`histogram("…")`
//!    string literal in the tree must appear in
//!    `scripts/telemetry_names.tsv`, and every registry entry must still
//!    have a call site. Telemetry names are an interface (the harness's
//!    JSONL columns, the bench JSON, dashboards parse them); the registry
//!    makes adding or renaming one a reviewable diff instead of a silent
//!    drift between producer and consumer.
//!
//! Failures name `file:line` so the offending code is one click away.

use std::fs;
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    // crates/analysis → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

/// Modules allowed to contain `unsafe` code, as workspace-relative paths.
const UNSAFE_ALLOWLIST: &[&str] = &[
    "crates/chaos/src/lib.rs",
    "crates/core/src/memory.rs",
    "crates/core/src/pool.rs",
    "crates/core/src/region.rs",
    "crates/core/src/registry.rs",
    "crates/core/src/signals.rs",
    "crates/core/src/uffd.rs",
    "crates/harness/src/procstat.rs",
    "crates/jit/src/codebuf.rs",
    "crates/jit/src/engine.rs",
    "crates/jit/src/runtime.rs",
    "crates/prof/src/sampler.rs",
    "crates/serve/src/shard.rs",
    "crates/sys/src/lib.rs",
    "crates/telemetry/src/clock.rs",
    "crates/telemetry/tests/signal_safety.rs",
    "tests/prof_stress.rs",
];

/// Functions that execute in signal context, per file: the trap-handler
/// chain (and the trap-resume path that abandons frames) in lb-core, and
/// the SIGPROF sampling path in lb-prof (handler plus the ring push it
/// makes).
const HANDLER_FNS: &[(&str, &[&str])] = &[
    (
        "crates/core/src/signals.rs",
        &[
            "raise_trap",
            "trap_handler",
            "trap_handler_inner",
            "deliver_or_chain",
            "chain",
        ],
    ),
    (
        "crates/prof/src/sampler.rs",
        &["sigprof_handler", "sigprof_handler_inner"],
    ),
    ("crates/prof/src/ring.rs", &["record"]),
];

/// Tokens that allocate or format — forbidden in signal context.
const BANNED_IN_HANDLERS: &[&str] = &[
    "format!",
    "println!",
    "print!",
    "eprintln!",
    "eprint!",
    "String::",
    "Vec::new",
    "Vec::with_capacity",
    "vec!",
    "Box::new",
    ".to_string(",
    ".to_owned(",
    ".to_vec(",
];

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            rust_sources(&p, out);
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

/// Strip `//` line comments (keeps column positions up to the comment).
fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

/// Does `line` contain `word` delimited by non-identifier characters?
fn contains_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(i) = line[start..].find(word) {
        let at = start + i;
        let before_ok = at == 0 || {
            let c = bytes[at - 1] as char;
            !c.is_alphanumeric() && c != '_' && c != '-'
        };
        let end = at + word.len();
        let after_ok = end >= bytes.len() || {
            let c = bytes[end] as char;
            !c.is_alphanumeric() && c != '_'
        };
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

#[test]
fn unsafe_only_in_allowlisted_modules() {
    let root = workspace_root();
    let mut files = Vec::new();
    for dir in ["crates", "src", "tests"] {
        rust_sources(&root.join(dir), &mut files);
    }
    assert!(files.len() > 50, "workspace scan found too few files");

    let mut violations = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(&root)
            .expect("file under root")
            .to_string_lossy()
            .replace('\\', "/");
        // The linter's own pattern strings would match themselves.
        if UNSAFE_ALLOWLIST.contains(&rel.as_str()) || rel == "crates/analysis/tests/repo_lint.rs" {
            continue;
        }
        let Ok(text) = fs::read_to_string(f) else {
            continue;
        };
        for (ln, raw) in text.lines().enumerate() {
            let line = strip_line_comment(raw);
            if contains_word(line, "unsafe") {
                violations.push(format!("{rel}:{}: {}", ln + 1, raw.trim()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "`unsafe` outside the allowlisted modules:\n{}",
        violations.join("\n")
    );
}

/// Extract the body of `fn name` from `text` as (start_line, body_text),
/// by brace matching with line comments stripped.
fn fn_body(text: &str, name: &str) -> Option<(usize, String)> {
    let needle = format!("fn {name}");
    let lines: Vec<&str> = text.lines().collect();
    for (i, raw) in lines.iter().enumerate() {
        let line = strip_line_comment(raw);
        if !line.contains(&needle) {
            continue;
        }
        // Confirm word boundary after the name (avoid `chain` matching
        // `chained_fault_count`).
        let at = line.find(&needle)?;
        let end = at + needle.len();
        if let Some(c) = line[end..].chars().next() {
            if c.is_alphanumeric() || c == '_' {
                continue;
            }
        }
        // Brace-match from the first `{` at or after this line.
        let mut depth = 0i32;
        let mut started = false;
        let mut body = String::new();
        for l in &lines[i..] {
            let l = strip_line_comment(l);
            for ch in l.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        started = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            body.push_str(l);
            body.push('\n');
            if started && depth == 0 {
                return Some((i + 1, body));
            }
        }
    }
    None
}

/// Deliberate `.unwrap()`/`.expect()` keepers in non-test lb-core and
/// lb-harness code, as (workspace-relative file, line substring) pairs.
/// Each is an invariant violation or unrecoverable host condition where
/// aborting *is* the correct behavior — not a fallible OS boundary:
///
/// * region.rs — mmap returned success with a null pointer: kernel
///   contract violation, not an error a caller can handle.
/// * signals.rs — trap-resume bookkeeping invariants inside
///   `catch_traps`; if these fire, the jump-buffer state machine is
///   corrupt and continuing would execute on poisoned state.
/// * uffd.rs / procstat.rs — `std::thread::Builder::spawn` refusing to
///   create a thread (host out of tids/memory); the harness cannot run
///   at all, and both sites are documented with `# Panics`.
const UNWRAP_ALLOWLIST: &[(&str, &str)] = &[
    (
        "crates/core/src/region.rs",
        "expect(\"mmap returned non-null\")",
    ),
    ("crates/core/src/signals.rs", "expect(\"closure present\")"),
    ("crates/core/src/signals.rs", "expect(\"closure ran\")"),
    (
        "crates/core/src/uffd.rs",
        "expect(\"spawn uffd poll thread\")",
    ),
    (
        "crates/core/src/uffd.rs",
        "expect(\"spawn uffd watchdog thread\")",
    ),
    (
        "crates/harness/src/procstat.rs",
        "expect(\"spawn sampler\")",
    ),
    (
        "crates/harness/src/procstat.rs",
        "expect(\"sampler running\")",
    ),
    (
        "crates/harness/src/procstat.rs",
        "expect(\"sampler joins\")",
    ),
];

#[test]
fn no_new_unwrap_or_expect_in_core_and_harness() {
    let root = workspace_root();
    let mut files = Vec::new();
    rust_sources(&root.join("crates/core/src"), &mut files);
    rust_sources(&root.join("crates/harness/src"), &mut files);
    rust_sources(&root.join("crates/serve/src"), &mut files);
    // The mid tier's analysis substrate: `allocate` runs on both the
    // compile path and the verifier's recompute path, where an abort
    // would turn a malformed-but-validated body into a process kill
    // instead of a finding.
    files.push(root.join("crates/jit/src/ir.rs"));
    files.push(root.join("crates/jit/src/regalloc.rs"));
    assert!(files.len() >= 10, "scan found too few files");

    let mut violations = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(&root)
            .expect("file under root")
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(text) = fs::read_to_string(f) else {
            continue;
        };
        for (ln, raw) in text.lines().enumerate() {
            // Repo convention: the `#[cfg(test)]` module is the last item
            // in a file, so everything after it is test-only.
            if raw.contains("#[cfg(test)]") {
                break;
            }
            let line = strip_line_comment(raw);
            if !(line.contains(".unwrap()") || line.contains(".expect(")) {
                continue;
            }
            if UNWRAP_ALLOWLIST
                .iter()
                .any(|(file, frag)| *file == rel && line.contains(frag))
            {
                continue;
            }
            violations.push(format!("{rel}:{}: {}", ln + 1, raw.trim()));
        }
    }
    assert!(
        violations.is_empty(),
        "new `.unwrap()`/`.expect()` in non-test lb-core/lb-harness/lb-serve code \
         (handle the error or extend UNWRAP_ALLOWLIST with justification):\n{}",
        violations.join("\n")
    );
}

/// Files allowed to call `mmap`/`munmap` outside the reservation
/// lifecycle (`region.rs`) and its recycling pool (`pool.rs`):
///
/// * signals.rs — per-thread sigaltstack allocation/teardown; tiny,
///   thread-lifetime mappings that never back wasm memory.
/// * jit/codebuf.rs — W^X executable code buffers; a different resource
///   class (code, not data) with its own publish/retire lifecycle.
/// * sys/lib.rs — the libc shim *declares* the symbols everyone else
///   links against; it performs no mapping itself.
const MMAP_ALLOWLIST: &[&str] = &[
    "crates/core/src/signals.rs",
    "crates/jit/src/codebuf.rs",
    "crates/sys/src/lib.rs",
];

#[test]
fn mmap_munmap_only_in_region_pool_or_allowlisted_modules() {
    let root = workspace_root();
    let mut files = Vec::new();
    rust_sources(&root.join("crates"), &mut files);
    assert!(files.len() > 50, "workspace scan found too few files");

    let mut violations = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(&root)
            .expect("file under root")
            .to_string_lossy()
            .replace('\\', "/");
        if rel == "crates/core/src/region.rs"
            || rel == "crates/core/src/pool.rs"
            || rel == "crates/analysis/tests/repo_lint.rs"
            || MMAP_ALLOWLIST.contains(&rel.as_str())
        {
            continue;
        }
        let Ok(text) = fs::read_to_string(f) else {
            continue;
        };
        for (ln, raw) in text.lines().enumerate() {
            // Test modules may map scratch memory (e.g. to probe the
            // shim); the repo convention puts them last in the file.
            if raw.contains("#[cfg(test)]") {
                break;
            }
            let line = strip_line_comment(raw);
            if contains_word(line, "mmap(") || contains_word(line, "munmap(") {
                violations.push(format!("{rel}:{}: {}", ln + 1, raw.trim()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "`mmap`/`munmap` call outside region.rs/pool.rs (route it through \
         `Reservation` or extend MMAP_ALLOWLIST with justification):\n{}",
        violations.join("\n")
    );
}

/// Byte-literal emission into code buffers: the assembler's job.
const EMIT_PATTERNS: &[&str] = &[".push(0x", "extend_from_slice(&[0x", "= [0x", ".emit(0x"];

/// Raw matching on x86 opcode escapes: the decoder's job. `0x0F` is the
/// two-byte-opcode escape — the byte every hand-rolled matcher starts at.
const DECODE_PATTERNS: &[&str] = &["== 0x0F", "0x0F =>"];

/// Deliberate raw-opcode keeper outside `asm.rs`/`lb-verify`:
/// the trap handler must classify the faulting instruction from signal
/// context, where calling into the decoder (allocating, fallible) is off
/// the table — it checks the two `ud2` bytes in place.
const OPCODE_ALLOWLIST: &[(&str, &str)] = &[("crates/core/src/signals.rs", "== 0x0F")];

#[test]
fn machine_code_bytes_only_in_asm_and_verify() {
    let root = workspace_root();
    let mut files = Vec::new();
    rust_sources(&root.join("crates/jit/src"), &mut files);
    rust_sources(&root.join("crates/core/src"), &mut files);
    // The profiler consumes decoded instructions; it must never grow its
    // own byte matching.
    rust_sources(&root.join("crates/prof/src"), &mut files);
    assert!(files.len() >= 10, "scan found too few files");

    let mut violations = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(&root)
            .expect("file under root")
            .to_string_lossy()
            .replace('\\', "/");
        // The assembler owns encoding; `lb-verify` (not under these
        // roots) owns decoding.
        if rel == "crates/jit/src/asm.rs" {
            continue;
        }
        let Ok(text) = fs::read_to_string(f) else {
            continue;
        };
        for (ln, raw) in text.lines().enumerate() {
            // Test modules may use literal byte vectors (e.g. codebuf's
            // canned `mov eax, 42; ret`); the repo convention puts them
            // last in the file.
            if raw.contains("#[cfg(test)]") {
                break;
            }
            let line = strip_line_comment(raw);
            for pat in EMIT_PATTERNS.iter().chain(DECODE_PATTERNS) {
                if !line.contains(pat) {
                    continue;
                }
                if OPCODE_ALLOWLIST
                    .iter()
                    .any(|(file, frag)| *file == rel && line.contains(frag))
                {
                    continue;
                }
                violations.push(format!("{rel}:{}: `{pat}`: {}", ln + 1, raw.trim()));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "raw x86 opcode bytes outside asm.rs/lb-verify (use `Asm` to emit, \
         `lb_verify::decode` to parse, or extend OPCODE_ALLOWLIST with \
         justification):\n{}",
        violations.join("\n")
    );
}

/// Extract every `counter("name")`/`histogram("name")` literal from
/// `text` (whole-text scan, so a name wrapped to the next line still
/// counts), as (line, kind, name).
fn telemetry_literals(text: &str) -> Vec<(usize, &'static str, String)> {
    let mut out = Vec::new();
    let bytes = text.as_bytes();
    for kind in ["counter", "histogram"] {
        let needle = format!("{kind}(");
        let mut start = 0;
        while let Some(i) = text[start..].find(&needle) {
            let at = start + i;
            start = at + needle.len();
            // Word boundary before: `.counter(` / `::counter(` /
            // `counter(` yes, `chained_counter(` no.
            if at > 0 {
                let c = bytes[at - 1] as char;
                if c.is_alphanumeric() || c == '_' {
                    continue;
                }
            }
            // A literal argument: skip whitespace, expect `"…"`.
            let rest = text[at + needle.len()..].trim_start();
            let Some(q) = rest.strip_prefix('"') else {
                continue;
            };
            let Some(end) = q.find('"') else {
                continue;
            };
            let line = text[..at].lines().count();
            out.push((line.max(1), kind, q[..end].to_string()));
        }
    }
    out
}

#[test]
fn telemetry_names_are_registered() {
    let root = workspace_root();
    let registry_path = root.join("scripts/telemetry_names.tsv");
    let registry_text = fs::read_to_string(&registry_path)
        .unwrap_or_else(|e| panic!("read scripts/telemetry_names.tsv: {e}"));
    let mut registry = std::collections::BTreeMap::new();
    for (ln, line) in registry_text.lines().enumerate() {
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        let mut cols = line.split('\t');
        let (Some(name), Some(kind), None) = (cols.next(), cols.next(), cols.next()) else {
            panic!(
                "scripts/telemetry_names.tsv:{}: expected name<TAB>kind",
                ln + 1
            );
        };
        assert!(
            kind == "counter" || kind == "histogram",
            "scripts/telemetry_names.tsv:{}: unknown kind `{kind}`",
            ln + 1
        );
        registry.insert((name.to_string(), kind.to_string()), false);
    }
    assert!(registry.len() > 50, "registry suspiciously small");

    let mut files = Vec::new();
    for dir in ["crates", "src", "tests"] {
        rust_sources(&root.join(dir), &mut files);
    }
    let mut violations = Vec::new();
    for f in &files {
        let rel = f
            .strip_prefix(&root)
            .expect("file under root")
            .to_string_lossy()
            .replace('\\', "/");
        // The linter's own extraction patterns would match themselves.
        if rel == "crates/analysis/tests/repo_lint.rs" {
            continue;
        }
        let Ok(text) = fs::read_to_string(f) else {
            continue;
        };
        for (ln, kind, name) in telemetry_literals(&text) {
            match registry.get_mut(&(name.clone(), kind.to_string())) {
                Some(seen) => *seen = true,
                None => violations.push(format!(
                    "{rel}:{ln}: {kind} `{name}` missing from scripts/telemetry_names.tsv"
                )),
            }
        }
    }
    for ((name, kind), seen) in &registry {
        if !seen {
            violations.push(format!(
                "scripts/telemetry_names.tsv: {kind} `{name}` has no call site left — remove it"
            ));
        }
    }
    assert!(
        violations.is_empty(),
        "telemetry name registry out of sync (add new names to \
         scripts/telemetry_names.tsv, prune dead ones):\n{}",
        violations.join("\n")
    );
}

#[test]
fn signal_handlers_do_not_allocate_or_format() {
    let root = workspace_root();
    let mut violations = Vec::new();
    for (rel, fns) in HANDLER_FNS {
        let path = root.join(rel);
        let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {rel}: {e}"));
        for name in *fns {
            let (start, body) = fn_body(&text, name)
                .unwrap_or_else(|| panic!("handler fn `{name}` not found in {rel}"));
            for (off, line) in body.lines().enumerate() {
                for tok in BANNED_IN_HANDLERS {
                    if line.contains(tok) {
                        violations.push(format!(
                            "{rel}:{}: `{tok}` in handler fn `{name}`: {}",
                            start + off,
                            line.trim()
                        ));
                    }
                }
            }
        }
    }
    assert!(
        violations.is_empty(),
        "allocation/formatting in signal-handler paths:\n{}",
        violations.join("\n")
    );
}
