//! `lb-analysis` — module-level bounds-check elimination.
//!
//! The paper attributes a large share of WebAssembly's overhead to the
//! software bounds checks emitted under the `trap` and `clamp` strategies
//! (§3.1), and surveys how production compilers claw that cost back by
//! proving checks redundant. This crate is that reasoning layer for the
//! reproduction: a forward abstract interpretation over validated wasm
//! function bodies that
//!
//! * computes **interval/stride ranges** for every i32 value, tracking
//!   `local.get`/`const`/`add`/`shl`/`and` provenance symbolically
//!   (`value == (local << shift) + addend`),
//! * reconstructs the **structured control-flow tree** so dominating-check
//!   facts survive joins (an `if/else` both of whose arms inherit a check
//!   keeps it — unlike the JIT's old per-basic-block peephole, which
//!   dropped every fact at every label), and are hoisted across loop
//!   iterations via a widening/narrowing fixpoint at each loop header,
//! * summarizes functions **interprocedurally**, bottom-up over the call
//!   graph: caller argument intervals narrow an internal callee's
//!   parameters, and a callee's constant return interval (`ret_iv`)
//!   narrows call results in the caller; exported/escaping functions and
//!   call-graph cycles conservatively stay at ⊤,
//! * synthesizes **hoisted loop guards** ([`HoistPlan`]/[`GuardExpr`]):
//!   when every remaining check in a loop is covered by one loop-invariant
//!   symbolic bound, the JIT versions the loop behind a single preheader
//!   guard — a check-free fast copy when the whole-loop bound fits in
//!   memory, the original per-access-checked copy otherwise,
//! * emits a per-instruction [`CheckKind`] plan (`Emit`, `ElideInBounds`,
//!   `ElideDominated`, `ElideHoisted`, `StaticOob`) plus a per-function
//!   access-footprint [`FuncSummary`] (max proven effective address,
//!   minimum memory size that makes the function check-free).
//!
//! # Soundness
//!
//! A check may only be skipped when one of two facts holds for **every**
//! execution reaching the access:
//!
//! * **In-bounds** — the largest possible effective address plus access
//!   width fits inside the module's *declared minimum* memory
//!   (`limits.min` pages). Instances never start smaller than the declared
//!   minimum (`build_instance_parts` floors the initial size there) and
//!   linear memory only grows, so this bound holds for the lifetime of any
//!   instance. Valid under both `trap` and `clamp`.
//! * **Dominated** — an earlier check on the *same provenance*
//!   `(local, shift)` already proved `(local << shift) + addend' + extent'
//!   <= mem_size` with `addend' + extent' >= addend + extent`, and the
//!   local has not been reassigned since. Facts are intersected at joins
//!   (kept only when established on every incoming path) and invalidated
//!   on `local.set`/`local.tee`, so no SSA renaming is needed. Valid under
//!   `trap` always: a passed check is a proof. Under `clamp` a dynamic
//!   dominating check proves nothing — it silently redirects its own
//!   effective address and leaves the local unchanged — so domination is
//!   consumed only when the dominator's coverage was itself *static*
//!   (established by an `ElideInBounds` proof); [`FuncPlan::clamp_elidable`]
//!   exposes exactly that set, and the JIT clamps the rest.
//! * **Hoisted** (`ElideHoisted`) — the access sits in the fast copy of a
//!   versioned loop whose preheader guard proved the whole-loop bound
//!   `(bound_local << shift) + addend <= mem_size` (width-checked before
//!   shifting, so the guard itself cannot wrap). The slow copy keeps every
//!   per-access check, so trap timing and partial side effects are
//!   identical to the unversioned loop. Valid under `trap` and `clamp`.
//!
//! `StaticOob` means the *smallest* possible effective address already
//! exceeds the declared maximum memory: the access must trap on every
//! execution that reaches it (under a trapping strategy). The state is
//! dead afterwards.
//!
//! Everything else is `Emit`. The analysis is deliberately conservative:
//! any interval that might wrap 2^32 goes to ⊤, signed comparisons only
//! refine when both sides are provably non-negative, and unmodeled
//! operations produce ⊤.

#![warn(missing_docs)]

use lb_wasm::instr::Instr;
use lb_wasm::types::{BlockType, MAX_PAGES, PAGE_SIZE};
use lb_wasm::validate::{FuncMeta, ModuleMeta};
use lb_wasm::{Module, ValType};
use std::collections::BTreeMap;

const U32_MAX: u64 = u32::MAX as u64;
/// Stride assigned to the constant 0 (divisible by any power of two we
/// track; capped so `min` works as gcd on the pow2 lattice).
const STRIDE_CAP: u64 = 1 << 32;

// ─────────────────────────────────── public API ──────────────────────────

/// The per-access decision the JIT and interpreter consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// Emit the bounds check (the default; also used for unreachable code).
    Emit,
    /// Proven in-bounds against the declared minimum memory size; skip the
    /// check under `trap` *and* `clamp`.
    ElideInBounds,
    /// Covered by a dominating check on the same provenance; skip under
    /// `trap` only — and under `clamp` when the dominating fact was
    /// *static* (see [`FuncPlan::clamp_elidable`]).
    ElideDominated,
    /// Proven out of bounds against the declared maximum memory size; the
    /// access traps unconditionally under trapping strategies.
    StaticOob,
    /// Covered by a synthesized loop-preheader guard ([`HoistPlan`]): the
    /// JIT emits the loop twice and skips this check only in the fast
    /// copy entered when every guard passes. Consumers that do not
    /// version (the interpreter, unversioned tiers) must treat this as
    /// `Emit`.
    ElideHoisted,
    /// Covered by a dominating guard discovered by the mid tier's IR
    /// dataflow pass (`lb-jit`'s `dataflow` module), not by this crate's
    /// wasm-level analysis. Unlike [`CheckKind::ElideDominated`], the
    /// verifier does *not* trust this decision: it accepts the elision
    /// only when its own abstract interpretation independently re-derives
    /// the dominating machine fact at the access. Trap-only; consumers
    /// other than the guard-optimizing mid tier treat it as `Emit`.
    ElideDominatedIr,
}

/// One per-guard decision from the mid tier's IR dataflow pass. Keyed by
/// wasm pc; produced by `lb-jit`'s `dataflow` module and consumed by both
/// codegen (to rewrite the guard) and lb-verify (to classify the site —
/// never trusted for soundness, only for site-kind accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardOpt {
    /// Drop the guard: an equal-or-stronger guard on the same address
    /// value number dominates it ([`CheckKind::ElideDominatedIr`]).
    GvnElide,
    /// Fuse the guard into a single compare-against-limit + branch-to-trap
    /// adjacent to the access. The payload is the per-module limit-table
    /// slot holding `mem_size - (extent - 1)` (saturating) for this
    /// guard's extent.
    Fuse(u8),
}

/// One synthesized loop-preheader guard. The guard passes iff
///
/// ```text
/// bound' = bound_local - (strict ? 1 : 0)        (zero-extended u32)
/// bound' <= 0x7FFF_FFFF
///   && ((bound' << shift) + addend) <= mem_size  (64-bit arithmetic)
/// ```
///
/// `bound_local` is loop-invariant, so its preheader value equals its
/// value at every access the guard covers. The range pre-check makes the
/// 64-bit bound computation exact (max `(2^31-1 << 31) + 2^31-1 < 2^62`)
/// and conservatively routes huge/wrapping bounds to the slow copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardExpr {
    /// The loop-invariant local holding the (inclusive or exclusive)
    /// bound on the access index.
    pub bound_local: u32,
    /// Whether the index is strictly below the bound (`i < bound`) or at
    /// most it (`i <= bound`).
    pub strict: bool,
    /// Index scale: the access address is `(index << shift) + addend'`
    /// with `addend' + extent <= addend`.
    pub shift: u8,
    /// Largest `addend + offset + size` over the covered accesses
    /// (always `<= 0x7FFF_FFFF`).
    pub addend: u64,
}

/// A loop the JIT should version: duplicate `loop_pc..=end_pc`, enter the
/// check-free fast copy only when every guard in `guards` passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HoistPlan {
    /// pc of the `Loop` opcode.
    pub loop_pc: u32,
    /// pc of the loop's matching `End`.
    pub end_pc: u32,
    /// Guards to evaluate in the preheader (conjunction).
    pub guards: Vec<GuardExpr>,
}

/// Knobs for [`analyze_module_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Propagate caller argument intervals and callee return intervals
    /// across `call` edges (module call graph, non-escaping callees only).
    pub interprocedural: bool,
    /// Synthesize loop-preheader guards and classify covered accesses as
    /// [`CheckKind::ElideHoisted`].
    pub hoist: bool,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            interprocedural: true,
            hoist: true,
        }
    }
}

/// Per-function access-footprint summary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuncSummary {
    /// Reachable memory accesses seen by the analysis.
    pub accesses: u32,
    /// Accesses proven in-bounds against the declared minimum memory.
    pub elided_in_bounds: u32,
    /// Accesses covered by a dominating check.
    pub elided_dominated: u32,
    /// Accesses proven statically out of bounds.
    pub static_oob: u32,
    /// Accesses covered by a synthesized loop-preheader guard (check-free
    /// in the versioned fast body only).
    pub elided_hoisted: u32,
    /// Accesses that still need their check.
    pub emitted: u32,
    /// Largest proven end-of-access effective address (`addr + offset +
    /// size`) over all accesses with a bounded address, if any.
    pub max_proven_ea: Option<u64>,
    /// Smallest committed memory size (bytes) at which *every* reachable
    /// access in this function is in bounds — i.e. the size that makes the
    /// function check-free. `None` if some access has an unbounded
    /// address; `Some(0)` if the function performs no accesses.
    pub check_free_min_bytes: Option<u64>,
    /// Interval of the function's i32 return value under ⊤ parameters
    /// (`None` when the function returns nothing or a non-i32), used by
    /// callers to narrow `call` results.
    pub ret_iv: Option<(u64, u64)>,
    /// Access-footprint bounds over *unmodified* parameters:
    /// `(param, shift, max addend + extent)` — the function accesses at
    /// most `(param << shift) + bound` bytes through each entry.
    pub param_footprint: Vec<(u32, u8, u64)>,
}

impl FuncSummary {
    /// Fraction of reachable accesses whose check is statically elided
    /// (in-bounds or dominated) under the `trap` strategy. Hoisted
    /// accesses are excluded: their check is gone only in the fast body.
    pub fn elision_ratio(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        f64::from(self.elided_in_bounds + self.elided_dominated) / f64::from(self.accesses)
    }
}

/// The plan for one defined function: a [`CheckKind`] per instruction
/// index (memory accesses only; everything else stays `Emit`), the loops
/// to version, and which dominated accesses stay elidable under `clamp`.
#[derive(Debug, Clone)]
pub struct FuncPlan {
    kinds: Vec<CheckKind>,
    /// pcs of `ElideDominated` accesses whose dominating fact was static
    /// (in-bounds against the declared minimum), sorted.
    clamp_ok: Vec<u32>,
    /// Loops to version, sorted by `loop_pc`, non-overlapping.
    hoists: Vec<HoistPlan>,
    /// Access-footprint summary.
    pub summary: FuncSummary,
}

impl FuncPlan {
    /// The decision for the instruction at `pc` (indices past the body
    /// conservatively report `Emit`).
    #[inline]
    pub fn kind_at(&self, pc: usize) -> CheckKind {
        self.kinds.get(pc).copied().unwrap_or(CheckKind::Emit)
    }

    /// Whether the `ElideDominated` access at `pc` may also skip its
    /// clamp: its dominating fact was a static in-bounds proof, so the
    /// clamp is the identity on every execution.
    #[inline]
    pub fn clamp_elidable(&self, pc: usize) -> bool {
        u32::try_from(pc).is_ok_and(|pc| self.clamp_ok.binary_search(&pc).is_ok())
    }

    /// The versioning plan for the loop whose `Loop` opcode is at
    /// `loop_pc`, if any.
    #[inline]
    pub fn hoist_at(&self, loop_pc: u32) -> Option<&HoistPlan> {
        self.hoists
            .binary_search_by_key(&loop_pc, |h| h.loop_pc)
            .ok()
            .map(|i| &self.hoists[i])
    }

    /// All loops to version in this function.
    #[inline]
    pub fn hoists(&self) -> &[HoistPlan] {
        &self.hoists
    }
}

/// The whole-module plan: one [`FuncPlan`] per defined function.
#[derive(Debug, Clone)]
pub struct ModulePlan {
    /// Plans indexed by *defined* function index.
    pub funcs: Vec<FuncPlan>,
    /// Declared minimum memory size in bytes (0 when no memory).
    pub mem_min_bytes: u64,
    /// Declared maximum memory size in bytes (0 when no memory).
    pub mem_max_bytes: u64,
}

impl ModulePlan {
    /// Whether the instruction at `pc` of defined function `di` is a
    /// statically-out-of-bounds access (used by the interpreter to
    /// pre-trap).
    #[inline]
    pub fn is_static_oob(&self, di: usize, pc: usize) -> bool {
        self.funcs
            .get(di)
            .is_some_and(|f| f.kind_at(pc) == CheckKind::StaticOob)
    }

    /// Module totals: `(accesses, elided, emitted, static_oob)`. Hoisted
    /// accesses count as neither elided nor emitted (their check exists
    /// in the slow loop copy only); see [`ModulePlan::total_hoisted`].
    pub fn totals(&self) -> (u64, u64, u64, u64) {
        let mut t = (0u64, 0u64, 0u64, 0u64);
        for f in &self.funcs {
            t.0 += u64::from(f.summary.accesses);
            t.1 += u64::from(f.summary.elided_in_bounds + f.summary.elided_dominated);
            t.2 += u64::from(f.summary.emitted);
            t.3 += u64::from(f.summary.static_oob);
        }
        t
    }

    /// Total accesses covered by synthesized loop-preheader guards.
    pub fn total_hoisted(&self) -> u64 {
        self.funcs
            .iter()
            .map(|f| u64::from(f.summary.elided_hoisted))
            .sum()
    }
}

/// Analyze every defined function of a validated module with the default
/// configuration (interprocedural propagation and guard hoisting on).
pub fn analyze_module(module: &Module, meta: &ModuleMeta) -> ModulePlan {
    analyze_module_with(module, meta, &AnalysisConfig::default())
}

/// Analyze every defined function of a validated module.
///
/// With `interprocedural` enabled this runs in two phases over the module
/// call graph:
///
/// 1. **Return summaries** — every defined function is analyzed with ⊤
///    parameters in callee-first (post-order) order, producing the i32
///    return interval callers use to narrow `call` results. Cycle
///    members see ⊤ for their in-cycle callees.
/// 2. **Final plans** — functions are processed callers-first; each
///    reachable `call` site's argument intervals are joined into the
///    callee's entry state. Only non-escaping callees (not exported, not
///    in any element segment, not the start function, not self-recursive)
///    receive narrowed parameters; everything else keeps ⊤. Functions on
///    call-graph cycles fall back to ⊤ parameters.
pub fn analyze_module_with(module: &Module, meta: &ModuleMeta, cfg: &AnalysisConfig) -> ModulePlan {
    let (mem_min_bytes, mem_max_bytes) = match &module.memory {
        Some(mt) => (
            u64::from(mt.limits.min) * PAGE_SIZE as u64,
            u64::from(mt.limits.max.unwrap_or(MAX_PAGES)) * PAGE_SIZE as u64,
        ),
        None => (0, 0),
    };
    let nd = module.functions.len();
    let ni = module.num_imported_funcs();

    // Distinct defined-callee edges per defined function.
    let mut callees: Vec<Vec<usize>> = vec![Vec::new(); nd];
    for (di, f) in module.functions.iter().enumerate() {
        for instr in &f.body {
            if let Instr::Call(fi) = instr {
                if let Some(cd) = fi.checked_sub(ni) {
                    let cd = cd as usize;
                    if cd < nd && !callees[di].contains(&cd) {
                        callees[di].push(cd);
                    }
                }
            }
        }
    }

    // Phase 1: return-interval summaries, callees first.
    let mut ret_ivs: Vec<Option<(u64, u64)>> = vec![None; nd];
    if cfg.interprocedural && nd > 0 {
        let mut color = vec![0u8; nd]; // 0 unvisited, 1 on stack, 2 done
        let mut order = Vec::with_capacity(nd);
        for root in 0..nd {
            if color[root] != 0 {
                continue;
            }
            color[root] = 1;
            let mut stack = vec![(root, 0usize)];
            while let Some(&mut (n, ref mut i)) = stack.last_mut() {
                if *i < callees[n].len() {
                    let c = callees[n][*i];
                    *i += 1;
                    if color[c] == 0 {
                        color[c] = 1;
                        stack.push((c, 0));
                    }
                } else {
                    color[n] = 2;
                    order.push(n);
                    stack.pop();
                }
            }
        }
        for di in order {
            let plan = Analyzer::new(
                module,
                &meta.funcs[di],
                mem_min_bytes,
                mem_max_bytes,
                false,
                &ret_ivs,
                None,
            )
            .run(&module.functions[di].body);
            ret_ivs[di] = plan.summary.ret_iv;
        }
    }

    // Escaping functions can be entered with arbitrary arguments.
    let mut escaping = vec![false; nd];
    let escape = |fi: u32, escaping: &mut Vec<bool>| {
        if let Some(d) = fi.checked_sub(ni) {
            if (d as usize) < nd {
                escaping[d as usize] = true;
            }
        }
    };
    for e in &module.exports {
        if let lb_wasm::module::ExportKind::Func(fi) = e.kind {
            escape(fi, &mut escaping);
        }
    }
    for seg in &module.elems {
        for &fi in &seg.funcs {
            escape(fi, &mut escaping);
        }
    }
    if let Some(s) = module.start {
        escape(s, &mut escaping);
    }

    // Phase 2: final plans, callers first (Kahn over distinct-caller
    // in-degrees; self-loops excluded — a self-recursive function's inner
    // call sites would feed its own entry state, so it keeps ⊤ params).
    let mut callers: Vec<Vec<usize>> = vec![Vec::new(); nd];
    for di in 0..nd {
        for &c in &callees[di] {
            if c != di && !callers[c].contains(&di) {
                callers[c].push(di);
            }
        }
    }
    let self_rec: Vec<bool> = (0..nd).map(|di| callees[di].contains(&di)).collect();
    let mut in_deg: Vec<usize> = callers.iter().map(Vec::len).collect();
    let mut plans: Vec<Option<FuncPlan>> = (0..nd).map(|_| None).collect();
    let mut arg_ivs: Vec<Option<Vec<(u64, u64)>>> = vec![None; nd];
    let mut queue: std::collections::VecDeque<usize> =
        (0..nd).filter(|&di| in_deg[di] == 0).collect();
    let run_one = |di: usize, arg_ivs: &Vec<Option<Vec<(u64, u64)>>>| {
        let params = if cfg.interprocedural && !escaping[di] && !self_rec[di] {
            arg_ivs[di].clone()
        } else {
            None
        };
        Analyzer::new(
            module,
            &meta.funcs[di],
            mem_min_bytes,
            mem_max_bytes,
            cfg.hoist,
            &ret_ivs,
            params.as_deref(),
        )
        .run_collect(&module.functions[di].body)
    };
    let finish = |di: usize,
                  (plan, call_args): (FuncPlan, Vec<(u32, Vec<(u64, u64)>)>),
                  plans: &mut Vec<Option<FuncPlan>>,
                  arg_ivs: &mut Vec<Option<Vec<(u64, u64)>>>| {
        for (fi, args) in call_args {
            if let Some(d) = fi.checked_sub(ni) {
                let d = d as usize;
                if d < nd {
                    match &mut arg_ivs[d] {
                        Some(acc) => {
                            for (a, b) in acc.iter_mut().zip(&args) {
                                a.0 = a.0.min(b.0);
                                a.1 = a.1.max(b.1);
                            }
                        }
                        None => arg_ivs[d] = Some(args),
                    }
                }
            }
        }
        plans[di] = Some(plan);
    };
    while let Some(di) = queue.pop_front() {
        let out = run_one(di, &arg_ivs);
        finish(di, out, &mut plans, &mut arg_ivs);
        for &c in &callees[di] {
            if c != di && plans[c].is_none() {
                in_deg[c] -= 1;
                if in_deg[c] == 0 {
                    queue.push_back(c);
                }
            }
        }
    }
    // Cycle members (and anything only reachable through them): ⊤ params.
    for di in 0..nd {
        if plans[di].is_none() {
            arg_ivs[di] = None;
            let out = run_one(di, &arg_ivs);
            plans[di] = Some(out.0);
        }
    }

    ModulePlan {
        funcs: plans
            .into_iter()
            .map(|p| p.expect("all analyzed"))
            .collect(),
        mem_min_bytes,
        mem_max_bytes,
    }
}

// ─────────────────────────────── abstract domain ─────────────────────────

/// Symbolic provenance. When `exact`, `value == (local << shift) + addend`
/// holds over the integers (no wrap anywhere in the chain). When inexact,
/// only the congruence `value ≡ (local << shift) + addend (mod 2^32)`
/// holds (`addend` is kept reduced mod 2^32): enough for hoisted-guard
/// synthesis — the guard recomputes the bound in 64-bit where the wrapped
/// runtime value can only be *smaller* — but not for dominating-check
/// facts, which compare checked extents of the runtime (wrapped) value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Sym {
    local: u32,
    shift: u8,
    addend: u64,
    exact: bool,
}

/// Comparison operator of a predicate value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CmpOp {
    LtS,
    LtU,
    LeS,
    LeU,
    GtS,
    GtU,
    GeS,
    GeU,
    Eq,
    Ne,
}

impl CmpOp {
    /// The operator describing the *false* edge.
    fn inverse(self) -> CmpOp {
        match self {
            CmpOp::LtS => CmpOp::GeS,
            CmpOp::LtU => CmpOp::GeU,
            CmpOp::LeS => CmpOp::GtS,
            CmpOp::LeU => CmpOp::GtU,
            CmpOp::GtS => CmpOp::LeS,
            CmpOp::GtU => CmpOp::LeU,
            CmpOp::GeS => CmpOp::LtS,
            CmpOp::GeU => CmpOp::LtU,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }

    /// `a op b` rewritten as `b op' a`.
    fn mirror(self) -> CmpOp {
        match self {
            CmpOp::LtS => CmpOp::GtS,
            CmpOp::LtU => CmpOp::GtU,
            CmpOp::LeS => CmpOp::GeS,
            CmpOp::LeU => CmpOp::GeU,
            CmpOp::GtS => CmpOp::LtS,
            CmpOp::GtU => CmpOp::LtU,
            CmpOp::GeS => CmpOp::LeS,
            CmpOp::GeU => CmpOp::LeU,
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
        }
    }
}

/// A comparison a boolean value came from, for branch refinement. The
/// operand intervals are snapshots from compare time (sound: the local
/// side is invalidated on reassignment, the interval side is only ever
/// *read*).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pred {
    op: CmpOp,
    l_local: Option<u32>,
    l_iv: (u64, u64),
    r_local: Option<u32>,
    r_iv: (u64, u64),
}

impl Pred {
    fn mentions(&self, l: u32) -> bool {
        self.l_local == Some(l) || self.r_local == Some(l)
    }
}

/// Abstract i32 value: unsigned interval + power-of-two stride +
/// provenance + predicate origin. Non-i32 values ride along as ⊤ (their
/// intervals are never consulted for addresses).
#[derive(Debug, Clone, Copy, PartialEq)]
struct AbsVal {
    lo: u64,
    hi: u64,
    /// Power of two dividing every possible value.
    stride: u64,
    /// Wrapped-interval refinement: when present, the value lies in one of
    /// the two disjoint, ordered sub-intervals (`lo`/`hi` is their hull).
    /// Produced by `add`/`sub` with a constant when the interval wraps
    /// 2^32 (a decrementing induction variable is `(0, s-2)` ∪
    /// `(2^32-1, 2^32-1)`); consumed only by branch refinement, which
    /// intersects the parts against the constraint region set — this is
    /// how a descending loop's `i >= 0` back-edge guard recovers the
    /// bounded part. Every other operation uses the hull and drops it.
    split: Option<((u64, u64), (u64, u64))>,
    sym: Option<Sym>,
    pred: Option<Pred>,
}

impl AbsVal {
    fn top() -> AbsVal {
        AbsVal {
            lo: 0,
            hi: U32_MAX,
            stride: 1,
            split: None,
            sym: None,
            pred: None,
        }
    }

    fn cst(v: u32) -> AbsVal {
        let v = u64::from(v);
        AbsVal {
            lo: v,
            hi: v,
            stride: if v == 0 {
                STRIDE_CAP
            } else {
                1 << v.trailing_zeros()
            },
            split: None,
            sym: None,
            pred: None,
        }
    }

    fn iv(lo: u64, hi: u64) -> AbsVal {
        AbsVal {
            lo,
            hi,
            stride: 1,
            split: None,
            sym: None,
            pred: None,
        }
    }

    fn as_const(&self) -> Option<u64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Trivial provenance `value == local` (shift 0, addend 0). Exactness
    /// is irrelevant at shift 0 / addend 0: two u32s congruent mod 2^32
    /// are equal.
    fn as_local(&self) -> Option<u32> {
        match self.sym {
            Some(Sym {
                local,
                shift: 0,
                addend: 0,
                ..
            }) => Some(local),
            _ => None,
        }
    }

    /// The value's parts: the split pair, or the whole interval.
    fn parts(&self) -> Vec<(u64, u64)> {
        match self.split {
            Some((a, b)) => vec![a, b],
            None => vec![(self.lo, self.hi)],
        }
    }
}

fn join_val(a: &AbsVal, b: &AbsVal) -> AbsVal {
    AbsVal {
        lo: a.lo.min(b.lo),
        hi: a.hi.max(b.hi),
        stride: a.stride.min(b.stride),
        // Equal part sets stay (the union is the same set); anything else
        // falls back to the (joined) hull.
        split: if a.split == b.split { a.split } else { None },
        sym: if a.sym == b.sym { a.sym } else { None },
        pred: if a.pred == b.pred { a.pred } else { None },
    }
}

// Interval arithmetic (wasm i32 semantics). Add/sub with a constant model
// the wrap exactly: a fully-wrapping interval translates, a partially
// wrapping one becomes a two-part split (hull ⊤); everything else that
// might wrap goes to ⊤.

/// Interval of `x + c (mod 2^32)` for `x ∈ [lo, hi]`, as
/// `(lo, hi, split)`.
fn wrap_add_iv(lo: u64, hi: u64, c: u64) -> (u64, u64, Option<((u64, u64), (u64, u64))>) {
    debug_assert!(c <= U32_MAX && hi <= U32_MAX);
    if hi + c <= U32_MAX {
        (lo + c, hi + c, None) // no wrap
    } else if lo + c > U32_MAX {
        (lo + c - (1 << 32), hi + c - (1 << 32), None) // all wrap
    } else {
        // Partial wrap: the high (non-wrapping) part and the low (wrapped)
        // part. Hull is ⊤-wide but the split keeps both ends tight.
        (
            0,
            U32_MAX,
            Some(((0, hi + c - (1 << 32)), (lo + c, U32_MAX))),
        )
    }
}

fn abs_add(a: &AbsVal, b: &AbsVal) -> AbsVal {
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return AbsVal::cst((x as u32).wrapping_add(y as u32));
    }
    // Canonicalize to value + const when one side is constant.
    let (v, c) = match (b.as_const(), a.as_const()) {
        (Some(c), _) => (a, Some(c)),
        (_, Some(c)) => (b, Some(c)),
        _ => (a, None),
    };
    let Some(c) = c else {
        if a.hi + b.hi > U32_MAX {
            return AbsVal::top();
        }
        return AbsVal {
            lo: a.lo + b.lo,
            hi: a.hi + b.hi,
            stride: a.stride.min(b.stride),
            split: None,
            sym: None,
            pred: None,
        };
    };
    let (lo, hi, split) = wrap_add_iv(v.lo, v.hi, c);
    let wraps = v.hi + c > U32_MAX;
    let sym = v.sym.map(|s| {
        if wraps || !s.exact {
            Sym {
                addend: (s.addend + c) & U32_MAX,
                exact: false,
                ..s
            }
        } else {
            Sym {
                addend: s.addend + c,
                ..s
            }
        }
    });
    AbsVal {
        lo,
        hi,
        stride: a.stride.min(b.stride),
        split,
        sym,
        pred: None,
    }
}

fn abs_sub(a: &AbsVal, b: &AbsVal) -> AbsVal {
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return AbsVal::cst((x as u32).wrapping_sub(y as u32));
    }
    if let Some(c) = b.as_const() {
        // a - c == a + (2^32 - c) mod 2^32.
        let (lo, hi, split) = wrap_add_iv(a.lo, a.hi, ((1u64 << 32) - c) & U32_MAX);
        let sym = a.sym.map(|s| {
            if a.lo >= c && s.exact && s.addend >= c {
                Sym {
                    addend: s.addend - c,
                    ..s
                }
            } else {
                Sym {
                    addend: s.addend.wrapping_sub(c) & U32_MAX,
                    exact: false,
                    ..s
                }
            }
        });
        return AbsVal {
            lo,
            hi,
            stride: a.stride.min(b.stride),
            split,
            sym,
            pred: None,
        };
    }
    if a.lo < b.hi {
        return AbsVal::top();
    }
    AbsVal {
        lo: a.lo - b.hi,
        hi: a.hi - b.lo,
        stride: a.stride.min(b.stride),
        split: None,
        sym: None,
        pred: None,
    }
}

fn abs_mul(a: &AbsVal, b: &AbsVal) -> AbsVal {
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return AbsVal::cst((x as u32).wrapping_mul(y as u32));
    }
    // (2^32-1)^2 < 2^64, so the product fits u64.
    if a.hi * b.hi > U32_MAX {
        return AbsVal::top();
    }
    AbsVal {
        lo: a.lo * b.lo,
        hi: a.hi * b.hi,
        stride: (a.stride.saturating_mul(b.stride)).min(STRIDE_CAP),
        split: None,
        sym: None,
        pred: None,
    }
}

fn abs_and(a: &AbsVal, b: &AbsVal) -> AbsVal {
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return AbsVal::cst((x as u32) & (y as u32));
    }
    // Masking can only clear bits: result <= min(hi_a, mask) and keeps the
    // mask's low-zero-bit stride (the `addr & 0x3FF8`-style idiom).
    let (val, mask) = match (a.as_const(), b.as_const()) {
        (_, Some(m)) => (a, m),
        (Some(m), _) => (b, m),
        _ => {
            return AbsVal {
                lo: 0,
                hi: a.hi.min(b.hi),
                stride: 1,
                split: None,
                sym: None,
                pred: None,
            }
        }
    };
    AbsVal {
        lo: 0,
        hi: val.hi.min(mask),
        stride: if mask == 0 {
            STRIDE_CAP
        } else {
            1 << mask.trailing_zeros()
        },
        split: None,
        sym: None,
        pred: None,
    }
}

fn abs_shl(a: &AbsVal, b: &AbsVal) -> AbsVal {
    let Some(k) = b.as_const() else {
        return AbsVal::top();
    };
    let k = (k as u32 & 31) as u8;
    if let Some(x) = a.as_const() {
        return AbsVal::cst((x as u32) << k);
    }
    let sym = a.sym.and_then(|s| {
        (u32::from(s.shift) + u32::from(k) <= 31).then(|| Sym {
            local: s.local,
            shift: s.shift + k,
            addend: (s.addend << k) & U32_MAX,
            // Shifting multiplies both sides of the congruence by 2^k, so
            // it survives mod 2^32 — but a possible wrap loses exactness.
            exact: s.exact && a.hi << k <= U32_MAX,
        })
    });
    if a.hi << k > U32_MAX {
        // The shift may wrap: hull goes to ⊤, but the (inexact)
        // congruence provenance survives for hoisted-guard synthesis.
        let mut t = AbsVal::top();
        t.sym = sym;
        return t;
    }
    AbsVal {
        lo: a.lo << k,
        hi: a.hi << k,
        stride: (a.stride << k).min(STRIDE_CAP),
        split: None,
        sym,
        pred: None,
    }
}

fn abs_shr_u(a: &AbsVal, b: &AbsVal) -> AbsVal {
    let Some(k) = b.as_const() else {
        return AbsVal::top();
    };
    let k = k as u32 & 31;
    if let Some(x) = a.as_const() {
        return AbsVal::cst((x as u32) >> k);
    }
    AbsVal {
        lo: a.lo >> k,
        hi: a.hi >> k,
        stride: (a.stride >> k).max(1),
        split: None,
        sym: None,
        pred: None,
    }
}

// ───────────────────────────────── machine state ─────────────────────────

/// The abstract machine state at one program point.
#[derive(Debug, Clone, PartialEq)]
struct State {
    locals: Vec<AbsVal>,
    stack: Vec<AbsVal>,
    /// Dominating-check facts: `(local, shift)` → largest proven
    /// `addend + extent` plus whether that proof was *static* (in-bounds
    /// against the declared minimum, so it also licenses elision under
    /// `clamp`) rather than established by a runtime check. "The *current*
    /// value of this local, shifted, was checked to that extent" — a
    /// per-path truth preserved by intersection at joins and killed on
    /// reassignment.
    checked: BTreeMap<(u32, u8), (u64, bool)>,
    /// Relational facts between locals: `(a, b) → strict` means
    /// `a <u b` when strict, else `a ≤u b` (unsigned, over the current
    /// values). Established by branch refinement on unsigned (or
    /// provably-nonnegative signed) compares and by exact local-to-local
    /// copies; intersected at joins; killed when either side is
    /// reassigned. These power `a - b` narrowing and supply the
    /// loop-invariant bound for hoisted-guard synthesis.
    rel: BTreeMap<(u32, u32), bool>,
    live: bool,
}

impl State {
    /// Strip every fact, provenance, and predicate mentioning local `l`
    /// (called when `l` is reassigned, and by the conservative loop
    /// fallback).
    fn strip_local(&mut self, l: u32) {
        self.checked.retain(|&(cl, _), _| cl != l);
        self.rel.retain(|&(x, y), _| x != l && y != l);
        for v in self.locals.iter_mut().chain(self.stack.iter_mut()) {
            if v.sym.is_some_and(|s| s.local == l) {
                v.sym = None;
            }
            if v.pred.is_some_and(|p| p.mentions(l)) {
                v.pred = None;
            }
        }
    }

    /// Record `a <u b` (strict) or `a ≤u b`; strictness only upgrades.
    fn add_rel(&mut self, a: u32, b: u32, strict: bool) {
        if a == b {
            return;
        }
        let e = self.rel.entry((a, b)).or_insert(strict);
        *e |= strict;
    }

    /// Is `a <u b` (`Some(true)`) or `a ≤u b` (`Some(false)`) known,
    /// directly or through one intermediate local?
    fn rel_lt(&self, a: u32, b: u32) -> Option<bool> {
        if let Some(&s) = self.rel.get(&(a, b)) {
            return Some(s);
        }
        let mut best: Option<bool> = None;
        for (&(x, m), &s1) in self.rel.range((a, 0)..=(a, u32::MAX)) {
            debug_assert_eq!(x, a);
            if let Some(&s2) = self.rel.get(&(m, b)) {
                let s = s1 || s2;
                if s || best.is_none() {
                    best = Some(s);
                }
                if s {
                    break;
                }
            }
        }
        best
    }
}

fn join_state(a: &State, b: &State) -> State {
    if !a.live {
        return b.clone();
    }
    if !b.live {
        return a.clone();
    }
    debug_assert_eq!(a.stack.len(), b.stack.len(), "join at equal heights");
    let locals = a
        .locals
        .iter()
        .zip(&b.locals)
        .map(|(x, y)| join_val(x, y))
        .collect();
    let stack = a
        .stack
        .iter()
        .zip(&b.stack)
        .map(|(x, y)| join_val(x, y))
        .collect();
    let checked = a
        .checked
        .iter()
        .filter_map(|(k, &(va, sa))| {
            b.checked
                .get(k)
                .map(|&(vb, sb)| (*k, (va.min(vb), sa && sb)))
        })
        .collect();
    let rel = a
        .rel
        .iter()
        .filter_map(|(k, &sa)| b.rel.get(k).map(|&sb| (*k, sa && sb)))
        .collect();
    State {
        locals,
        stack,
        checked,
        rel,
        live: true,
    }
}

/// `b ⊑ a` — does `a` already cover `b`?
fn state_contains(a: &State, b: &State) -> bool {
    if !b.live {
        return true;
    }
    join_state(a, b) == *a
}

/// Record a dominating-check fact, keeping the largest extent and
/// upgrading to static when an equal extent is statically proven.
fn record_fact(st: &mut State, key: (u32, u8), need: u64, is_static: bool) {
    match st.checked.get_mut(&key) {
        Some(e) => {
            if need > e.0 {
                *e = (need, is_static);
            } else if need == e.0 {
                e.1 |= is_static;
            }
        }
        None => {
            st.checked.insert(key, (need, is_static));
        }
    }
}

// ─────────────────────────────── structured tree ─────────────────────────

enum Node {
    Plain(u32),
    Block(BlockType, Vec<Node>),
    /// A loop with its header pc (the `Loop` opcode) and end pc (its
    /// `End`), the instruction range codegen duplicates when versioning.
    Loop(BlockType, Vec<Node>, u32, u32),
    If(BlockType, Vec<Node>, Vec<Node>),
}

enum Term {
    End,
    Else,
    Eof,
}

fn parse_seq(body: &[Instr], pos: &mut usize) -> (Vec<Node>, Term) {
    let mut out = Vec::new();
    while *pos < body.len() {
        let pc = *pos;
        *pos += 1;
        match &body[pc] {
            Instr::Block(bt) => {
                let (inner, _) = parse_seq(body, pos);
                out.push(Node::Block(*bt, inner));
            }
            Instr::Loop(bt) => {
                let (inner, _) = parse_seq(body, pos);
                // `pos` now points one past the loop's End.
                out.push(Node::Loop(*bt, inner, pc as u32, (*pos - 1) as u32));
            }
            Instr::If(bt) => {
                let (then_b, t) = parse_seq(body, pos);
                let else_b = if matches!(t, Term::Else) {
                    parse_seq(body, pos).0
                } else {
                    Vec::new()
                };
                out.push(Node::If(*bt, then_b, else_b));
            }
            Instr::Else => return (out, Term::Else),
            Instr::End => return (out, Term::End),
            _ => out.push(Node::Plain(pc as u32)),
        }
    }
    (out, Term::Eof)
}

fn collect_written_locals(nodes: &[Node], body: &[Instr], out: &mut Vec<u32>) {
    for n in nodes {
        match n {
            Node::Plain(pc) => {
                if let Instr::LocalSet(l) | Instr::LocalTee(l) = &body[*pc as usize] {
                    if !out.contains(l) {
                        out.push(*l);
                    }
                }
            }
            Node::Block(_, b) | Node::Loop(_, b, _, _) => collect_written_locals(b, body, out),
            Node::If(_, t, e) => {
                collect_written_locals(t, body, out);
                collect_written_locals(e, body, out);
            }
        }
    }
}

// ────────────────────────────────── control frames ───────────────────────

struct Frame {
    is_loop: bool,
    entry_height: usize,
    keep: usize,
    /// Forward-branch merge (blocks/ifs).
    merged: Option<State>,
    /// Back-edge merge (loops).
    backedge: Option<State>,
}

fn merge_into(slot: &mut Option<State>, s: State) {
    match slot {
        Some(m) => *m = join_state(m, &s),
        None => *slot = Some(s),
    }
}

// ──────────────────────────────────── analyzer ───────────────────────────

/// Per-loop hoist-candidate collection, pushed for the recording pass of
/// each straight-line (all-`Plain`) loop body.
struct LoopCtx {
    loop_pc: u32,
    end_pc: u32,
    /// Locals the loop body writes (guard bounds must not be among them).
    written: Vec<u32>,
    guards: Vec<GuardExpr>,
    /// pcs of the `Emit` accesses the guards cover.
    pcs: Vec<u32>,
    /// Still hoistable: every `Emit` access so far produced a guard.
    ok: bool,
}

struct Analyzer<'m> {
    module: &'m Module,
    fmeta: &'m FuncMeta,
    body: &'m [Instr],
    mem_min: u64,
    mem_max: u64,
    /// Widening thresholds harvested from the function's i32 constants.
    thresholds: Vec<u64>,
    kinds: Vec<CheckKind>,
    summary: FuncSummary,
    /// Bounded end-of-access EAs, for the footprint summary.
    max_needed: u64,
    any_bounded: bool,
    any_unbounded: bool,
    /// Plan/summary writes happen only on the single recording pass over
    /// each instruction; loop fixpoint probes run with this off.
    recording: bool,
    /// Synthesize hoisted guards ([`AnalysisConfig::hoist`]).
    hoist: bool,
    /// Number of imported functions (start of the defined index space).
    ni: u32,
    /// Phase-A return intervals by defined function index (`None` = ⊤ or
    /// not yet computed).
    ret_ivs: &'m [Option<(u64, u64)>],
    /// Entry intervals for the parameters (`None` = all ⊤).
    param_ivs: Option<&'m [(u64, u64)]>,
    /// Caller-side argument intervals observed at reachable `call` sites
    /// on the recording pass: `(callee func index, per-param intervals)`.
    call_args: Vec<(u32, Vec<(u64, u64)>)>,
    /// Params the body ever writes (excluded from `param_footprint`).
    param_written: Vec<bool>,
    footprint: BTreeMap<(u32, u8), u64>,
    loop_stack: Vec<LoopCtx>,
    hoists: Vec<HoistPlan>,
    clamp_ok: Vec<u32>,
}

impl<'m> Analyzer<'m> {
    fn new(
        module: &'m Module,
        fmeta: &'m FuncMeta,
        mem_min: u64,
        mem_max: u64,
        hoist: bool,
        ret_ivs: &'m [Option<(u64, u64)>],
        param_ivs: Option<&'m [(u64, u64)]>,
    ) -> Analyzer<'m> {
        Analyzer {
            module,
            fmeta,
            body: &[],
            mem_min,
            mem_max,
            thresholds: Vec::new(),
            kinds: Vec::new(),
            summary: FuncSummary::default(),
            max_needed: 0,
            any_bounded: false,
            any_unbounded: false,
            recording: true,
            hoist,
            ni: module.num_imported_funcs(),
            ret_ivs,
            param_ivs,
            call_args: Vec::new(),
            param_written: Vec::new(),
            footprint: BTreeMap::new(),
            loop_stack: Vec::new(),
            hoists: Vec::new(),
            clamp_ok: Vec::new(),
        }
    }

    fn run(self, body: &'m [Instr]) -> FuncPlan {
        self.run_collect(body).0
    }

    /// Like [`Analyzer::run`], but also returns the argument intervals
    /// observed at every reachable `call` site for caller→callee
    /// propagation.
    fn run_collect(mut self, body: &'m [Instr]) -> (FuncPlan, Vec<(u32, Vec<(u64, u64)>)>) {
        self.body = body;
        self.kinds = vec![CheckKind::Emit; body.len()];
        for i in body {
            if let Instr::I32Const(c) = i {
                let c = u64::from(*c as u32);
                self.thresholds.push(c);
                self.thresholds.push((c + 1).min(U32_MAX));
            }
        }
        self.thresholds.sort_unstable();
        self.thresholds.dedup();

        let n_params = self.fmeta.n_params as usize;
        self.param_written = vec![false; n_params];
        for i in body {
            if let Instr::LocalSet(l) | Instr::LocalTee(l) = i {
                if (*l as usize) < n_params {
                    self.param_written[*l as usize] = true;
                }
            }
        }
        let locals = self
            .fmeta
            .local_types
            .iter()
            .enumerate()
            .map(|(i, _)| {
                if i < n_params {
                    match self.param_ivs.and_then(|p| p.get(i)) {
                        Some(&(lo, hi)) => AbsVal::iv(lo, hi),
                        None => AbsVal::top(),
                    }
                } else {
                    // Declared locals are zero-initialized; numerically
                    // [0, 0] regardless of type.
                    AbsVal::cst(0)
                }
            })
            .collect();
        let mut st = State {
            locals,
            stack: Vec::new(),
            checked: BTreeMap::new(),
            rel: BTreeMap::new(),
            live: true,
        };

        let mut pos = 0usize;
        let (tree, _) = parse_seq(body, &mut pos);
        let mut frames = vec![Frame {
            is_loop: false,
            entry_height: 0,
            keep: usize::from(self.fmeta.result.is_some()),
            merged: None,
            backedge: None,
        }];
        self.exec_seq(&tree, &mut st, &mut frames, 0);

        // Joined i32 return interval: the fall-through exit plus every
        // `return` merged into the root frame.
        if self.fmeta.result == Some(ValType::I32) {
            let mut rj: Option<(u64, u64)> = None;
            let mut add = |v: &AbsVal| {
                rj = Some(match rj {
                    Some((lo, hi)) => (lo.min(v.lo), hi.max(v.hi)),
                    None => (v.lo, v.hi),
                });
            };
            if st.live {
                if let Some(v) = st.stack.last() {
                    add(v);
                }
            }
            if let Some(m) = &frames[0].merged {
                if let Some(v) = m.stack.last() {
                    add(v);
                }
            }
            self.summary.ret_iv = Some(rj.unwrap_or((0, U32_MAX)));
        }
        self.summary.param_footprint = self
            .footprint
            .iter()
            .map(|(&(p, shift), &bound)| (p, shift, bound))
            .collect();

        self.summary.max_proven_ea = self.any_bounded.then_some(self.max_needed);
        self.summary.check_free_min_bytes = if self.summary.accesses == 0 {
            Some(0)
        } else if self.any_unbounded {
            None
        } else {
            Some(self.max_needed)
        };
        self.clamp_ok.sort_unstable();
        self.clamp_ok.dedup();
        self.hoists.sort_by_key(|h| h.loop_pc);
        (
            FuncPlan {
                kinds: self.kinds,
                clamp_ok: self.clamp_ok,
                hoists: self.hoists,
                summary: self.summary,
            },
            self.call_args,
        )
    }

    // ── structured execution ───────────────────────────────────────

    fn exec_seq(&mut self, nodes: &[Node], st: &mut State, frames: &mut Vec<Frame>, floor: usize) {
        for n in nodes {
            if !st.live {
                return;
            }
            match n {
                Node::Plain(pc) => self.step(*pc as usize, st, frames, floor),
                Node::Block(bt, inner) => {
                    let eh = st.stack.len();
                    let keep = bt.arity();
                    frames.push(Frame {
                        is_loop: false,
                        entry_height: eh,
                        keep,
                        merged: None,
                        backedge: None,
                    });
                    self.exec_seq(inner, st, frames, floor);
                    let fr = frames.pop().expect("block frame");
                    block_exit(st, fr.merged, eh, keep);
                }
                Node::Loop(bt, inner, loop_pc, end_pc) => {
                    self.exec_loop(*bt, inner, *loop_pc, *end_pc, st, frames, floor)
                }
                Node::If(bt, then_b, else_b) => {
                    self.exec_if(*bt, then_b, else_b, st, frames, floor)
                }
            }
        }
    }

    fn exec_if(
        &mut self,
        bt: BlockType,
        then_b: &[Node],
        else_b: &[Node],
        st: &mut State,
        frames: &mut Vec<Frame>,
        floor: usize,
    ) {
        let cond = st.stack.pop().expect("validated if condition");
        let eh = st.stack.len();
        let keep = bt.arity();
        let mut then_s = st.clone();
        let mut else_s = std::mem::replace(st, then_s.clone());
        // Interval gating: a constant condition kills the untaken arm
        // entirely (this is how a hoisted loop pre-guard manifests).
        if cond.hi == 0 {
            then_s.live = false;
        }
        if cond.lo > 0 {
            else_s.live = false;
        }
        if let Some(p) = cond.pred {
            refine(&mut then_s, &p, true);
            refine(&mut else_s, &p, false);
        }
        frames.push(Frame {
            is_loop: false,
            entry_height: eh,
            keep,
            merged: None,
            backedge: None,
        });
        if then_s.live {
            self.exec_seq(then_b, &mut then_s, frames, floor);
        }
        if else_s.live {
            self.exec_seq(else_b, &mut else_s, frames, floor);
        }
        let fr = frames.pop().expect("if frame");
        let mut acc: Option<State> = None;
        for s in [then_s, else_s] {
            if s.live {
                merge_into(&mut acc, s);
            }
        }
        if let Some(m) = fr.merged {
            merge_into(&mut acc, m);
        }
        match acc {
            Some(out) => *st = out,
            None => {
                st.live = false;
                st.stack.truncate(eh);
                st.stack.extend(std::iter::repeat_n(AbsVal::top(), keep));
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_loop(
        &mut self,
        bt: BlockType,
        inner: &[Node],
        loop_pc: u32,
        end_pc: u32,
        st: &mut State,
        frames: &mut Vec<Frame>,
        floor: usize,
    ) {
        let eh = st.stack.len();
        let keep = bt.arity();
        if !st.live {
            block_exit(st, None, eh, keep);
            return;
        }
        let entry = st.clone();
        let saved_rec = self.recording;

        // Widening fixpoint over the header state. Probes run without
        // recording and with forward exits sandboxed (outer merges would
        // double-count); widening jumps `hi` to the next program constant
        // (threshold widening) so `i < N` loop bounds are found exactly,
        // and a short narrowing phase recovers the `[0, N-1]` header after
        // an overshoot.
        let mut header = entry.clone();
        let mut last_cand: Option<State>;
        let max_iters = self.thresholds.len() + 8;
        let mut it = 0usize;
        loop {
            if it >= max_iters {
                header = self.conservative_header(&entry, inner);
                last_cand = None;
                break;
            }
            match self.probe(inner, &header, eh, frames) {
                None => {
                    // Body never reaches the back-edge: one trip from entry.
                    header = entry.clone();
                    last_cand = None;
                    break;
                }
                Some(be) => {
                    let cand = join_state(&entry, &be);
                    if state_contains(&header, &cand) {
                        last_cand = Some(cand);
                        break;
                    }
                    let up = join_state(&header, &cand);
                    header = if it >= 2 {
                        self.widen(&header, &up)
                    } else {
                        up
                    };
                }
            }
            it += 1;
        }
        // Narrowing: each candidate is accepted only after verifying it is
        // itself a post-fixpoint, so the result stays sound even though
        // refinement is not exactly monotone.
        for _ in 0..2 {
            let Some(cand) = last_cand.take() else { break };
            if cand == header {
                break;
            }
            let next = match self.probe(inner, &cand, eh, frames) {
                None => entry.clone(),
                Some(be) => join_state(&entry, &be),
            };
            if state_contains(&cand, &next) {
                header = cand;
                last_cand = Some(next);
            } else {
                break;
            }
        }
        self.recording = saved_rec;

        // The single recording pass, from the stabilized header, with
        // forward exits live. Straight-line loop bodies additionally
        // collect hoisted-guard candidates: if every `Emit` access in the
        // body has a loop-invariant symbolic bound, the loop is versioned
        // and those accesses become `ElideHoisted`.
        *st = header;
        frames.push(Frame {
            is_loop: true,
            entry_height: eh,
            keep: 0,
            merged: None,
            backedge: None,
        });
        let hoisting = self.recording
            && self.hoist
            && !inner.is_empty()
            && inner.iter().all(|n| matches!(n, Node::Plain(_)));
        if hoisting {
            let mut written = Vec::new();
            collect_written_locals(inner, self.body, &mut written);
            self.loop_stack.push(LoopCtx {
                loop_pc,
                end_pc,
                written,
                guards: Vec::new(),
                pcs: Vec::new(),
                ok: true,
            });
        }
        self.exec_seq(inner, st, frames, floor);
        frames.pop();
        if hoisting {
            let ctx = self.loop_stack.pop().expect("loop ctx");
            if ctx.ok && !ctx.pcs.is_empty() {
                for &pc in &ctx.pcs {
                    self.kinds[pc as usize] = CheckKind::ElideHoisted;
                    self.summary.emitted -= 1;
                    self.summary.elided_hoisted += 1;
                }
                let mut guards: Vec<GuardExpr> = Vec::new();
                for g in ctx.guards {
                    match guards.iter_mut().find(|e| {
                        e.bound_local == g.bound_local && e.strict == g.strict && e.shift == g.shift
                    }) {
                        Some(e) => e.addend = e.addend.max(g.addend),
                        None => guards.push(g),
                    }
                }
                self.hoists.push(HoistPlan {
                    loop_pc: ctx.loop_pc,
                    end_pc: ctx.end_pc,
                    guards,
                });
            }
        }
        block_exit(st, None, eh, keep);
    }

    /// A preheader guard covering one `Emit` access with symbolic address
    /// `(sym.local << sym.shift) + sym.addend` and the given extent, if
    /// the loop admits one: the index local itself when loop-invariant,
    /// else a direct relational bound `index <u/≤u n` on an invariant `n`.
    fn guard_for(sym: &Sym, extent: u64, st: &State, written: &[u32]) -> Option<GuardExpr> {
        let needed = sym.addend + extent;
        if needed > 0x7FFF_FFFF {
            return None;
        }
        if !written.contains(&sym.local) {
            return Some(GuardExpr {
                bound_local: sym.local,
                strict: false,
                shift: sym.shift,
                addend: needed,
            });
        }
        for (&(a, n), &strict) in st.rel.iter() {
            if a == sym.local && !written.contains(&n) {
                return Some(GuardExpr {
                    bound_local: n,
                    strict,
                    shift: sym.shift,
                    addend: needed,
                });
            }
        }
        None
    }

    /// One non-recording pass over a loop body from `header`; returns the
    /// merged back-edge state, if any. Branches past the loop frame are
    /// dropped (they only mark the path dead).
    fn probe(
        &mut self,
        inner: &[Node],
        header: &State,
        eh: usize,
        frames: &mut Vec<Frame>,
    ) -> Option<State> {
        let mut s = header.clone();
        frames.push(Frame {
            is_loop: true,
            entry_height: eh,
            keep: 0,
            merged: None,
            backedge: None,
        });
        let inner_floor = frames.len() - 1;
        self.recording = false;
        self.exec_seq(inner, &mut s, frames, inner_floor);
        frames.pop().expect("loop frame").backedge
    }

    /// Fixpoint failed to converge: fall back to the entry state with
    /// every local the loop writes at ⊤ and all facts dropped. Sound: the
    /// body cannot produce values outside ⊤ for written locals, cannot
    /// touch the others, and re-establishes facts itself.
    fn conservative_header(&self, entry: &State, inner: &[Node]) -> State {
        let mut h = entry.clone();
        let mut written = Vec::new();
        collect_written_locals(inner, self.body, &mut written);
        for l in written {
            h.locals[l as usize] = AbsVal::top();
            h.strip_local(l);
        }
        h.checked.clear();
        h
    }

    fn widen(&self, old: &State, up: &State) -> State {
        let mut w = up.clone();
        for (wv, ov) in w
            .locals
            .iter_mut()
            .chain(w.stack.iter_mut())
            .zip(old.locals.iter().chain(old.stack.iter()))
        {
            if wv.lo < ov.lo {
                wv.lo = self
                    .thresholds
                    .iter()
                    .rev()
                    .find(|&&t| t <= wv.lo)
                    .copied()
                    .unwrap_or(0);
            }
            if wv.hi > ov.hi {
                wv.hi = self
                    .thresholds
                    .iter()
                    .find(|&&t| t >= wv.hi)
                    .copied()
                    .unwrap_or(U32_MAX);
            }
        }
        w
    }

    // ── branching ──────────────────────────────────────────────────

    fn do_branch(&mut self, s: &State, frames: &mut [Frame], floor: usize, depth: usize) {
        if !s.live {
            return;
        }
        let idx = frames.len() - 1 - depth;
        let fr = &mut frames[idx];
        let mut t = s.clone();
        if fr.is_loop {
            t.stack.truncate(fr.entry_height);
            if idx >= floor {
                merge_into(&mut fr.backedge, t);
            }
        } else {
            let kept: Vec<AbsVal> = (0..fr.keep)
                .map(|_| t.stack.pop().expect("validated branch"))
                .collect();
            t.stack.truncate(fr.entry_height);
            t.stack.extend(kept.into_iter().rev());
            if idx >= floor {
                merge_into(&mut fr.merged, t);
            }
        }
    }

    // ── the per-access decision ────────────────────────────────────

    fn decide(&mut self, pc: usize, addr: &AbsVal, offset: u32, size: u32, st: &mut State) {
        let extent = u64::from(offset) + u64::from(size);
        let end_min = addr.lo + extent;
        let end_max = addr.hi + extent;
        // Dominating-check facts need *exact* provenance: they compare
        // checked extents of the runtime value, which a mod-2^32
        // congruence cannot order. Inexact provenance still feeds
        // hoisted-guard synthesis below (the guard recomputes the bound
        // in 64-bit, where the wrapped value can only be smaller).
        let exact_sym = addr.sym.filter(|s| s.exact);
        let mut dom_static = false;
        let kind = if end_max <= self.mem_min {
            CheckKind::ElideInBounds
        } else if end_min > self.mem_max {
            CheckKind::StaticOob
        } else if let Some(sym) = exact_sym {
            let key = (sym.local, sym.shift);
            let need = sym.addend + extent;
            match st.checked.get(&key) {
                Some(&(have, st_have)) if have >= need => {
                    dom_static = st_have;
                    CheckKind::ElideDominated
                }
                _ => {
                    record_fact(st, key, need, false);
                    CheckKind::Emit
                }
            }
        } else {
            CheckKind::Emit
        };
        if kind == CheckKind::ElideInBounds {
            // A statically proven bound is also a dominating fact — a
            // *static* one, consumable under clamp too.
            if let Some(sym) = exact_sym {
                record_fact(st, (sym.local, sym.shift), sym.addend + extent, true);
            }
        }
        if kind == CheckKind::StaticOob {
            st.live = false;
        }
        if self.recording {
            self.kinds[pc] = kind;
            self.summary.accesses += 1;
            match kind {
                CheckKind::Emit => self.summary.emitted += 1,
                CheckKind::ElideInBounds => self.summary.elided_in_bounds += 1,
                CheckKind::ElideDominated => self.summary.elided_dominated += 1,
                CheckKind::StaticOob => self.summary.static_oob += 1,
                CheckKind::ElideHoisted => unreachable!("assigned only at loop finalize"),
                CheckKind::ElideDominatedIr => unreachable!("assigned only by lb-jit dataflow"),
            }
            if kind == CheckKind::ElideDominated && dom_static {
                self.clamp_ok.push(pc as u32);
            }
            if let Some(sym) = exact_sym {
                if (sym.local as usize) < self.param_written.len()
                    && !self.param_written[sym.local as usize]
                {
                    let e = self.footprint.entry((sym.local, sym.shift)).or_insert(0);
                    *e = (*e).max(sym.addend + extent);
                }
            }
            if addr.hi == U32_MAX {
                self.any_unbounded = true;
            } else {
                self.any_bounded = true;
                self.max_needed = self.max_needed.max(end_max);
            }
            if kind == CheckKind::Emit && self.hoist {
                if let Some(ctx) = self.loop_stack.last_mut() {
                    if ctx.ok {
                        match addr
                            .sym
                            .and_then(|s| Self::guard_for(&s, extent, st, &ctx.written))
                        {
                            Some(g) => {
                                ctx.guards.push(g);
                                ctx.pcs.push(pc as u32);
                            }
                            None => ctx.ok = false,
                        }
                    }
                }
            }
        }
    }

    // ── instruction step ───────────────────────────────────────────

    #[allow(clippy::too_many_lines)]
    fn step(&mut self, pc: usize, st: &mut State, frames: &mut [Frame], floor: usize) {
        use Instr::*;
        let instr = &self.body[pc];
        match instr {
            Unreachable => st.live = false,
            Nop => {}
            Block(_) | Loop(_) | If(_) | Else | End => {
                unreachable!("structured ops handled by the tree walk")
            }
            Br(d) => {
                self.do_branch(st, frames, floor, *d as usize);
                st.live = false;
            }
            BrIf(d) => {
                let cond = st.stack.pop().expect("validated br_if");
                if cond.hi != 0 {
                    let mut taken = st.clone();
                    if let Some(p) = cond.pred {
                        refine(&mut taken, &p, true);
                    }
                    self.do_branch(&taken, frames, floor, *d as usize);
                }
                if cond.lo > 0 {
                    st.live = false;
                } else if let Some(p) = cond.pred {
                    refine(st, &p, false);
                }
            }
            BrTable(t) => {
                let _sel = st.stack.pop();
                for d in t.targets.iter().chain(std::iter::once(&t.default)) {
                    let s = st.clone();
                    self.do_branch(&s, frames, floor, *d as usize);
                }
                st.live = false;
            }
            Return => {
                self.do_branch(st, frames, floor, frames.len() - 1);
                st.live = false;
            }
            Call(fi) => {
                let ty = self.module.func_type(*fi).expect("validated call");
                let n = ty.params.len();
                let mut args = Vec::with_capacity(n);
                for _ in 0..n {
                    let v = st.stack.pop().expect("validated call args");
                    args.push((v.lo, v.hi));
                }
                args.reverse();
                if self.recording {
                    self.call_args.push((*fi, args));
                }
                if let Some(rt) = ty.result() {
                    // Imports and non-i32 results stay ⊤; defined callees
                    // narrow to their Phase-A return interval.
                    let v = match (rt, fi.checked_sub(self.ni)) {
                        (ValType::I32, Some(d)) => {
                            match self.ret_ivs.get(d as usize).copied().flatten() {
                                Some((lo, hi)) => AbsVal::iv(lo, hi),
                                None => AbsVal::top(),
                            }
                        }
                        _ => AbsVal::top(),
                    };
                    st.stack.push(v);
                }
                // Calls cannot touch our locals, and linear memory only
                // grows, so intervals and facts survive.
            }
            CallIndirect(ti) => {
                let ty = &self.module.types[*ti as usize];
                st.stack.pop(); // table index
                for _ in 0..ty.params.len() {
                    st.stack.pop();
                }
                if ty.result().is_some() {
                    st.stack.push(AbsVal::top());
                }
            }
            Drop => {
                st.stack.pop();
            }
            Select => {
                let _c = st.stack.pop();
                let b = st.stack.pop().expect("validated select");
                let a = st.stack.pop().expect("validated select");
                st.stack.push(join_val(&a, &b));
            }

            LocalGet(l) => {
                let mut v = st.locals[*l as usize];
                v.sym = Some(Sym {
                    local: *l,
                    shift: 0,
                    addend: 0,
                    exact: true,
                });
                st.stack.push(v);
            }
            LocalSet(l) | LocalTee(l) => {
                let tee = matches!(instr, LocalTee(_));
                let mut v = if tee {
                    *st.stack.last().expect("validated tee")
                } else {
                    st.stack.pop().expect("validated set")
                };
                if tee {
                    st.stack.pop();
                }
                st.strip_local(*l);
                // The stored value may itself mention the local being
                // overwritten (`i = i + 1`): relative to the *new* value
                // it is exactly the local.
                if v.sym.is_some_and(|s| s.local == *l) {
                    v.sym = None;
                }
                if v.pred.is_some_and(|p| p.mentions(*l)) {
                    v.pred = None;
                }
                // An exact copy of another local (`end = n`) makes the
                // two equal: record both ≤ directions so either can serve
                // as the other's loop-invariant bound.
                if let Some(m) = v.as_local() {
                    st.add_rel(*l, m, false);
                    st.add_rel(m, *l, false);
                }
                let mut stored = v;
                stored.sym = None;
                st.locals[*l as usize] = stored;
                if tee {
                    let mut top = v;
                    top.sym = Some(Sym {
                        local: *l,
                        shift: 0,
                        addend: 0,
                        exact: true,
                    });
                    st.stack.push(top);
                }
            }
            GlobalGet(_) => st.stack.push(AbsVal::top()),
            GlobalSet(_) => {
                st.stack.pop();
            }

            MemorySize => {
                st.stack
                    .push(AbsVal::iv(self.mem_min >> 16, self.mem_max >> 16));
            }
            MemoryGrow => {
                st.stack.pop();
                st.stack.push(AbsVal::top());
            }

            I32Const(v) => st.stack.push(AbsVal::cst(*v as u32)),
            I64Const(_) | F32Const(_) | F64Const(_) => st.stack.push(AbsVal::top()),

            I32Add => self.binop(st, abs_add),
            I32Sub => {
                let b = st.stack.pop().expect("validated binop");
                let a = st.stack.pop().expect("validated binop");
                let mut r = abs_sub(&a, &b);
                // Interval subtraction gave up, but a relational fact
                // `b <u a` proves `a - b` cannot wrap: it lies in
                // [strict, a.hi - b.lo].
                if r.lo == 0 && r.hi == U32_MAX {
                    if let (Some(la), Some(lb)) = (a.as_local(), b.as_local()) {
                        if b.lo <= a.hi {
                            if let Some(strict) = st.rel_lt(lb, la) {
                                r = AbsVal::iv(u64::from(strict), a.hi - b.lo);
                            }
                        }
                    }
                }
                st.stack.push(r);
            }
            I32Mul => self.binop(st, abs_mul),
            I32And => self.binop(st, abs_and),
            I32Shl => self.binop(st, abs_shl),
            I32ShrU => self.binop(st, abs_shr_u),
            I32Or | I32Xor => self.binop(st, |a, b| {
                match (a.as_const(), b.as_const()) {
                    (Some(_), Some(_)) => { /* folded below */ }
                    _ => return AbsVal::top(),
                }
                // Exact fold for constants (rare but free).
                let (x, y) = (a.lo as u32, b.lo as u32);
                AbsVal::cst(if matches!(instr, I32Or) { x | y } else { x ^ y })
            }),

            I32Eqz => {
                let a = st.stack.pop().expect("validated eqz");
                let v = match a.as_const() {
                    Some(c) => AbsVal::cst(u32::from(c == 0)),
                    None => {
                        let mut v = AbsVal::iv(0, 1);
                        v.pred = a.pred.map(|p| Pred {
                            op: p.op.inverse(),
                            ..p
                        });
                        // `x == 0` on a known-nonzero interval folds false.
                        if a.lo > 0 {
                            v = AbsVal::cst(0);
                        }
                        v
                    }
                };
                st.stack.push(v);
            }
            I32Eq => self.cmp(st, CmpOp::Eq),
            I32Ne => self.cmp(st, CmpOp::Ne),
            I32LtS => self.cmp(st, CmpOp::LtS),
            I32LtU => self.cmp(st, CmpOp::LtU),
            I32GtS => self.cmp(st, CmpOp::GtS),
            I32GtU => self.cmp(st, CmpOp::GtU),
            I32LeS => self.cmp(st, CmpOp::LeS),
            I32LeU => self.cmp(st, CmpOp::LeU),
            I32GeS => self.cmp(st, CmpOp::GeS),
            I32GeU => self.cmp(st, CmpOp::GeU),

            // Remaining two-operand ops: pop 2, push ⊤.
            I32DivS | I32DivU | I32RemS | I32RemU | I32ShrS | I32Rotl | I32Rotr | I64Add
            | I64Sub | I64Mul | I64DivS | I64DivU | I64RemS | I64RemU | I64And | I64Or | I64Xor
            | I64Shl | I64ShrS | I64ShrU | I64Rotl | I64Rotr | I64Eq | I64Ne | I64LtS | I64LtU
            | I64GtS | I64GtU | I64LeS | I64LeU | I64GeS | I64GeU | F32Eq | F32Ne | F32Lt
            | F32Gt | F32Le | F32Ge | F64Eq | F64Ne | F64Lt | F64Gt | F64Le | F64Ge | F32Add
            | F32Sub | F32Mul | F32Div | F32Min | F32Max | F32Copysign | F64Add | F64Sub
            | F64Mul | F64Div | F64Min | F64Max | F64Copysign => {
                st.stack.pop();
                st.stack.pop();
                st.stack.push(AbsVal::top());
            }
            // Remaining one-operand ops: pop 1, push ⊤.
            I32Clz | I32Ctz | I32Popcnt | I64Clz | I64Ctz | I64Popcnt | I64Eqz | F32Abs
            | F32Neg | F32Ceil | F32Floor | F32Trunc | F32Nearest | F32Sqrt | F64Abs | F64Neg
            | F64Ceil | F64Floor | F64Trunc | F64Nearest | F64Sqrt | I32WrapI64 | I64ExtendI32S
            | I64ExtendI32U | I32TruncF32S | I32TruncF32U | I32TruncF64S | I32TruncF64U
            | I64TruncF32S | I64TruncF32U | I64TruncF64S | I64TruncF64U | F32ConvertI32S
            | F32ConvertI32U | F32ConvertI64S | F32ConvertI64U | F64ConvertI32S
            | F64ConvertI32U | F64ConvertI64S | F64ConvertI64U | F32DemoteF64 | F64PromoteF32
            | I32ReinterpretF32 | I64ReinterpretF64 | F32ReinterpretI32 | F64ReinterpretI64 => {
                st.stack.pop();
                st.stack.push(AbsVal::top());
            }

            other => {
                let acc = other
                    .mem_access()
                    .unwrap_or_else(|| unreachable!("unhandled instruction {other:?}"));
                if acc.is_store {
                    st.stack.pop(); // value
                    let addr = st.stack.pop().expect("validated store");
                    self.decide(pc, &addr, acc.memarg.offset, acc.bytes, st);
                } else {
                    let addr = st.stack.pop().expect("validated load");
                    self.decide(pc, &addr, acc.memarg.offset, acc.bytes, st);
                    // Narrow loads have known result ranges — useful for
                    // masked-address chains.
                    let v = match (acc.bytes, acc.sign_extend, acc.ty) {
                        (1, false, ValType::I32) => AbsVal::iv(0, 0xFF),
                        (2, false, ValType::I32) => AbsVal::iv(0, 0xFFFF),
                        _ => AbsVal::top(),
                    };
                    st.stack.push(v);
                }
            }
        }
    }

    fn binop(&mut self, st: &mut State, f: impl FnOnce(&AbsVal, &AbsVal) -> AbsVal) {
        let b = st.stack.pop().expect("validated binop");
        let a = st.stack.pop().expect("validated binop");
        st.stack.push(f(&a, &b));
    }

    fn cmp(&mut self, st: &mut State, op: CmpOp) {
        let b = st.stack.pop().expect("validated cmp");
        let a = st.stack.pop().expect("validated cmp");
        if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
            let (xs, ys) = (x as u32 as i32, y as u32 as i32);
            let r = match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::LtU => x < y,
                CmpOp::LeU => x <= y,
                CmpOp::GtU => x > y,
                CmpOp::GeU => x >= y,
                CmpOp::LtS => xs < ys,
                CmpOp::LeS => xs <= ys,
                CmpOp::GtS => xs > ys,
                CmpOp::GeS => xs >= ys,
            };
            st.stack.push(AbsVal::cst(u32::from(r)));
            return;
        }
        let mut v = AbsVal::iv(0, 1);
        v.pred = Some(Pred {
            op,
            l_local: a.as_local(),
            l_iv: (a.lo, a.hi),
            r_local: b.as_local(),
            r_iv: (b.lo, b.hi),
        });
        st.stack.push(v);
    }
}

fn block_exit(st: &mut State, merged: Option<State>, eh: usize, keep: usize) {
    if st.live {
        debug_assert_eq!(st.stack.len(), eh + keep, "validated block arity");
        if let Some(m) = merged {
            *st = join_state(st, &m);
        }
    } else if let Some(m) = merged {
        *st = m;
    } else {
        st.stack.truncate(eh);
        st.stack.extend(std::iter::repeat_n(AbsVal::top(), keep));
    }
}

// ─────────────────────────────── branch refinement ───────────────────────

/// Narrow `state` assuming `pred` evaluated to `truth`. Only refines
/// operands with trivial local provenance. Unsigned comparisons refine
/// directly; signed comparisons refine whenever the *other* side is
/// provably non-negative, by intersecting the value's parts with a signed
/// region set that includes the negative (high unsigned) half where the
/// operator allows it — this is what recovers a descending induction
/// variable from its wrapped-decrement split. An empty intersection marks
/// the state dead. Afterwards, relational `a <u b` facts are recorded
/// when both sides are locals and the comparison has an unsigned reading.
fn refine(state: &mut State, pred: &Pred, truth: bool) {
    if !state.live {
        return;
    }
    let op = if truth { pred.op } else { pred.op.inverse() };
    let l_iv = pred
        .l_local
        .map_or(pred.l_iv, |l| iv_of(&state.locals[l as usize]));
    let r_iv = pred
        .r_local
        .map_or(pred.r_iv, |l| iv_of(&state.locals[l as usize]));
    if let Some(l) = pred.l_local {
        apply_constraint(state, l, op, r_iv);
    }
    if !state.live {
        return;
    }
    if let Some(r) = pred.r_local {
        apply_constraint(state, r, op.mirror(), l_iv);
    }
    if !state.live {
        return;
    }
    // Unsigned reading of the comparison, for relational facts and
    // constant feasibility: native unsigned ops pass through; signed ops
    // convert when both (post-refinement) operands are non-negative.
    const NONNEG: u64 = 0x7FFF_FFFF;
    let l_now = pred
        .l_local
        .map_or(pred.l_iv, |l| iv_of(&state.locals[l as usize]));
    let r_now = pred
        .r_local
        .map_or(pred.r_iv, |l| iv_of(&state.locals[l as usize]));
    let uop = match op {
        CmpOp::LtU | CmpOp::LeU | CmpOp::GtU | CmpOp::GeU | CmpOp::Eq | CmpOp::Ne => Some(op),
        CmpOp::LtS | CmpOp::LeS | CmpOp::GtS | CmpOp::GeS
            if l_now.1 <= NONNEG && r_now.1 <= NONNEG =>
        {
            Some(match op {
                CmpOp::LtS => CmpOp::LtU,
                CmpOp::LeS => CmpOp::LeU,
                CmpOp::GtS => CmpOp::GtU,
                CmpOp::GeS => CmpOp::GeU,
                _ => unreachable!(),
            })
        }
        _ => None,
    };
    let Some(uop) = uop else { return };
    if let (Some(l), Some(r)) = (pred.l_local, pred.r_local) {
        match uop {
            CmpOp::LtU => state.add_rel(l, r, true),
            CmpOp::LeU => state.add_rel(l, r, false),
            CmpOp::GtU => state.add_rel(r, l, true),
            CmpOp::GeU => state.add_rel(r, l, false),
            CmpOp::Eq => {
                state.add_rel(l, r, false);
                state.add_rel(r, l, false);
            }
            _ => {}
        }
    }
    // Constant-vs-constant infeasibility (e.g. a folded `0 != 0` guard).
    if pred.l_local.is_none() && pred.r_local.is_none() {
        let feasible = match uop {
            CmpOp::LtU => l_iv.0 < r_iv.1,
            CmpOp::LeU => l_iv.0 <= r_iv.1,
            CmpOp::GtU => l_iv.1 > r_iv.0,
            CmpOp::GeU => l_iv.1 >= r_iv.0,
            CmpOp::Eq => l_iv.0 <= r_iv.1 && r_iv.0 <= l_iv.1,
            CmpOp::Ne => !(l_iv.0 == l_iv.1 && r_iv.0 == r_iv.1 && l_iv.0 == r_iv.0),
            _ => true,
        };
        if !feasible {
            state.live = false;
        }
    }
}

fn iv_of(v: &AbsVal) -> (u64, u64) {
    (v.lo, v.hi)
}

/// The allowed unsigned regions (at most 2, ordered, disjoint) for a
/// value satisfying `value op other`. `None` means no information; an
/// empty vector means the constraint is infeasible.
fn constraint_regions(op: CmpOp, other: (u64, u64)) -> Option<Vec<(u64, u64)>> {
    const NONNEG: u64 = 0x7FFF_FFFF;
    const NEG_LO: u64 = 0x8000_0000;
    Some(match op {
        CmpOp::LtU => {
            if other.1 == 0 {
                vec![]
            } else {
                vec![(0, other.1 - 1)]
            }
        }
        CmpOp::LeU => vec![(0, other.1)],
        CmpOp::GtU => {
            if other.0 == U32_MAX {
                vec![]
            } else {
                vec![(other.0 + 1, U32_MAX)]
            }
        }
        CmpOp::GeU => vec![(other.0, U32_MAX)],
        CmpOp::Eq => vec![(other.0, other.1)],
        CmpOp::Ne => {
            if other.0 == other.1 {
                let c = other.0;
                let mut v = Vec::new();
                if c > 0 {
                    v.push((0, c - 1));
                }
                if c < U32_MAX {
                    v.push((c + 1, U32_MAX));
                }
                v
            } else {
                return None;
            }
        }
        // Signed comparisons against a wholly non-negative other side:
        // `<s`/`<=s` admit the negative (high unsigned) half, `>s`/`>=s`
        // confine the value to the non-negative half.
        CmpOp::LtS if other.1 <= NONNEG => {
            let mut v = Vec::new();
            if other.1 > 0 {
                v.push((0, other.1 - 1));
            }
            v.push((NEG_LO, U32_MAX));
            v
        }
        CmpOp::LeS if other.1 <= NONNEG => vec![(0, other.1), (NEG_LO, U32_MAX)],
        CmpOp::GtS if other.1 <= NONNEG => {
            if other.0 == NONNEG {
                vec![]
            } else {
                vec![(other.0 + 1, NONNEG)]
            }
        }
        CmpOp::GeS if other.1 <= NONNEG => vec![(other.0, NONNEG)],
        _ => return None,
    })
}

fn apply_constraint(state: &mut State, l: u32, op: CmpOp, other: (u64, u64)) {
    let Some(regions) = constraint_regions(op, other) else {
        return;
    };
    if regions.is_empty() {
        state.live = false;
        return;
    }
    let v = &mut state.locals[l as usize];
    let parts = v.parts();
    let mut pieces: Vec<(u64, u64)> = Vec::new();
    for &(plo, phi) in &parts {
        for &(rlo, rhi) in &regions {
            let lo = plo.max(rlo);
            let hi = phi.min(rhi);
            if lo <= hi {
                pieces.push((lo, hi));
            }
        }
    }
    if pieces.is_empty() {
        state.live = false;
        return;
    }
    v.lo = pieces[0].0;
    v.hi = pieces[pieces.len() - 1].1;
    v.split = if pieces.len() == 1 {
        None
    } else {
        // 3+ pieces collapse to (first, hull of the rest): a sound
        // superset that keeps the leading gap.
        Some((pieces[0], (pieces[1].0, pieces[pieces.len() - 1].1)))
    };
}

// ──────────────────────────────────── tests ──────────────────────────────

#[cfg(test)]
mod tests {
    use super::*;
    use lb_wasm::instr::MemArg;
    use lb_wasm::module::Function;
    use lb_wasm::types::{FuncType, Limits, MemoryType};
    use lb_wasm::validate::validate;

    /// Build a one-function module with `pages` of memory.
    fn mk(
        params: &[ValType],
        locals: &[ValType],
        pages: u32,
        body: Vec<Instr>,
    ) -> (Module, ModuleMeta) {
        let mut m = Module::new();
        m.types.push(FuncType {
            params: params.to_vec(),
            results: vec![],
        });
        m.memory = Some(MemoryType {
            limits: Limits {
                min: pages,
                max: Some(pages),
            },
        });
        m.functions.push(Function {
            type_idx: 0,
            locals: locals.to_vec(),
            body,
            name: None,
        });
        let meta = validate(&m).expect("test module validates");
        (m, meta)
    }

    fn plan_of(m: &Module, meta: &ModuleMeta) -> FuncPlan {
        analyze_module(m, meta).funcs[0].clone()
    }

    const I32: ValType = ValType::I32;

    #[test]
    fn const_addresses_prove_in_bounds_and_oob() {
        use Instr::*;
        let (m, meta) = mk(
            &[],
            &[],
            1,
            vec![
                I32Const(0),
                I32Const(7),
                I32Store(MemArg {
                    align: 2,
                    offset: 100,
                }), // pc 2: in bounds
                I32Const(65533),
                I32Load(MemArg {
                    align: 2,
                    offset: 0,
                }), // pc 4: oob (65533+4 > 65536)
                Drop,
                End,
            ],
        );
        let p = plan_of(&m, &meta);
        assert_eq!(p.kind_at(2), CheckKind::ElideInBounds);
        assert_eq!(p.kind_at(4), CheckKind::StaticOob);
        assert_eq!(p.summary.accesses, 2);
        assert_eq!(p.summary.elided_in_bounds, 1);
        assert_eq!(p.summary.static_oob, 1);
    }

    #[test]
    fn dominated_check_elided_across_if_else_join() {
        use Instr::*;
        // Regression for the JIT peephole's conservatism: `checked` facts
        // used to be wiped at every label, so the post-join load was
        // re-checked. The analysis keeps facts that hold on all paths.
        let (m, meta) = mk(
            &[I32, I32], // p0: address (unbounded), p1: condition
            &[],
            1,
            vec![
                LocalGet(0),
                I32Const(1),
                I32Store(MemArg {
                    align: 0,
                    offset: 0,
                }), // pc 2: Emit, fact (p0,0) -> 4
                LocalGet(1),
                If(BlockType::Empty),
                LocalGet(0),
                I32Load(MemArg {
                    align: 0,
                    offset: 0,
                }), // pc 6: dominated
                Drop,
                Else,
                LocalGet(0),
                I32Load(MemArg {
                    align: 0,
                    offset: 0,
                }), // pc 10: dominated
                Drop,
                End,
                LocalGet(0),
                I32Load(MemArg {
                    align: 0,
                    offset: 0,
                }), // pc 14: dominated *after the join*
                Drop,
                End,
            ],
        );
        let p = plan_of(&m, &meta);
        assert_eq!(p.kind_at(2), CheckKind::Emit);
        assert_eq!(p.kind_at(6), CheckKind::ElideDominated);
        assert_eq!(p.kind_at(10), CheckKind::ElideDominated);
        assert_eq!(
            p.kind_at(14),
            CheckKind::ElideDominated,
            "fact must survive the join"
        );
        assert_eq!(p.summary.elided_dominated, 3);
    }

    #[test]
    fn reassignment_kills_dominating_fact() {
        use Instr::*;
        let (m, meta) = mk(
            &[I32],
            &[],
            1,
            vec![
                LocalGet(0),
                I32Const(1),
                I32Store(MemArg {
                    align: 0,
                    offset: 0,
                }),
                I32Const(90000), // can't re-prove: past memory, forces Emit path
                LocalSet(0),
                LocalGet(0),
                I32Load(MemArg {
                    align: 0,
                    offset: 0,
                }), // pc 6: NOT dominated
                Drop,
                End,
            ],
        );
        let p = plan_of(&m, &meta);
        assert_eq!(p.kind_at(2), CheckKind::Emit);
        // After the reassignment the old fact is gone; the new constant
        // address is statically out of bounds (90000+4 > 65536).
        assert_eq!(p.kind_at(6), CheckKind::StaticOob);
    }

    #[test]
    fn fact_only_on_one_path_does_not_survive_join() {
        use Instr::*;
        let (m, meta) = mk(
            &[I32, I32],
            &[],
            1,
            vec![
                LocalGet(1),
                If(BlockType::Empty),
                LocalGet(0),
                I32Const(1),
                I32Store(MemArg {
                    align: 0,
                    offset: 0,
                }), // fact only in then-arm
                End,
                LocalGet(0),
                I32Load(MemArg {
                    align: 0,
                    offset: 0,
                }), // pc 7: must Emit
                Drop,
                End,
            ],
        );
        let p = plan_of(&m, &meta);
        assert_eq!(p.kind_at(7), CheckKind::Emit);
    }

    #[test]
    fn wider_access_not_covered_by_narrower_check() {
        use Instr::*;
        let (m, meta) = mk(
            &[I32],
            &[],
            1,
            vec![
                LocalGet(0),
                I32Load8U(MemArg {
                    align: 0,
                    offset: 0,
                }), // pc 1: checks extent 1
                Drop,
                LocalGet(0),
                I32Load(MemArg {
                    align: 0,
                    offset: 0,
                }), // pc 4: extent 4 > 1 → Emit
                Drop,
                LocalGet(0),
                I32Load8U(MemArg {
                    align: 0,
                    offset: 3,
                }), // pc 7: 3+1 ≤ 4 → dominated
                Drop,
                End,
            ],
        );
        let p = plan_of(&m, &meta);
        assert_eq!(p.kind_at(1), CheckKind::Emit);
        assert_eq!(p.kind_at(4), CheckKind::Emit);
        assert_eq!(p.kind_at(7), CheckKind::ElideDominated);
    }

    #[test]
    fn shifted_provenance_tracks_through_shl() {
        use Instr::*;
        // A guard bounds p0 below 100_000 so `p0 << 3` provably does not
        // wrap (provenance survives the shift) yet the access is not
        // provably in bounds — the second identical address is dominated.
        let (m, meta) = mk(
            &[I32],
            &[],
            1,
            vec![
                Block(BlockType::Empty),
                LocalGet(0),
                I32Const(100_000),
                I32GeU,
                BrIf(0),
                LocalGet(0),
                I32Const(3),
                I32Shl,
                F64Load(MemArg {
                    align: 3,
                    offset: 0,
                }), // pc 8: checks (p0<<3) extent 8
                Drop,
                LocalGet(0),
                I32Const(3),
                I32Shl,
                F64Load(MemArg {
                    align: 3,
                    offset: 0,
                }), // pc 13: dominated
                Drop,
                End,
                End,
            ],
        );
        let p = plan_of(&m, &meta);
        assert_eq!(p.kind_at(8), CheckKind::Emit);
        assert_eq!(p.kind_at(13), CheckKind::ElideDominated);
    }

    #[test]
    fn counted_loop_proves_all_iteration_accesses_in_bounds() {
        use Instr::*;
        // for (i = 0; i < 1000; i++) mem[i<<3] — the DSL's loop shape:
        // pre-guard, loop, body, increment, back-edge guard. 1000*8 = 8000
        // bytes < 1 page, so every access is provably in bounds.
        let n = 1000;
        let (m, meta) = mk(
            &[],
            &[I32],
            1,
            vec![
                Block(BlockType::Empty),
                LocalGet(0),
                I32Const(n),
                I32GeS,
                BrIf(0),
                Loop(BlockType::Empty),
                LocalGet(0),
                I32Const(3),
                I32Shl,
                I32Const(7),
                I32Store(MemArg {
                    align: 2,
                    offset: 0,
                }), // pc 10: in bounds
                LocalGet(0),
                I32Const(1),
                I32Add,
                LocalTee(0),
                I32Const(n),
                I32LtS,
                BrIf(0),
                End,
                End,
                End,
            ],
        );
        let p = plan_of(&m, &meta);
        assert_eq!(
            p.kind_at(10),
            CheckKind::ElideInBounds,
            "loop induction variable must be bounded by the back-edge guard"
        );
        assert_eq!(p.summary.accesses, 1);
        // i ∈ [0, 999] → max EA = 999*8 + 4 + 0 = 7996.
        assert_eq!(p.summary.check_free_min_bytes, Some(7996));
        assert_eq!(p.summary.max_proven_ea, Some(7996));
    }

    #[test]
    fn loop_with_growing_address_stays_sound() {
        use Instr::*;
        // i starts at 0 and doubles+1 each iteration with no guard: the
        // analysis must NOT claim in-bounds for mem[i].
        let (m, meta) = mk(
            &[I32],
            &[I32],
            1,
            vec![
                Loop(BlockType::Empty),
                LocalGet(1),
                I32Load(MemArg {
                    align: 2,
                    offset: 0,
                }), // pc 2
                Drop,
                LocalGet(1),
                I32Const(1),
                I32Shl,
                I32Const(1),
                I32Add,
                LocalSet(1),
                LocalGet(0),
                BrIf(0),
                End,
                End,
            ],
        );
        let p = plan_of(&m, &meta);
        assert_eq!(p.kind_at(2), CheckKind::Emit);
        assert_eq!(p.summary.check_free_min_bytes, None);
    }

    #[test]
    fn masked_address_proves_in_bounds() {
        use Instr::*;
        let (m, meta) = mk(
            &[I32],
            &[],
            1,
            vec![
                LocalGet(0),
                I32Const(0x3FF8),
                I32And,
                I32Load(MemArg {
                    align: 2,
                    offset: 0,
                }), // pc 3: ≤ 0x3FF8+4 < 65536
                Drop,
                End,
            ],
        );
        let p = plan_of(&m, &meta);
        assert_eq!(p.kind_at(3), CheckKind::ElideInBounds);
    }

    #[test]
    fn offset_overflow_is_static_oob() {
        use Instr::*;
        let (m, meta) = mk(
            &[I32],
            &[],
            1,
            vec![
                LocalGet(0),
                I32Load(MemArg {
                    align: 2,
                    offset: u32::MAX - 2,
                }), // pc 1
                Drop,
                End,
            ],
        );
        let p = plan_of(&m, &meta);
        // Even addr=0 gives EA ≥ 2^32-3+4 > 4 GiB > any wasm memory.
        assert_eq!(p.kind_at(1), CheckKind::StaticOob);
    }

    #[test]
    fn nested_loops_record_each_access_once() {
        use Instr::*;
        // for i in 0..10 { for j in 0..10 { store(i*10+j)*4 } }
        let (m, meta) = mk(
            &[],
            &[I32, I32],
            1,
            vec![
                Block(BlockType::Empty),
                LocalGet(0),
                I32Const(10),
                I32GeS,
                BrIf(0),
                Loop(BlockType::Empty),
                I32Const(0),
                LocalSet(1),
                Block(BlockType::Empty),
                LocalGet(1),
                I32Const(10),
                I32GeS,
                BrIf(0),
                Loop(BlockType::Empty),
                LocalGet(0),
                I32Const(10),
                I32Mul,
                LocalGet(1),
                I32Add,
                I32Const(2),
                I32Shl,
                I32Const(5),
                I32Store(MemArg {
                    align: 2,
                    offset: 0,
                }), // pc 22
                LocalGet(1),
                I32Const(1),
                I32Add,
                LocalTee(1),
                I32Const(10),
                I32LtS,
                BrIf(0),
                End,
                End,
                LocalGet(0),
                I32Const(1),
                I32Add,
                LocalTee(0),
                I32Const(10),
                I32LtS,
                BrIf(0),
                End,
                End,
                End,
            ],
        );
        let p = plan_of(&m, &meta);
        assert_eq!(p.summary.accesses, 1, "one static access site");
        assert_eq!(p.kind_at(22), CheckKind::ElideInBounds);
        // max EA = (9*10+9)*4 + 4 = 400.
        assert_eq!(p.summary.check_free_min_bytes, Some(400));
    }

    #[test]
    fn br_table_paths_merge_conservatively() {
        use Instr::*;
        let (m, meta) = mk(
            &[I32, I32],
            &[],
            1,
            vec![
                Block(BlockType::Empty),
                Block(BlockType::Empty),
                LocalGet(1),
                BrTable(Box::new(lb_wasm::instr::BrTable {
                    targets: vec![0],
                    default: 1,
                })),
                End,
                LocalGet(0),
                I32Const(1),
                I32Store(MemArg {
                    align: 0,
                    offset: 0,
                }), // only on one path
                End,
                LocalGet(0),
                I32Load(MemArg {
                    align: 0,
                    offset: 0,
                }), // pc 10: must Emit
                Drop,
                End,
            ],
        );
        let p = plan_of(&m, &meta);
        assert_eq!(p.kind_at(10), CheckKind::Emit);
    }

    /// The canonical unsigned counted loop with a ⊤ bound: `for i in
    /// 0..p0` store at `(i<<2)+64`.
    fn dyn_loop_body() -> Vec<Instr> {
        vec![
            Instr::I32Const(0),
            Instr::LocalSet(1),
            Instr::LocalGet(0),
            Instr::LocalSet(2),
            Instr::Block(BlockType::Empty),
            Instr::LocalGet(1),
            Instr::LocalGet(2),
            Instr::I32GeU,
            Instr::BrIf(0),
            Instr::Loop(BlockType::Empty),
            Instr::LocalGet(1),
            Instr::I32Const(2),
            Instr::I32Shl,
            Instr::LocalGet(1),
            Instr::I32Store(MemArg::offset(64)),
            Instr::LocalGet(1),
            Instr::I32Const(1),
            Instr::I32Add,
            Instr::LocalTee(1),
            Instr::LocalGet(2),
            Instr::I32LtU,
            Instr::BrIf(0),
            Instr::End,
            Instr::End,
            Instr::End,
        ]
    }

    #[test]
    fn unsigned_dynamic_bound_loop_gets_hoisted_guard() {
        let (m, meta) = mk(&[I32], &[I32, I32], 1, dyn_loop_body());
        let plan = plan_of(&m, &meta);
        assert_eq!(plan.summary.elided_hoisted, 1);
        assert_eq!(plan.summary.emitted, 0);
        let h = (0..m.functions[0].body.len() as u32)
            .find_map(|pc| plan.hoist_at(pc))
            .expect("loop is versioned");
        assert_eq!(h.guards.len(), 1);
        let g = h.guards[0];
        assert_eq!(g.bound_local, 2, "bound is the loop-invariant end local");
        assert!(g.strict, "backedge compares `i <u end`");
        assert_eq!(g.shift, 2);
        assert_eq!(g.addend, 68, "worst access is `(end-1)<<2 + 64 + 4`");
    }

    #[test]
    fn signed_compare_on_top_bound_is_not_hoisted() {
        // `i <s end` proves nothing about the unsigned index when `end`
        // is ⊤ (a negative bound admits huge unsigned indices), so the
        // loop must keep its per-access check rather than gain a guard.
        let mut body = dyn_loop_body();
        for instr in &mut body {
            match instr {
                Instr::I32GeU => *instr = Instr::I32GeS,
                Instr::I32LtU => *instr = Instr::I32LtS,
                _ => {}
            }
        }
        let (m, meta) = mk(&[I32], &[I32, I32], 1, body);
        let plan = plan_of(&m, &meta);
        assert_eq!(plan.summary.elided_hoisted, 0);
        assert_eq!(plan.summary.emitted, 1);
    }

    #[test]
    fn hoisting_can_be_disabled_by_config() {
        let (m, meta) = mk(&[I32], &[I32, I32], 1, dyn_loop_body());
        let cfg = AnalysisConfig {
            interprocedural: true,
            hoist: false,
        };
        let plan = &analyze_module_with(&m, &meta, &cfg).funcs[0];
        assert_eq!(plan.summary.elided_hoisted, 0);
        assert_eq!(plan.summary.emitted, 1);
        assert!((0..m.functions[0].body.len() as u32).all(|pc| plan.hoist_at(pc).is_none()));
    }

    #[test]
    fn descending_loop_interval_split_proves_accesses() {
        // `for i in (0..100).rev()` store at `(i<<2)`: the descending
        // update wraps through -1 on exit, so the index interval only
        // stays useful if the analysis splits it at the wrap.
        let body = vec![
            Instr::I32Const(99),
            Instr::LocalSet(0),
            Instr::Block(BlockType::Empty),
            Instr::Loop(BlockType::Empty),
            Instr::LocalGet(0),
            Instr::I32Const(2),
            Instr::I32Shl,
            Instr::LocalGet(0),
            Instr::I32Store(MemArg::offset(0)),
            Instr::LocalGet(0),
            Instr::I32Const(1),
            Instr::I32Sub,
            Instr::LocalTee(0),
            Instr::I32Const(0),
            Instr::I32GeS,
            Instr::BrIf(0),
            Instr::End,
            Instr::End,
            Instr::End,
        ];
        let (m, meta) = mk(&[], &[I32], 1, body);
        let plan = plan_of(&m, &meta);
        assert_eq!(plan.summary.elided_in_bounds, 1, "{:?}", plan.summary);
        assert_eq!(plan.summary.emitted, 0);
    }

    /// Two-function module: exported `go()` + internal helper, for the
    /// interprocedural tests. Returns the plans for (go, helper).
    fn two_func_plans(
        go_body: Vec<Instr>,
        go_locals: &[ValType],
        helper_ty: FuncType,
        helper_body: Vec<Instr>,
    ) -> (FuncPlan, FuncPlan) {
        let mut m = Module::new();
        m.types.push(FuncType {
            params: vec![],
            results: vec![],
        });
        m.types.push(helper_ty);
        m.memory = Some(MemoryType {
            limits: Limits {
                min: 1,
                max: Some(1),
            },
        });
        m.functions.push(Function {
            type_idx: 0,
            locals: go_locals.to_vec(),
            body: go_body,
            name: Some("go".into()),
        });
        m.functions.push(Function {
            type_idx: 1,
            locals: vec![],
            body: helper_body,
            name: None,
        });
        m.exports.push(lb_wasm::module::Export {
            name: "go".into(),
            kind: lb_wasm::module::ExportKind::Func(0),
        });
        let meta = validate(&m).expect("test module validates");
        let plan = analyze_module(&m, &meta);
        (plan.funcs[0].clone(), plan.funcs[1].clone())
    }

    #[test]
    fn callee_return_interval_narrows_caller_load() {
        // helper() = 100; go() loads at helper()<<2: in bounds only
        // because the return interval [100,100] propagates to the call
        // result.
        let go = vec![
            Instr::Call(1),
            Instr::I32Const(2),
            Instr::I32Shl,
            Instr::I32Load(MemArg::offset(0)),
            Instr::Drop,
            Instr::End,
        ];
        let helper = vec![Instr::I32Const(100), Instr::End];
        let (go_plan, helper_plan) = two_func_plans(
            go,
            &[],
            FuncType {
                params: vec![],
                results: vec![I32],
            },
            helper,
        );
        assert_eq!(helper_plan.summary.ret_iv, Some((100, 100)));
        assert_eq!(go_plan.summary.elided_in_bounds, 1);
        assert_eq!(go_plan.summary.emitted, 0);
    }

    #[test]
    fn caller_argument_interval_narrows_callee_access() {
        // go() calls helper(8); helper stores at `p0 << 2`. The access is
        // provable only through the propagated argument interval [8,8] —
        // with ⊤ parameters it would need a check.
        let go = vec![Instr::I32Const(8), Instr::Call(1), Instr::End];
        let helper = vec![
            Instr::LocalGet(0),
            Instr::I32Const(2),
            Instr::I32Shl,
            Instr::I32Const(7),
            Instr::I32Store(MemArg::offset(0)),
            Instr::End,
        ];
        let (_, helper_plan) = two_func_plans(
            go,
            &[],
            FuncType {
                params: vec![I32],
                results: vec![],
            },
            helper,
        );
        assert_eq!(helper_plan.summary.elided_in_bounds, 1);
        assert_eq!(helper_plan.summary.emitted, 0);
    }

    #[test]
    fn dynamic_dominator_is_not_clamp_consumable() {
        // Two identical loads from a ⊤ parameter: the first emits its
        // check and records a *dynamic* fact, so the second is
        // `ElideDominated` — but NOT clamp-consumable. Under `trap` the
        // dominating guard faults on OOB, so control never reaches the
        // second load with a bad address; under `clamp` the dominator
        // only clamped its own effective address (the local still holds
        // the raw value), so the dominated access must clamp again.
        let body = vec![
            Instr::LocalGet(0),
            Instr::I32Load(MemArg::offset(0)),
            Instr::Drop,
            Instr::LocalGet(0),
            Instr::I32Load(MemArg::offset(0)),
            Instr::Drop,
            Instr::End,
        ];
        let (m, meta) = mk(&[I32], &[], 1, body);
        let plan = plan_of(&m, &meta);
        assert_eq!(plan.summary.elided_dominated, 1);
        let pc = m.functions[0]
            .body
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, Instr::I32Load(_)))
            .map(|(pc, _)| pc)
            .nth(1)
            .unwrap();
        assert_eq!(plan.kind_at(pc), CheckKind::ElideDominated);
        assert!(
            !plan.clamp_elidable(pc),
            "a dynamic dominating check must not lift the clamp"
        );
    }
}
