//! # lb-polybench — the PolyBench/C 4.2 kernels
//!
//! All 30 PolyBench/C benchmarks (the suite the paper evaluates in its
//! MEDIUM configuration), each authored once in the `lb-dsl` kernel DSL
//! (lowered to wasm) and once in plain Rust (the native baseline). The two
//! implementations perform identical IEEE-754 operations in identical
//! order, so their checksums agree exactly — the differential tests and
//! the harness's correctness gate rely on this.
//!
//! ```rust
//! use lb_polybench::{by_name, Dataset};
//! let bench = by_name("gemm", Dataset::Mini).unwrap();
//! assert_eq!(bench.suite, "polybench");
//! let checksum = bench.native_checksum();
//! assert!(checksum.is_finite());
//! ```

#![warn(missing_docs)]

pub mod common;
mod data;
mod linalg1;
mod linalg2;
mod medley;
mod solvers;
mod stencils;

pub use common::Dataset;
pub use lb_dsl::Benchmark;

/// Construct every PolyBench benchmark at the given dataset size.
pub fn all(d: Dataset) -> Vec<Benchmark> {
    NAMES
        .iter()
        .map(|n| by_name(n, d).expect("known name"))
        .collect()
}

/// The benchmark names, in PolyBench's customary order.
pub const NAMES: [&str; 30] = [
    "2mm",
    "3mm",
    "adi",
    "atax",
    "bicg",
    "cholesky",
    "correlation",
    "covariance",
    "deriche",
    "doitgen",
    "durbin",
    "fdtd-2d",
    "floyd-warshall",
    "gemm",
    "gemver",
    "gesummv",
    "gramschmidt",
    "heat-3d",
    "jacobi-1d",
    "jacobi-2d",
    "lu",
    "ludcmp",
    "mvt",
    "nussinov",
    "seidel-2d",
    "symm",
    "syr2k",
    "syrk",
    "trisolv",
    "trmm",
];

/// Construct one benchmark by name.
pub fn by_name(name: &str, d: Dataset) -> Option<Benchmark> {
    Some(match name {
        "gemm" => linalg1::gemm(d),
        "2mm" => linalg1::two_mm(d),
        "3mm" => linalg1::three_mm(d),
        "mvt" => linalg1::mvt(d),
        "atax" => linalg1::atax(d),
        "bicg" => linalg1::bicg(d),
        "gesummv" => linalg1::gesummv(d),
        "gemver" => linalg1::gemver(d),
        "doitgen" => linalg1::doitgen(d),
        "symm" => linalg2::symm(d),
        "syrk" => linalg2::syrk(d),
        "syr2k" => linalg2::syr2k(d),
        "trmm" => linalg2::trmm(d),
        "trisolv" => linalg2::trisolv(d),
        "cholesky" => solvers::cholesky(d),
        "durbin" => solvers::durbin(d),
        "gramschmidt" => solvers::gramschmidt(d),
        "lu" => solvers::lu(d),
        "ludcmp" => solvers::ludcmp(d),
        "correlation" => data::correlation(d),
        "covariance" => data::covariance(d),
        "jacobi-1d" => stencils::jacobi_1d(d),
        "jacobi-2d" => stencils::jacobi_2d(d),
        "fdtd-2d" => stencils::fdtd_2d(d),
        "heat-3d" => stencils::heat_3d(d),
        "seidel-2d" => stencils::seidel_2d(d),
        "adi" => stencils::adi(d),
        "deriche" => medley::deriche(d),
        "floyd-warshall" => medley::floyd_warshall(d),
        "nussinov" => medley::nussinov(d),
        _ => return None,
    })
}
