//! Stencil PolyBench kernels: jacobi-1d, jacobi-2d, fdtd-2d, heat-3d,
//! seidel-2d, adi.

use crate::common::{
    assemble, checksum_fn, checksum_slices, init_val, init_val_expr, ClosureKernel, Dataset,
};
use lb_dsl::expr::{f64 as cf, i32 as ci};
use lb_dsl::{Benchmark, DslFunc, Layout};

/// `jacobi-1d`: 3-point 1-D Jacobi, two arrays ping-ponged.
pub fn jacobi_1d(d: Dataset) -> Benchmark {
    let n = d.pick(30, 400, 1200) as i32;
    let tsteps = d.pick(4, 40, 100) as i32;

    let mut l = Layout::new();
    let a = l.array_f64(n as u32);
    let b = l.array_f64(n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        fi.for_i32(i, ci(0), ci(n), |f| {
            a.set(f, i.get(), (i.get() + ci(2)).to_f64().fdiv(cf(n as f64)));
            b.set(f, i.get(), (i.get() + ci(3)).to_f64().fdiv(cf(n as f64)));
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let t = fk.local_i32();
        let i = fk.local_i32();
        fk.for_i32(t, ci(0), ci(tsteps), |f| {
            f.for_i32(i, ci(1), ci(n - 1), |f| {
                b.set(
                    f,
                    i.get(),
                    cf(0.33333) * (a.at(i.get() - ci(1)) + a.at(i.get()) + a.at(i.get() + ci(1))),
                );
            });
            f.for_i32(i, ci(1), ci(n - 1), |f| {
                a.set(
                    f,
                    i.get(),
                    cf(0.33333) * (b.at(i.get() - ci(1)) + b.at(i.get()) + b.at(i.get() + ci(1))),
                );
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[a]));

    struct St {
        n: usize,
        t: usize,
        a: Vec<f64>,
        b: Vec<f64>,
    }
    let (n_, t_) = (n as usize, tsteps as usize);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                n: n_,
                t: t_,
                a: vec![0.0; n_],
                b: vec![0.0; n_],
            },
            init: |s: &mut St| {
                for i in 0..s.n {
                    s.a[i] = (i as f64 + 2.0) / s.n as f64;
                    s.b[i] = (i as f64 + 3.0) / s.n as f64;
                }
            },
            kernel: |s: &mut St| {
                for _ in 0..s.t {
                    for i in 1..s.n - 1 {
                        s.b[i] = 0.33333 * (s.a[i - 1] + s.a[i] + s.a[i + 1]);
                    }
                    for i in 1..s.n - 1 {
                        s.a[i] = 0.33333 * (s.b[i - 1] + s.b[i] + s.b[i + 1]);
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.a]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("jacobi-1d", "polybench", module, native)
}

/// `jacobi-2d`: 5-point 2-D Jacobi.
pub fn jacobi_2d(d: Dataset) -> Benchmark {
    let n = d.pick(12, 90, 250) as i32;
    let tsteps = d.pick(4, 20, 100) as i32;

    let mut l = Layout::new();
    let a = l.array2_f64(n as u32, n as u32);
    let b = l.array2_f64(n as u32, n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), ci(n), |f| {
                a.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 2, j.get(), 2, 100),
                );
                b.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 3, j.get(), 3, 100),
                );
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let t = fk.local_i32();
        let i = fk.local_i32();
        let j = fk.local_i32();
        fk.for_i32(t, ci(0), ci(tsteps), |f| {
            f.for_i32(i, ci(1), ci(n - 1), |f| {
                f.for_i32(j, ci(1), ci(n - 1), |f| {
                    b.set(
                        f,
                        i.get(),
                        j.get(),
                        cf(0.2)
                            * (a.at(i.get(), j.get())
                                + a.at(i.get(), j.get() - ci(1))
                                + a.at(i.get(), j.get() + ci(1))
                                + a.at(i.get() + ci(1), j.get())
                                + a.at(i.get() - ci(1), j.get())),
                    );
                });
            });
            f.for_i32(i, ci(1), ci(n - 1), |f| {
                f.for_i32(j, ci(1), ci(n - 1), |f| {
                    a.set(
                        f,
                        i.get(),
                        j.get(),
                        cf(0.2)
                            * (b.at(i.get(), j.get())
                                + b.at(i.get(), j.get() - ci(1))
                                + b.at(i.get(), j.get() + ci(1))
                                + b.at(i.get() + ci(1), j.get())
                                + b.at(i.get() - ci(1), j.get())),
                    );
                });
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[a.flat()]));

    struct St {
        n: usize,
        t: usize,
        a: Vec<f64>,
        b: Vec<f64>,
    }
    let (n_, t_) = (n as usize, tsteps as usize);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                n: n_,
                t: t_,
                a: vec![0.0; n_ * n_],
                b: vec![0.0; n_ * n_],
            },
            init: |s: &mut St| {
                for i in 0..s.n {
                    for j in 0..s.n {
                        s.a[i * s.n + j] = init_val(i as i64, 2, j as i64, 2, 100);
                        s.b[i * s.n + j] = init_val(i as i64, 3, j as i64, 3, 100);
                    }
                }
            },
            kernel: |s: &mut St| {
                let n = s.n;
                for _ in 0..s.t {
                    for i in 1..n - 1 {
                        for j in 1..n - 1 {
                            s.b[i * n + j] = 0.2
                                * (s.a[i * n + j]
                                    + s.a[i * n + j - 1]
                                    + s.a[i * n + j + 1]
                                    + s.a[(i + 1) * n + j]
                                    + s.a[(i - 1) * n + j]);
                        }
                    }
                    for i in 1..n - 1 {
                        for j in 1..n - 1 {
                            s.a[i * n + j] = 0.2
                                * (s.b[i * n + j]
                                    + s.b[i * n + j - 1]
                                    + s.b[i * n + j + 1]
                                    + s.b[(i + 1) * n + j]
                                    + s.b[(i - 1) * n + j]);
                        }
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.a]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("jacobi-2d", "polybench", module, native)
}

/// `fdtd-2d`: 2-D finite-difference time-domain kernel.
pub fn fdtd_2d(d: Dataset) -> Benchmark {
    let tmax = d.pick(4, 20, 100) as i32;
    let nx = d.pick(10, 60, 200) as i32;
    let ny = d.pick(12, 80, 240) as i32;

    let mut l = Layout::new();
    let ex = l.array2_f64(nx as u32, ny as u32);
    let ey = l.array2_f64(nx as u32, ny as u32);
    let hz = l.array2_f64(nx as u32, ny as u32);
    let fict = l.array_f64(tmax as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(tmax), |f| {
            fict.set(f, i.get(), i.get().to_f64());
        });
        fi.for_i32(i, ci(0), ci(nx), |f| {
            f.for_i32(j, ci(0), ci(ny), |f| {
                ex.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 2, j.get(), 1, 100),
                );
                ey.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 3, j.get(), 2, 99),
                );
                hz.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 4, j.get(), 3, 98),
                );
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let t = fk.local_i32();
        let i = fk.local_i32();
        let j = fk.local_i32();
        fk.for_i32(t, ci(0), ci(tmax), |f| {
            f.for_i32(j, ci(0), ci(ny), |f| {
                ey.set(f, ci(0), j.get(), fict.at(t.get()));
            });
            f.for_i32(i, ci(1), ci(nx), |f| {
                f.for_i32(j, ci(0), ci(ny), |f| {
                    ey.set(
                        f,
                        i.get(),
                        j.get(),
                        ey.at(i.get(), j.get())
                            - cf(0.5) * (hz.at(i.get(), j.get()) - hz.at(i.get() - ci(1), j.get())),
                    );
                });
            });
            f.for_i32(i, ci(0), ci(nx), |f| {
                f.for_i32(j, ci(1), ci(ny), |f| {
                    ex.set(
                        f,
                        i.get(),
                        j.get(),
                        ex.at(i.get(), j.get())
                            - cf(0.5) * (hz.at(i.get(), j.get()) - hz.at(i.get(), j.get() - ci(1))),
                    );
                });
            });
            f.for_i32(i, ci(0), ci(nx - 1), |f| {
                f.for_i32(j, ci(0), ci(ny - 1), |f| {
                    hz.set(
                        f,
                        i.get(),
                        j.get(),
                        hz.at(i.get(), j.get())
                            - cf(0.7)
                                * (ex.at(i.get(), j.get() + ci(1)) - ex.at(i.get(), j.get())
                                    + ey.at(i.get() + ci(1), j.get())
                                    - ey.at(i.get(), j.get())),
                    );
                });
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[ex.flat(), ey.flat(), hz.flat()]));

    struct St {
        tmax: usize,
        nx: usize,
        ny: usize,
        ex: Vec<f64>,
        ey: Vec<f64>,
        hz: Vec<f64>,
        fict: Vec<f64>,
    }
    let (t_, nx_, ny_) = (tmax as usize, nx as usize, ny as usize);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                tmax: t_,
                nx: nx_,
                ny: ny_,
                ex: vec![0.0; nx_ * ny_],
                ey: vec![0.0; nx_ * ny_],
                hz: vec![0.0; nx_ * ny_],
                fict: vec![0.0; t_],
            },
            init: |s: &mut St| {
                for i in 0..s.tmax {
                    s.fict[i] = i as f64;
                }
                for i in 0..s.nx {
                    for j in 0..s.ny {
                        s.ex[i * s.ny + j] = init_val(i as i64, 2, j as i64, 1, 100);
                        s.ey[i * s.ny + j] = init_val(i as i64, 3, j as i64, 2, 99);
                        s.hz[i * s.ny + j] = init_val(i as i64, 4, j as i64, 3, 98);
                    }
                }
            },
            kernel: |s: &mut St| {
                let (nx, ny) = (s.nx, s.ny);
                for t in 0..s.tmax {
                    for j in 0..ny {
                        s.ey[j] = s.fict[t];
                    }
                    for i in 1..nx {
                        for j in 0..ny {
                            s.ey[i * ny + j] -= 0.5 * (s.hz[i * ny + j] - s.hz[(i - 1) * ny + j]);
                        }
                    }
                    for i in 0..nx {
                        for j in 1..ny {
                            s.ex[i * ny + j] -= 0.5 * (s.hz[i * ny + j] - s.hz[i * ny + j - 1]);
                        }
                    }
                    for i in 0..nx - 1 {
                        for j in 0..ny - 1 {
                            s.hz[i * ny + j] -= 0.7
                                * (s.ex[i * ny + j + 1] - s.ex[i * ny + j]
                                    + s.ey[(i + 1) * ny + j]
                                    - s.ey[i * ny + j]);
                        }
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.ex, &s.ey, &s.hz]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("fdtd-2d", "polybench", module, native)
}

/// `heat-3d`: 7-point 3-D heat equation stencil.
pub fn heat_3d(d: Dataset) -> Benchmark {
    let n = d.pick(8, 20, 40) as i32;
    let tsteps = d.pick(4, 20, 60) as i32;

    let mut l = Layout::new();
    let a = l.array3_f64(n as u32, n as u32, n as u32);
    let b = l.array3_f64(n as u32, n as u32, n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        let k = fi.local_i32();
        fi.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), ci(n), |f| {
                f.for_i32(k, ci(0), ci(n), |f| {
                    let v = init_val_expr(i.get().mul(ci(n)).add(j.get()), 3, k.get(), 1, 100);
                    a.set(f, i.get(), j.get(), k.get(), v.clone());
                    b.set(f, i.get(), j.get(), k.get(), v);
                });
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let t = fk.local_i32();
        let i = fk.local_i32();
        let j = fk.local_i32();
        let k = fk.local_i32();
        let one = ci(1);
        let _ = one;
        fk.for_i32(t, ci(0), ci(tsteps), |f| {
            for swap in 0..2 {
                let (src, dst) = if swap == 0 { (a, b) } else { (b, a) };
                f.for_i32(i, ci(1), ci(n - 1), |f| {
                    f.for_i32(j, ci(1), ci(n - 1), |f| {
                        f.for_i32(k, ci(1), ci(n - 1), |f| {
                            let c = src.at(i.get(), j.get(), k.get());
                            let term_i = cf(0.125)
                                * (src.at(i.get() + ci(1), j.get(), k.get()) - cf(2.0) * c.clone()
                                    + src.at(i.get() - ci(1), j.get(), k.get()));
                            let term_j = cf(0.125)
                                * (src.at(i.get(), j.get() + ci(1), k.get()) - cf(2.0) * c.clone()
                                    + src.at(i.get(), j.get() - ci(1), k.get()));
                            let term_k = cf(0.125)
                                * (src.at(i.get(), j.get(), k.get() + ci(1)) - cf(2.0) * c.clone()
                                    + src.at(i.get(), j.get(), k.get() - ci(1)));
                            dst.set(f, i.get(), j.get(), k.get(), term_i + term_j + term_k + c);
                        });
                    });
                });
            }
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[a.flat()]));

    struct St {
        n: usize,
        t: usize,
        a: Vec<f64>,
        b: Vec<f64>,
    }
    let (n_, t_) = (n as usize, tsteps as usize);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                n: n_,
                t: t_,
                a: vec![0.0; n_ * n_ * n_],
                b: vec![0.0; n_ * n_ * n_],
            },
            init: |s: &mut St| {
                let n = s.n;
                for i in 0..n {
                    for j in 0..n {
                        for k in 0..n {
                            let v = init_val((i * n + j) as i64, 3, k as i64, 1, 100);
                            s.a[(i * n + j) * n + k] = v;
                            s.b[(i * n + j) * n + k] = v;
                        }
                    }
                }
            },
            kernel: |s: &mut St| {
                fn step(src: &[f64], dst: &mut [f64], n: usize) {
                    let idx = |i: usize, j: usize, k: usize| (i * n + j) * n + k;
                    for i in 1..n - 1 {
                        for j in 1..n - 1 {
                            for k in 1..n - 1 {
                                let c = src[idx(i, j, k)];
                                let ti = 0.125
                                    * (src[idx(i + 1, j, k)] - 2.0 * c + src[idx(i - 1, j, k)]);
                                let tj = 0.125
                                    * (src[idx(i, j + 1, k)] - 2.0 * c + src[idx(i, j - 1, k)]);
                                let tk = 0.125
                                    * (src[idx(i, j, k + 1)] - 2.0 * c + src[idx(i, j, k - 1)]);
                                dst[idx(i, j, k)] = ti + tj + tk + c;
                            }
                        }
                    }
                }
                for _ in 0..s.t {
                    step(&s.a, &mut s.b, s.n);
                    step(&s.b, &mut s.a, s.n);
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.a]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("heat-3d", "polybench", module, native)
}

/// `seidel-2d`: Gauss-Seidel 9-point in-place smoothing.
pub fn seidel_2d(d: Dataset) -> Benchmark {
    let n = d.pick(12, 80, 250) as i32;
    let tsteps = d.pick(2, 10, 40) as i32;

    let mut l = Layout::new();
    let a = l.array2_f64(n as u32, n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), ci(n), |f| {
                a.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 2, j.get(), 2, 100),
                );
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let t = fk.local_i32();
        let i = fk.local_i32();
        let j = fk.local_i32();
        fk.for_i32(t, ci(0), ci(tsteps), |f| {
            f.for_i32(i, ci(1), ci(n - 1), |f| {
                f.for_i32(j, ci(1), ci(n - 1), |f| {
                    a.set(
                        f,
                        i.get(),
                        j.get(),
                        (a.at(i.get() - ci(1), j.get() - ci(1))
                            + a.at(i.get() - ci(1), j.get())
                            + a.at(i.get() - ci(1), j.get() + ci(1))
                            + a.at(i.get(), j.get() - ci(1))
                            + a.at(i.get(), j.get())
                            + a.at(i.get(), j.get() + ci(1))
                            + a.at(i.get() + ci(1), j.get() - ci(1))
                            + a.at(i.get() + ci(1), j.get())
                            + a.at(i.get() + ci(1), j.get() + ci(1)))
                        .fdiv(cf(9.0)),
                    );
                });
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[a.flat()]));

    struct St {
        n: usize,
        t: usize,
        a: Vec<f64>,
    }
    let (n_, t_) = (n as usize, tsteps as usize);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                n: n_,
                t: t_,
                a: vec![0.0; n_ * n_],
            },
            init: |s: &mut St| {
                for i in 0..s.n {
                    for j in 0..s.n {
                        s.a[i * s.n + j] = init_val(i as i64, 2, j as i64, 2, 100);
                    }
                }
            },
            kernel: |s: &mut St| {
                let n = s.n;
                for _ in 0..s.t {
                    for i in 1..n - 1 {
                        for j in 1..n - 1 {
                            s.a[i * n + j] = (s.a[(i - 1) * n + j - 1]
                                + s.a[(i - 1) * n + j]
                                + s.a[(i - 1) * n + j + 1]
                                + s.a[i * n + j - 1]
                                + s.a[i * n + j]
                                + s.a[i * n + j + 1]
                                + s.a[(i + 1) * n + j - 1]
                                + s.a[(i + 1) * n + j]
                                + s.a[(i + 1) * n + j + 1])
                                / 9.0;
                        }
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.a]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("seidel-2d", "polybench", module, native)
}

/// `adi`: alternating-direction-implicit 2-D heat solver.
pub fn adi(d: Dataset) -> Benchmark {
    let n = d.pick(10, 60, 200) as i32;
    let tsteps = d.pick(2, 10, 50) as i32;

    let dx = 1.0 / n as f64;
    let dy = 1.0 / n as f64;
    let dt = 1.0 / tsteps as f64;
    let b1 = 2.0;
    let b2 = 1.0;
    let mul1 = b1 * dt / (dx * dx);
    let mul2 = b2 * dt / (dy * dy);
    let ca = -mul1 / 2.0;
    let cb = 1.0 + mul1;
    let cc = ca;
    let cd = -mul2 / 2.0;
    let ce = 1.0 + mul2;
    let cf_ = cd;

    let mut l = Layout::new();
    let u = l.array2_f64(n as u32, n as u32);
    let v = l.array2_f64(n as u32, n as u32);
    let p = l.array2_f64(n as u32, n as u32);
    let q = l.array2_f64(n as u32, n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), ci(n), |f| {
                u.set(
                    f,
                    i.get(),
                    j.get(),
                    (i.get() + ci(n) - j.get()).to_f64().fdiv(cf(n as f64)),
                );
                v.set(f, i.get(), j.get(), cf(0.0));
                p.set(f, i.get(), j.get(), cf(0.0));
                q.set(f, i.get(), j.get(), cf(0.0));
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let t = fk.local_i32();
        let i = fk.local_i32();
        let j = fk.local_i32();
        fk.for_i32(t, ci(1), ci(tsteps + 1), |f| {
            // Column sweep.
            f.for_i32(i, ci(1), ci(n - 1), |f| {
                v.set(f, ci(0), i.get(), cf(1.0));
                p.set(f, i.get(), ci(0), cf(0.0));
                q.set(f, i.get(), ci(0), v.at(ci(0), i.get()));
                f.for_i32(j, ci(1), ci(n - 1), |f| {
                    let denom = cf(ca) * p.at(i.get(), j.get() - ci(1)) + cf(cb);
                    p.set(f, i.get(), j.get(), (-cf(cc)).fdiv(denom.clone()));
                    q.set(
                        f,
                        i.get(),
                        j.get(),
                        (-cf(cd) * u.at(j.get(), i.get() - ci(1))
                            + (cf(1.0) + cf(2.0) * cf(cd)) * u.at(j.get(), i.get())
                            - cf(cf_) * u.at(j.get(), i.get() + ci(1))
                            - cf(ca) * q.at(i.get(), j.get() - ci(1)))
                        .fdiv(denom),
                    );
                });
                v.set(f, ci(n - 1), i.get(), cf(1.0));
                f.for_i32_down(j, ci(n - 1), ci(1), |f| {
                    v.set(
                        f,
                        j.get(),
                        i.get(),
                        p.at(i.get(), j.get()) * v.at(j.get() + ci(1), i.get())
                            + q.at(i.get(), j.get()),
                    );
                });
            });
            // Row sweep.
            f.for_i32(i, ci(1), ci(n - 1), |f| {
                u.set(f, i.get(), ci(0), cf(1.0));
                p.set(f, i.get(), ci(0), cf(0.0));
                q.set(f, i.get(), ci(0), u.at(i.get(), ci(0)));
                f.for_i32(j, ci(1), ci(n - 1), |f| {
                    let denom = cf(cd) * p.at(i.get(), j.get() - ci(1)) + cf(ce);
                    p.set(f, i.get(), j.get(), (-cf(cf_)).fdiv(denom.clone()));
                    q.set(
                        f,
                        i.get(),
                        j.get(),
                        (-cf(ca) * v.at(i.get() - ci(1), j.get())
                            + (cf(1.0) + cf(2.0) * cf(ca)) * v.at(i.get(), j.get())
                            - cf(cc) * v.at(i.get() + ci(1), j.get())
                            - cf(cd) * q.at(i.get(), j.get() - ci(1)))
                        .fdiv(denom),
                    );
                });
                u.set(f, i.get(), ci(n - 1), cf(1.0));
                f.for_i32_down(j, ci(n - 1), ci(1), |f| {
                    u.set(
                        f,
                        i.get(),
                        j.get(),
                        p.at(i.get(), j.get()) * u.at(i.get(), j.get() + ci(1))
                            + q.at(i.get(), j.get()),
                    );
                });
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[u.flat()]));

    struct St {
        n: usize,
        t: usize,
        c: [f64; 6],
        u: Vec<f64>,
        v: Vec<f64>,
        p: Vec<f64>,
        q: Vec<f64>,
    }
    let (n_, t_) = (n as usize, tsteps as usize);
    let consts = [ca, cb, cc, cd, ce, cf_];
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                n: n_,
                t: t_,
                c: consts,
                u: vec![0.0; n_ * n_],
                v: vec![0.0; n_ * n_],
                p: vec![0.0; n_ * n_],
                q: vec![0.0; n_ * n_],
            },
            init: |s: &mut St| {
                let n = s.n;
                for i in 0..n {
                    for j in 0..n {
                        s.u[i * n + j] = (i as i64 + n as i64 - j as i64) as f64 / n as f64;
                        s.v[i * n + j] = 0.0;
                        s.p[i * n + j] = 0.0;
                        s.q[i * n + j] = 0.0;
                    }
                }
            },
            kernel: |s: &mut St| {
                let n = s.n;
                let [ca, cb, cc, cd, ce, cf_] = s.c;
                for _ in 1..=s.t {
                    for i in 1..n - 1 {
                        s.v[i] = 1.0; // v[0][i]
                        s.p[i * n] = 0.0;
                        s.q[i * n] = s.v[i];
                        for j in 1..n - 1 {
                            let denom = ca * s.p[i * n + j - 1] + cb;
                            s.p[i * n + j] = -cc / denom;
                            s.q[i * n + j] = (-cd * s.u[j * n + i - 1]
                                + (1.0 + 2.0 * cd) * s.u[j * n + i]
                                - cf_ * s.u[j * n + i + 1]
                                - ca * s.q[i * n + j - 1])
                                / denom;
                        }
                        s.v[(n - 1) * n + i] = 1.0;
                        for j in (1..n - 1).rev() {
                            s.v[j * n + i] = s.p[i * n + j] * s.v[(j + 1) * n + i] + s.q[i * n + j];
                        }
                    }
                    for i in 1..n - 1 {
                        s.u[i * n] = 1.0;
                        s.p[i * n] = 0.0;
                        s.q[i * n] = s.u[i * n];
                        for j in 1..n - 1 {
                            let denom = cd * s.p[i * n + j - 1] + ce;
                            s.p[i * n + j] = -cf_ / denom;
                            s.q[i * n + j] = (-ca * s.v[(i - 1) * n + j]
                                + (1.0 + 2.0 * ca) * s.v[i * n + j]
                                - cc * s.v[(i + 1) * n + j]
                                - cd * s.q[i * n + j - 1])
                                / denom;
                        }
                        s.u[i * n + n - 1] = 1.0;
                        for j in (1..n - 1).rev() {
                            s.u[i * n + j] = s.p[i * n + j] * s.u[i * n + j + 1] + s.q[i * n + j];
                        }
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.u]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("adi", "polybench", module, native)
}
