//! Linear-algebra solver PolyBench kernels: cholesky, durbin, gramschmidt,
//! lu, ludcmp.
//!
//! Matrices are initialized diagonally dominant (diag = n, off-diag < 0.1)
//! so the factorizations are numerically stable without pivoting, mirroring
//! how PolyBench constructs positive-definite inputs.

use crate::common::{
    assemble, checksum_fn, checksum_slices, init_val, init_val_expr, ClosureKernel, Dataset,
};
use lb_dsl::expr::{f64 as cf, i32 as ci, Expr};
use lb_dsl::{Benchmark, DslFunc, Layout, Var};

/// Symmetric small off-diagonal value (depends on i+j and i·j only).
fn sym_off_expr(i: Expr, j: Expr) -> Expr {
    init_val_expr(i.clone() + j.clone(), 3, i.mul(j), 1, 97) * cf(0.1)
}

fn sym_off(i: i64, j: i64) -> f64 {
    init_val(i + j, 3, i * j, 1, 97) * 0.1
}

/// `cholesky`: in-place lower Cholesky factorization.
pub fn cholesky(d: Dataset) -> Benchmark {
    let n = d.pick(16, 120, 400) as i32;

    let mut l = Layout::new();
    let a = l.array2_f64(n as u32, n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), ci(n), |f| {
                a.set(f, i.get(), j.get(), sym_off_expr(i.get(), j.get()));
            });
            a.set(f, i.get(), i.get(), cf(n as f64));
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        let k = fk.local_i32();
        fk.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), i.get(), |f| {
                f.for_i32(k, ci(0), j.get(), |f| {
                    a.set(
                        f,
                        i.get(),
                        j.get(),
                        a.at(i.get(), j.get()) - a.at(i.get(), k.get()) * a.at(j.get(), k.get()),
                    );
                });
                a.set(
                    f,
                    i.get(),
                    j.get(),
                    a.at(i.get(), j.get()).fdiv(a.at(j.get(), j.get())),
                );
            });
            f.for_i32(k, ci(0), i.get(), |f| {
                a.set(
                    f,
                    i.get(),
                    i.get(),
                    a.at(i.get(), i.get()) - a.at(i.get(), k.get()) * a.at(i.get(), k.get()),
                );
            });
            a.set(f, i.get(), i.get(), a.at(i.get(), i.get()).sqrt());
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[a.flat()]));

    struct St {
        n: usize,
        a: Vec<f64>,
    }
    let n_ = n as usize;
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                n: n_,
                a: vec![0.0; n_ * n_],
            },
            init: |s: &mut St| {
                for i in 0..s.n {
                    for j in 0..s.n {
                        s.a[i * s.n + j] = sym_off(i as i64, j as i64);
                    }
                    s.a[i * s.n + i] = s.n as f64;
                }
            },
            kernel: |s: &mut St| {
                let n = s.n;
                for i in 0..n {
                    for j in 0..i {
                        for k in 0..j {
                            s.a[i * n + j] -= s.a[i * n + k] * s.a[j * n + k];
                        }
                        s.a[i * n + j] /= s.a[j * n + j];
                    }
                    for k in 0..i {
                        s.a[i * n + i] -= s.a[i * n + k] * s.a[i * n + k];
                    }
                    s.a[i * n + i] = s.a[i * n + i].sqrt();
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.a]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("cholesky", "polybench", module, native)
}

/// `durbin`: Levinson-Durbin recursion for Toeplitz systems.
pub fn durbin(d: Dataset) -> Benchmark {
    let n = d.pick(16, 120, 400) as i32;

    let mut l = Layout::new();
    let r = l.array_f64(n as u32);
    let y = l.array_f64(n as u32);
    let z = l.array_f64(n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        fi.for_i32(i, ci(0), ci(n), |f| {
            // r[i] = 1 / (i + 2) — a decaying, stable autocorrelation.
            r.set(f, i.get(), cf(1.0).fdiv((i.get() + ci(2)).to_f64()));
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let k: Var = fk.local_i32();
        let i = fk.local_i32();
        let alpha = fk.local_f64();
        let beta = fk.local_f64();
        let sum = fk.local_f64();

        fk.assign(alpha, -r.at(ci(0)));
        fk.assign(beta, cf(1.0));
        y.set(&mut fk, ci(0), -r.at(ci(0)));
        // A copy of the loop body per PolyBench's reference kernel.
        fk.for_i32(k, ci(1), ci(n), |f| {
            f.assign(beta, (cf(1.0) - alpha.get() * alpha.get()) * beta.get());
            f.assign(sum, cf(0.0));
            f.for_i32(i, ci(0), k.get(), |f| {
                f.assign(
                    sum,
                    sum.get() + r.at(k.get() - i.get() - ci(1)) * y.at(i.get()),
                );
            });
            f.assign(alpha, -(r.at(k.get()) + sum.get()).fdiv(beta.get()));
            f.for_i32(i, ci(0), k.get(), |f| {
                z.set(
                    f,
                    i.get(),
                    y.at(i.get()) + alpha.get() * y.at(k.get() - i.get() - ci(1)),
                );
            });
            f.for_i32(i, ci(0), k.get(), |f| {
                y.set(f, i.get(), z.at(i.get()));
            });
            y.set(f, k.get(), alpha.get());
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[y]));

    struct St {
        n: usize,
        r: Vec<f64>,
        y: Vec<f64>,
        z: Vec<f64>,
    }
    let n_ = n as usize;
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                n: n_,
                r: vec![0.0; n_],
                y: vec![0.0; n_],
                z: vec![0.0; n_],
            },
            init: |s: &mut St| {
                for i in 0..s.n {
                    s.r[i] = 1.0 / (i as f64 + 2.0);
                }
            },
            kernel: |s: &mut St| {
                let n = s.n;
                let mut alpha = -s.r[0];
                let mut beta = 1.0f64;
                s.y[0] = -s.r[0];
                for k in 1..n {
                    beta = (1.0 - alpha * alpha) * beta;
                    let mut sum = 0.0f64;
                    for i in 0..k {
                        sum += s.r[k - i - 1] * s.y[i];
                    }
                    alpha = -(s.r[k] + sum) / beta;
                    for i in 0..k {
                        s.z[i] = s.y[i] + alpha * s.y[k - i - 1];
                    }
                    for i in 0..k {
                        s.y[i] = s.z[i];
                    }
                    s.y[k] = alpha;
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.y]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("durbin", "polybench", module, native)
}

/// `gramschmidt`: modified Gram-Schmidt QR of a tall matrix.
pub fn gramschmidt(d: Dataset) -> Benchmark {
    let m = d.pick(12, 60, 200) as i32;
    let n = d.pick(8, 50, 240).min(d.pick(12, 60, 200)) as i32; // n ≤ m

    let mut l = Layout::new();
    let a = l.array2_f64(m as u32, n as u32);
    let r = l.array2_f64(n as u32, n as u32);
    let q = l.array2_f64(m as u32, n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(m), |f| {
            f.for_i32(j, ci(0), ci(n), |f| {
                // Small pseudo-random entries plus a diagonal boost keep the
                // columns independent.
                let boost = cf(1.0).select(cf(0.0), i.get().eq(j.get()));
                a.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 5, j.get(), 7, 89) + boost,
                );
                q.set(f, i.get(), j.get(), cf(0.0));
            });
        });
        fi.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), ci(n), |f| {
                r.set(f, i.get(), j.get(), cf(0.0));
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        let k = fk.local_i32();
        let nrm = fk.local_f64();
        fk.for_i32(k, ci(0), ci(n), |f| {
            f.assign(nrm, cf(0.0));
            f.for_i32(i, ci(0), ci(m), |f| {
                f.assign(
                    nrm,
                    nrm.get() + a.at(i.get(), k.get()) * a.at(i.get(), k.get()),
                );
            });
            r.set(f, k.get(), k.get(), nrm.get().sqrt());
            f.for_i32(i, ci(0), ci(m), |f| {
                q.set(
                    f,
                    i.get(),
                    k.get(),
                    a.at(i.get(), k.get()).fdiv(r.at(k.get(), k.get())),
                );
            });
            f.for_i32_step(j, k.get() + ci(1), ci(n), 1, |f| {
                r.set(f, k.get(), j.get(), cf(0.0));
                f.for_i32(i, ci(0), ci(m), |f| {
                    r.set(
                        f,
                        k.get(),
                        j.get(),
                        r.at(k.get(), j.get()) + q.at(i.get(), k.get()) * a.at(i.get(), j.get()),
                    );
                });
                f.for_i32(i, ci(0), ci(m), |f| {
                    a.set(
                        f,
                        i.get(),
                        j.get(),
                        a.at(i.get(), j.get()) - q.at(i.get(), k.get()) * r.at(k.get(), j.get()),
                    );
                });
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[r.flat(), q.flat()]));

    struct St {
        m: usize,
        n: usize,
        a: Vec<f64>,
        r: Vec<f64>,
        q: Vec<f64>,
    }
    let (m_, n_) = (m as usize, n as usize);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                m: m_,
                n: n_,
                a: vec![0.0; m_ * n_],
                r: vec![0.0; n_ * n_],
                q: vec![0.0; m_ * n_],
            },
            init: |s: &mut St| {
                for i in 0..s.m {
                    for j in 0..s.n {
                        let boost = if i == j { 1.0 } else { 0.0 };
                        s.a[i * s.n + j] = init_val(i as i64, 5, j as i64, 7, 89) + boost;
                        s.q[i * s.n + j] = 0.0;
                    }
                }
                for i in 0..s.n {
                    for j in 0..s.n {
                        s.r[i * s.n + j] = 0.0;
                    }
                }
            },
            kernel: |s: &mut St| {
                let (m, n) = (s.m, s.n);
                for k in 0..n {
                    let mut nrm = 0.0f64;
                    for i in 0..m {
                        nrm += s.a[i * n + k] * s.a[i * n + k];
                    }
                    s.r[k * n + k] = nrm.sqrt();
                    for i in 0..m {
                        s.q[i * n + k] = s.a[i * n + k] / s.r[k * n + k];
                    }
                    for j in k + 1..n {
                        s.r[k * n + j] = 0.0;
                        for i in 0..m {
                            s.r[k * n + j] += s.q[i * n + k] * s.a[i * n + j];
                        }
                        for i in 0..m {
                            s.a[i * n + j] -= s.q[i * n + k] * s.r[k * n + j];
                        }
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.r, &s.q]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("gramschmidt", "polybench", module, native)
}

fn dominant_init_expr(i: Expr, j: Expr) -> Expr {
    init_val_expr(i, 3, j, 1, 97) * cf(0.1)
}

fn dominant_init(i: i64, j: i64) -> f64 {
    init_val(i, 3, j, 1, 97) * 0.1
}

/// `lu`: in-place LU decomposition (no pivoting; dominant input).
pub fn lu(d: Dataset) -> Benchmark {
    let n = d.pick(16, 120, 400) as i32;

    let mut l = Layout::new();
    let a = l.array2_f64(n as u32, n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), ci(n), |f| {
                a.set(f, i.get(), j.get(), dominant_init_expr(i.get(), j.get()));
            });
            a.set(f, i.get(), i.get(), cf(n as f64));
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        let k = fk.local_i32();
        fk.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), i.get(), |f| {
                f.for_i32(k, ci(0), j.get(), |f| {
                    a.set(
                        f,
                        i.get(),
                        j.get(),
                        a.at(i.get(), j.get()) - a.at(i.get(), k.get()) * a.at(k.get(), j.get()),
                    );
                });
                a.set(
                    f,
                    i.get(),
                    j.get(),
                    a.at(i.get(), j.get()).fdiv(a.at(j.get(), j.get())),
                );
            });
            f.for_i32_step(j, i.get(), ci(n), 1, |f| {
                f.for_i32(k, ci(0), i.get(), |f| {
                    a.set(
                        f,
                        i.get(),
                        j.get(),
                        a.at(i.get(), j.get()) - a.at(i.get(), k.get()) * a.at(k.get(), j.get()),
                    );
                });
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[a.flat()]));

    struct St {
        n: usize,
        a: Vec<f64>,
    }
    let n_ = n as usize;
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                n: n_,
                a: vec![0.0; n_ * n_],
            },
            init: |s: &mut St| {
                for i in 0..s.n {
                    for j in 0..s.n {
                        s.a[i * s.n + j] = dominant_init(i as i64, j as i64);
                    }
                    s.a[i * s.n + i] = s.n as f64;
                }
            },
            kernel: |s: &mut St| {
                let n = s.n;
                for i in 0..n {
                    for j in 0..i {
                        for k in 0..j {
                            s.a[i * n + j] -= s.a[i * n + k] * s.a[k * n + j];
                        }
                        s.a[i * n + j] /= s.a[j * n + j];
                    }
                    for j in i..n {
                        for k in 0..i {
                            s.a[i * n + j] -= s.a[i * n + k] * s.a[k * n + j];
                        }
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.a]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("lu", "polybench", module, native)
}

/// `ludcmp`: LU decomposition plus forward/backward substitution.
pub fn ludcmp(d: Dataset) -> Benchmark {
    let n = d.pick(16, 120, 400) as i32;

    let mut l = Layout::new();
    let a = l.array2_f64(n as u32, n as u32);
    let b = l.array_f64(n as u32);
    let x = l.array_f64(n as u32);
    let y = l.array_f64(n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(n), |f| {
            x.set(f, i.get(), cf(0.0));
            y.set(f, i.get(), cf(0.0));
            b.set(
                f,
                i.get(),
                (i.get() + ci(1)).to_f64().fdiv(cf(n as f64)) * cf(0.5) + cf(4.0),
            );
            f.for_i32(j, ci(0), ci(n), |f| {
                a.set(f, i.get(), j.get(), dominant_init_expr(i.get(), j.get()));
            });
            a.set(f, i.get(), i.get(), cf(n as f64));
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        let k = fk.local_i32();
        let w = fk.local_f64();
        fk.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), i.get(), |f| {
                f.assign(w, a.at(i.get(), j.get()));
                f.for_i32(k, ci(0), j.get(), |f| {
                    f.assign(w, w.get() - a.at(i.get(), k.get()) * a.at(k.get(), j.get()));
                });
                a.set(f, i.get(), j.get(), w.get().fdiv(a.at(j.get(), j.get())));
            });
            f.for_i32_step(j, i.get(), ci(n), 1, |f| {
                f.assign(w, a.at(i.get(), j.get()));
                f.for_i32(k, ci(0), i.get(), |f| {
                    f.assign(w, w.get() - a.at(i.get(), k.get()) * a.at(k.get(), j.get()));
                });
                a.set(f, i.get(), j.get(), w.get());
            });
        });
        fk.for_i32(i, ci(0), ci(n), |f| {
            f.assign(w, b.at(i.get()));
            f.for_i32(j, ci(0), i.get(), |f| {
                f.assign(w, w.get() - a.at(i.get(), j.get()) * y.at(j.get()));
            });
            y.set(f, i.get(), w.get());
        });
        fk.for_i32_down(i, ci(n), ci(0), |f| {
            f.assign(w, y.at(i.get()));
            f.for_i32_step(j, i.get() + ci(1), ci(n), 1, |f| {
                f.assign(w, w.get() - a.at(i.get(), j.get()) * x.at(j.get()));
            });
            x.set(f, i.get(), w.get().fdiv(a.at(i.get(), i.get())));
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[x]));

    struct St {
        n: usize,
        a: Vec<f64>,
        b: Vec<f64>,
        x: Vec<f64>,
        y: Vec<f64>,
    }
    let n_ = n as usize;
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                n: n_,
                a: vec![0.0; n_ * n_],
                b: vec![0.0; n_],
                x: vec![0.0; n_],
                y: vec![0.0; n_],
            },
            init: |s: &mut St| {
                for i in 0..s.n {
                    s.x[i] = 0.0;
                    s.y[i] = 0.0;
                    s.b[i] = (i as f64 + 1.0) / s.n as f64 * 0.5 + 4.0;
                    for j in 0..s.n {
                        s.a[i * s.n + j] = dominant_init(i as i64, j as i64);
                    }
                    s.a[i * s.n + i] = s.n as f64;
                }
            },
            kernel: |s: &mut St| {
                let n = s.n;
                for i in 0..n {
                    for j in 0..i {
                        let mut w = s.a[i * n + j];
                        for k in 0..j {
                            w -= s.a[i * n + k] * s.a[k * n + j];
                        }
                        s.a[i * n + j] = w / s.a[j * n + j];
                    }
                    for j in i..n {
                        let mut w = s.a[i * n + j];
                        for k in 0..i {
                            w -= s.a[i * n + k] * s.a[k * n + j];
                        }
                        s.a[i * n + j] = w;
                    }
                }
                for i in 0..n {
                    let mut w = s.b[i];
                    for j in 0..i {
                        w -= s.a[i * n + j] * s.y[j];
                    }
                    s.y[i] = w;
                }
                for i in (0..n).rev() {
                    let mut w = s.y[i];
                    for j in i + 1..n {
                        w -= s.a[i * n + j] * s.x[j];
                    }
                    s.x[i] = w / s.a[i * n + i];
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.x]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("ludcmp", "polybench", module, native)
}
