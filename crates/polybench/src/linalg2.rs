//! Triangular/symmetric BLAS PolyBench kernels: symm, syrk, syr2k, trmm,
//! trisolv.

use crate::common::{
    assemble, checksum_fn, checksum_slices, init_val, init_val_expr, ClosureKernel, Dataset,
};
use lb_dsl::expr::{f64 as cf, i32 as ci};
use lb_dsl::{Benchmark, DslFunc, Layout};

const ALPHA: f64 = 1.5;
const BETA: f64 = 1.2;

/// `syrk`: C = alpha·A·Aᵀ + beta·C (lower triangle).
pub fn syrk(d: Dataset) -> Benchmark {
    let m = d.pick(8, 60, 200) as i32;
    let n = d.pick(10, 80, 240) as i32;

    let mut l = Layout::new();
    let a = l.array2_f64(n as u32, m as u32);
    let c = l.array2_f64(n as u32, n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), ci(m), |f| {
                a.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 3, j.get(), 1, 100),
                );
            });
            f.for_i32(j, ci(0), ci(n), |f| {
                c.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 2, j.get(), 2, 99),
                );
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        let k = fk.local_i32();
        fk.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), i.get() + ci(1), |f| {
                c.set(f, i.get(), j.get(), c.at(i.get(), j.get()) * cf(BETA));
            });
            f.for_i32(k, ci(0), ci(m), |f| {
                f.for_i32(j, ci(0), i.get() + ci(1), |f| {
                    c.set(
                        f,
                        i.get(),
                        j.get(),
                        c.at(i.get(), j.get())
                            + cf(ALPHA) * a.at(i.get(), k.get()) * a.at(j.get(), k.get()),
                    );
                });
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[c.flat()]));

    struct St {
        m: usize,
        n: usize,
        a: Vec<f64>,
        c: Vec<f64>,
    }
    let (m_, n_) = (m as usize, n as usize);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                m: m_,
                n: n_,
                a: vec![0.0; n_ * m_],
                c: vec![0.0; n_ * n_],
            },
            init: |s: &mut St| {
                for i in 0..s.n {
                    for j in 0..s.m {
                        s.a[i * s.m + j] = init_val(i as i64, 3, j as i64, 1, 100);
                    }
                    for j in 0..s.n {
                        s.c[i * s.n + j] = init_val(i as i64, 2, j as i64, 2, 99);
                    }
                }
            },
            kernel: |s: &mut St| {
                for i in 0..s.n {
                    for j in 0..=i {
                        s.c[i * s.n + j] *= BETA;
                    }
                    for k in 0..s.m {
                        for j in 0..=i {
                            s.c[i * s.n + j] += ALPHA * s.a[i * s.m + k] * s.a[j * s.m + k];
                        }
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.c]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("syrk", "polybench", module, native)
}

/// `syr2k`: C = alpha·(A·Bᵀ + B·Aᵀ) + beta·C (lower triangle).
pub fn syr2k(d: Dataset) -> Benchmark {
    let m = d.pick(8, 60, 200) as i32;
    let n = d.pick(10, 80, 240) as i32;

    let mut l = Layout::new();
    let a = l.array2_f64(n as u32, m as u32);
    let b = l.array2_f64(n as u32, m as u32);
    let c = l.array2_f64(n as u32, n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), ci(m), |f| {
                a.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 3, j.get(), 1, 100),
                );
                b.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 4, j.get(), 2, 99),
                );
            });
            f.for_i32(j, ci(0), ci(n), |f| {
                c.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 2, j.get(), 3, 98),
                );
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        let k = fk.local_i32();
        fk.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), i.get() + ci(1), |f| {
                c.set(f, i.get(), j.get(), c.at(i.get(), j.get()) * cf(BETA));
            });
            f.for_i32(k, ci(0), ci(m), |f| {
                f.for_i32(j, ci(0), i.get() + ci(1), |f| {
                    c.set(
                        f,
                        i.get(),
                        j.get(),
                        c.at(i.get(), j.get())
                            + a.at(j.get(), k.get()) * cf(ALPHA) * b.at(i.get(), k.get())
                            + b.at(j.get(), k.get()) * cf(ALPHA) * a.at(i.get(), k.get()),
                    );
                });
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[c.flat()]));

    struct St {
        m: usize,
        n: usize,
        a: Vec<f64>,
        b: Vec<f64>,
        c: Vec<f64>,
    }
    let (m_, n_) = (m as usize, n as usize);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                m: m_,
                n: n_,
                a: vec![0.0; n_ * m_],
                b: vec![0.0; n_ * m_],
                c: vec![0.0; n_ * n_],
            },
            init: |s: &mut St| {
                for i in 0..s.n {
                    for j in 0..s.m {
                        s.a[i * s.m + j] = init_val(i as i64, 3, j as i64, 1, 100);
                        s.b[i * s.m + j] = init_val(i as i64, 4, j as i64, 2, 99);
                    }
                    for j in 0..s.n {
                        s.c[i * s.n + j] = init_val(i as i64, 2, j as i64, 3, 98);
                    }
                }
            },
            kernel: |s: &mut St| {
                for i in 0..s.n {
                    for j in 0..=i {
                        s.c[i * s.n + j] *= BETA;
                    }
                    for k in 0..s.m {
                        for j in 0..=i {
                            s.c[i * s.n + j] += s.a[j * s.m + k] * ALPHA * s.b[i * s.m + k]
                                + s.b[j * s.m + k] * ALPHA * s.a[i * s.m + k];
                        }
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.c]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("syr2k", "polybench", module, native)
}

/// `symm`: C = alpha·A·B + beta·C with symmetric A (lower stored).
pub fn symm(d: Dataset) -> Benchmark {
    let m = d.pick(8, 60, 200) as i32;
    let n = d.pick(10, 80, 240) as i32;

    let mut l = Layout::new();
    let a = l.array2_f64(m as u32, m as u32);
    let b = l.array2_f64(m as u32, n as u32);
    let c = l.array2_f64(m as u32, n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(m), |f| {
            f.for_i32(j, ci(0), ci(m), |f| {
                a.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 3, j.get(), 1, 100),
                );
            });
            f.for_i32(j, ci(0), ci(n), |f| {
                b.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 2, j.get(), 2, 99),
                );
                c.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 4, j.get(), 3, 98),
                );
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        let k = fk.local_i32();
        let temp2 = fk.local_f64();
        fk.for_i32(i, ci(0), ci(m), |f| {
            f.for_i32(j, ci(0), ci(n), |f| {
                f.assign(temp2, cf(0.0));
                f.for_i32(k, ci(0), i.get(), |f| {
                    c.set(
                        f,
                        k.get(),
                        j.get(),
                        c.at(k.get(), j.get())
                            + cf(ALPHA) * b.at(i.get(), j.get()) * a.at(i.get(), k.get()),
                    );
                    f.assign(
                        temp2,
                        temp2.get() + b.at(k.get(), j.get()) * a.at(i.get(), k.get()),
                    );
                });
                c.set(
                    f,
                    i.get(),
                    j.get(),
                    cf(BETA) * c.at(i.get(), j.get())
                        + cf(ALPHA) * b.at(i.get(), j.get()) * a.at(i.get(), i.get())
                        + cf(ALPHA) * temp2.get(),
                );
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[c.flat()]));

    struct St {
        m: usize,
        n: usize,
        a: Vec<f64>,
        b: Vec<f64>,
        c: Vec<f64>,
    }
    let (m_, n_) = (m as usize, n as usize);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                m: m_,
                n: n_,
                a: vec![0.0; m_ * m_],
                b: vec![0.0; m_ * n_],
                c: vec![0.0; m_ * n_],
            },
            init: |s: &mut St| {
                for i in 0..s.m {
                    for j in 0..s.m {
                        s.a[i * s.m + j] = init_val(i as i64, 3, j as i64, 1, 100);
                    }
                    for j in 0..s.n {
                        s.b[i * s.n + j] = init_val(i as i64, 2, j as i64, 2, 99);
                        s.c[i * s.n + j] = init_val(i as i64, 4, j as i64, 3, 98);
                    }
                }
            },
            kernel: |s: &mut St| {
                for i in 0..s.m {
                    for j in 0..s.n {
                        let mut temp2 = 0.0;
                        for k in 0..i {
                            s.c[k * s.n + j] += ALPHA * s.b[i * s.n + j] * s.a[i * s.m + k];
                            temp2 += s.b[k * s.n + j] * s.a[i * s.m + k];
                        }
                        s.c[i * s.n + j] = BETA * s.c[i * s.n + j]
                            + ALPHA * s.b[i * s.n + j] * s.a[i * s.m + i]
                            + ALPHA * temp2;
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.c]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("symm", "polybench", module, native)
}

/// `trmm`: B = alpha·Aᵀ·B with unit lower-triangular A.
pub fn trmm(d: Dataset) -> Benchmark {
    let m = d.pick(8, 60, 200) as i32;
    let n = d.pick(10, 80, 240) as i32;

    let mut l = Layout::new();
    let a = l.array2_f64(m as u32, m as u32);
    let b = l.array2_f64(m as u32, n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(m), |f| {
            f.for_i32(j, ci(0), ci(m), |f| {
                a.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 3, j.get(), 1, 100),
                );
            });
            f.for_i32(j, ci(0), ci(n), |f| {
                b.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 2, j.get(), 2, 99),
                );
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        let k = fk.local_i32();
        fk.for_i32(i, ci(0), ci(m), |f| {
            f.for_i32(j, ci(0), ci(n), |f| {
                f.for_i32_step(k, i.get() + ci(1), ci(m), 1, |f| {
                    b.set(
                        f,
                        i.get(),
                        j.get(),
                        b.at(i.get(), j.get()) + a.at(k.get(), i.get()) * b.at(k.get(), j.get()),
                    );
                });
                b.set(f, i.get(), j.get(), b.at(i.get(), j.get()) * cf(ALPHA));
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[b.flat()]));

    struct St {
        m: usize,
        n: usize,
        a: Vec<f64>,
        b: Vec<f64>,
    }
    let (m_, n_) = (m as usize, n as usize);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                m: m_,
                n: n_,
                a: vec![0.0; m_ * m_],
                b: vec![0.0; m_ * n_],
            },
            init: |s: &mut St| {
                for i in 0..s.m {
                    for j in 0..s.m {
                        s.a[i * s.m + j] = init_val(i as i64, 3, j as i64, 1, 100);
                    }
                    for j in 0..s.n {
                        s.b[i * s.n + j] = init_val(i as i64, 2, j as i64, 2, 99);
                    }
                }
            },
            kernel: |s: &mut St| {
                for i in 0..s.m {
                    for j in 0..s.n {
                        for k in i + 1..s.m {
                            s.b[i * s.n + j] += s.a[k * s.m + i] * s.b[k * s.n + j];
                        }
                        s.b[i * s.n + j] *= ALPHA;
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.b]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("trmm", "polybench", module, native)
}

/// `trisolv`: forward substitution x = L⁻¹·b.
pub fn trisolv(d: Dataset) -> Benchmark {
    let n = d.pick(16, 120, 400) as i32;

    let mut l = Layout::new();
    let lo = l.array2_f64(n as u32, n as u32);
    let x = l.array_f64(n as u32);
    let b = l.array_f64(n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(n), |f| {
            x.set(f, i.get(), cf(-999.0));
            b.set(f, i.get(), init_val_expr(i.get(), 1, ci(0), 1, 101));
            f.for_i32(j, ci(0), ci(n), |f| {
                // Strictly-lower entries are small; the diagonal is ≥ 1.
                lo.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 3, j.get(), 1, 97) * cf(0.1),
                );
            });
            lo.set(
                f,
                i.get(),
                i.get(),
                cf(1.0) + init_val_expr(i.get(), 1, ci(0), 0, 7),
            );
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        fk.for_i32(i, ci(0), ci(n), |f| {
            x.set(f, i.get(), b.at(i.get()));
            f.for_i32(j, ci(0), i.get(), |f| {
                x.set(
                    f,
                    i.get(),
                    x.at(i.get()) - lo.at(i.get(), j.get()) * x.at(j.get()),
                );
            });
            x.set(f, i.get(), x.at(i.get()).fdiv(lo.at(i.get(), i.get())));
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[x]));

    struct St {
        n: usize,
        l: Vec<f64>,
        x: Vec<f64>,
        b: Vec<f64>,
    }
    let n_ = n as usize;
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                n: n_,
                l: vec![0.0; n_ * n_],
                x: vec![0.0; n_],
                b: vec![0.0; n_],
            },
            init: |s: &mut St| {
                for i in 0..s.n {
                    s.x[i] = -999.0;
                    s.b[i] = init_val(i as i64, 1, 0, 1, 101);
                    for j in 0..s.n {
                        s.l[i * s.n + j] = init_val(i as i64, 3, j as i64, 1, 97) * 0.1;
                    }
                    s.l[i * s.n + i] = 1.0 + init_val(i as i64, 1, 0, 0, 7);
                }
            },
            kernel: |s: &mut St| {
                for i in 0..s.n {
                    s.x[i] = s.b[i];
                    for j in 0..i {
                        s.x[i] -= s.l[i * s.n + j] * s.x[j];
                    }
                    s.x[i] /= s.l[i * s.n + i];
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.x]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("trisolv", "polybench", module, native)
}
