//! Medley PolyBench kernels: deriche, floyd-warshall, nussinov.

use crate::common::{
    assemble, checksum_fn, checksum_fn_i32, checksum_slices, checksum_slices_i32, init_val,
    init_val_expr, ClosureKernel, Dataset,
};
use lb_dsl::expr::{f64 as cf, i32 as ci};
use lb_dsl::{Benchmark, DslFunc, Layout};
use lb_wasm::types::ValType;

/// `deriche`: recursive Gaussian (Deriche) edge filter over a W×H image.
///
/// The filter's exponential coefficients are computed at module-build time
/// (wasm has no `exp`), exactly as a C compiler constant-folds them.
pub fn deriche(d: Dataset) -> Benchmark {
    let w = d.pick(32, 192, 720) as i32;
    let h = d.pick(24, 128, 480) as i32;
    let alpha = 0.25f64;

    // Deriche coefficients (PolyBench 4.2 formulas).
    let k = (1.0 - (-alpha).exp()) * (1.0 - (-alpha).exp())
        / (1.0 + 2.0 * alpha * (-alpha).exp() - (2.0 * alpha).exp());
    let a1 = k;
    let a5 = k;
    let a2 = k * (-alpha).exp() * (alpha - 1.0);
    let a6 = a2;
    let a3 = k * (-alpha).exp() * (alpha + 1.0);
    let a7 = a3;
    let a4 = -k * (-2.0 * alpha).exp();
    let a8 = a4;
    let b1 = 2.0f64.powf(-alpha);
    let b2 = -(-2.0 * alpha).exp();
    let c1 = 1.0f64;
    let c2 = 1.0f64;

    let mut l = Layout::new();
    let img_in = l.array2_f64(w as u32, h as u32);
    let img_out = l.array2_f64(w as u32, h as u32);
    let y1 = l.array2_f64(w as u32, h as u32);
    let y2 = l.array2_f64(w as u32, h as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(w), |f| {
            f.for_i32(j, ci(0), ci(h), |f| {
                img_in.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 313, j.get(), 991, 65536),
                );
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        let ym1 = fk.local_f64();
        let ym2 = fk.local_f64();
        let xm1 = fk.local_f64();
        let yp1 = fk.local_f64();
        let yp2 = fk.local_f64();
        let xp1 = fk.local_f64();
        let xp2 = fk.local_f64();
        let tm1 = fk.local_f64();
        let tp1 = fk.local_f64();
        let tp2 = fk.local_f64();

        // Horizontal forward pass.
        fk.for_i32(i, ci(0), ci(w), |f| {
            f.assign(ym1, cf(0.0));
            f.assign(ym2, cf(0.0));
            f.assign(xm1, cf(0.0));
            f.for_i32(j, ci(0), ci(h), |f| {
                y1.set(
                    f,
                    i.get(),
                    j.get(),
                    cf(a1) * img_in.at(i.get(), j.get())
                        + cf(a2) * xm1.get()
                        + cf(b1) * ym1.get()
                        + cf(b2) * ym2.get(),
                );
                f.assign(xm1, img_in.at(i.get(), j.get()));
                f.assign(ym2, ym1.get());
                f.assign(ym1, y1.at(i.get(), j.get()));
            });
        });
        // Horizontal backward pass.
        fk.for_i32(i, ci(0), ci(w), |f| {
            f.assign(yp1, cf(0.0));
            f.assign(yp2, cf(0.0));
            f.assign(xp1, cf(0.0));
            f.assign(xp2, cf(0.0));
            f.for_i32_down(j, ci(h), ci(0), |f| {
                y2.set(
                    f,
                    i.get(),
                    j.get(),
                    cf(a3) * xp1.get()
                        + cf(a4) * xp2.get()
                        + cf(b1) * yp1.get()
                        + cf(b2) * yp2.get(),
                );
                f.assign(xp2, xp1.get());
                f.assign(xp1, img_in.at(i.get(), j.get()));
                f.assign(yp2, yp1.get());
                f.assign(yp1, y2.at(i.get(), j.get()));
            });
        });
        fk.for_i32(i, ci(0), ci(w), |f| {
            f.for_i32(j, ci(0), ci(h), |f| {
                img_out.set(
                    f,
                    i.get(),
                    j.get(),
                    cf(c1) * (y1.at(i.get(), j.get()) + y2.at(i.get(), j.get())),
                );
            });
        });
        // Vertical forward pass.
        fk.for_i32(j, ci(0), ci(h), |f| {
            f.assign(tm1, cf(0.0));
            f.assign(ym1, cf(0.0));
            f.assign(ym2, cf(0.0));
            f.for_i32(i, ci(0), ci(w), |f| {
                y1.set(
                    f,
                    i.get(),
                    j.get(),
                    cf(a5) * img_out.at(i.get(), j.get())
                        + cf(a6) * tm1.get()
                        + cf(b1) * ym1.get()
                        + cf(b2) * ym2.get(),
                );
                f.assign(tm1, img_out.at(i.get(), j.get()));
                f.assign(ym2, ym1.get());
                f.assign(ym1, y1.at(i.get(), j.get()));
            });
        });
        // Vertical backward pass.
        fk.for_i32(j, ci(0), ci(h), |f| {
            f.assign(tp1, cf(0.0));
            f.assign(tp2, cf(0.0));
            f.assign(yp1, cf(0.0));
            f.assign(yp2, cf(0.0));
            f.for_i32_down(i, ci(w), ci(0), |f| {
                y2.set(
                    f,
                    i.get(),
                    j.get(),
                    cf(a7) * tp1.get()
                        + cf(a8) * tp2.get()
                        + cf(b1) * yp1.get()
                        + cf(b2) * yp2.get(),
                );
                f.assign(tp2, tp1.get());
                f.assign(tp1, img_out.at(i.get(), j.get()));
                f.assign(yp2, yp1.get());
                f.assign(yp1, y2.at(i.get(), j.get()));
            });
        });
        fk.for_i32(i, ci(0), ci(w), |f| {
            f.for_i32(j, ci(0), ci(h), |f| {
                img_out.set(
                    f,
                    i.get(),
                    j.get(),
                    cf(c2) * (y1.at(i.get(), j.get()) + y2.at(i.get(), j.get())),
                );
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[img_out.flat()]));

    struct St {
        w: usize,
        h: usize,
        coef: [f64; 12],
        img_in: Vec<f64>,
        img_out: Vec<f64>,
        y1: Vec<f64>,
        y2: Vec<f64>,
    }
    let (w_, h_) = (w as usize, h as usize);
    let coef = [a1, a2, a3, a4, a5, a6, a7, a8, b1, b2, c1, c2];
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                w: w_,
                h: h_,
                coef,
                img_in: vec![0.0; w_ * h_],
                img_out: vec![0.0; w_ * h_],
                y1: vec![0.0; w_ * h_],
                y2: vec![0.0; w_ * h_],
            },
            init: |s: &mut St| {
                for i in 0..s.w {
                    for j in 0..s.h {
                        s.img_in[i * s.h + j] = init_val(i as i64, 313, j as i64, 991, 65536);
                    }
                }
            },
            kernel: |s: &mut St| {
                let (w, h) = (s.w, s.h);
                let [a1, a2, a3, a4, a5, a6, a7, a8, b1, b2, c1, c2] = s.coef;
                for i in 0..w {
                    let (mut ym1, mut ym2, mut xm1) = (0.0f64, 0.0f64, 0.0f64);
                    for j in 0..h {
                        s.y1[i * h + j] = a1 * s.img_in[i * h + j] + a2 * xm1 + b1 * ym1 + b2 * ym2;
                        xm1 = s.img_in[i * h + j];
                        ym2 = ym1;
                        ym1 = s.y1[i * h + j];
                    }
                }
                for i in 0..w {
                    let (mut yp1, mut yp2, mut xp1, mut xp2) = (0.0, 0.0, 0.0, 0.0);
                    for j in (0..h).rev() {
                        s.y2[i * h + j] = a3 * xp1 + a4 * xp2 + b1 * yp1 + b2 * yp2;
                        xp2 = xp1;
                        xp1 = s.img_in[i * h + j];
                        yp2 = yp1;
                        yp1 = s.y2[i * h + j];
                    }
                }
                for i in 0..w {
                    for j in 0..h {
                        s.img_out[i * h + j] = c1 * (s.y1[i * h + j] + s.y2[i * h + j]);
                    }
                }
                for j in 0..h {
                    let (mut tm1, mut ym1, mut ym2) = (0.0f64, 0.0f64, 0.0f64);
                    for i in 0..w {
                        s.y1[i * h + j] =
                            a5 * s.img_out[i * h + j] + a6 * tm1 + b1 * ym1 + b2 * ym2;
                        tm1 = s.img_out[i * h + j];
                        ym2 = ym1;
                        ym1 = s.y1[i * h + j];
                    }
                }
                for j in 0..h {
                    let (mut tp1, mut tp2, mut yp1, mut yp2) = (0.0, 0.0, 0.0, 0.0);
                    for i in (0..w).rev() {
                        s.y2[i * h + j] = a7 * tp1 + a8 * tp2 + b1 * yp1 + b2 * yp2;
                        tp2 = tp1;
                        tp1 = s.img_out[i * h + j];
                        yp2 = yp1;
                        yp1 = s.y2[i * h + j];
                    }
                }
                for i in 0..w {
                    for j in 0..h {
                        s.img_out[i * h + j] = c2 * (s.y1[i * h + j] + s.y2[i * h + j]);
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.img_out]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("deriche", "polybench", module, native)
}

/// `floyd-warshall`: all-pairs shortest paths.
pub fn floyd_warshall(d: Dataset) -> Benchmark {
    let n = d.pick(16, 90, 320) as i32;

    let mut l = Layout::new();
    let path = l.array2(ValType::I32, n as u32, n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), ci(n), |f| {
                // path[i][j] = i*j % 7 + 1; disconnected-ish if (i+j)%13 == 0.
                let base = i.get().mul(j.get()).rem_s(ci(7)) + ci(1);
                let cond = (i.get() + j.get())
                    .rem_s(ci(13))
                    .eqz()
                    .or(i.get().rem_s(ci(7)).eqz())
                    .or(j.get().rem_s(ci(11)).eqz());
                path.set(f, i.get(), j.get(), ci(999).select(base, cond));
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        let k = fk.local_i32();
        fk.for_i32(k, ci(0), ci(n), |f| {
            f.for_i32(i, ci(0), ci(n), |f| {
                f.for_i32(j, ci(0), ci(n), |f| {
                    let direct = path.at(i.get(), j.get());
                    let via = path.at(i.get(), k.get()) + path.at(k.get(), j.get());
                    let cond = direct.clone().lt(via.clone());
                    path.set(f, i.get(), j.get(), direct.select(via, cond));
                });
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn_i32(&[path.flat()]));

    struct St {
        n: usize,
        path: Vec<i32>,
    }
    let n_ = n as usize;
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                n: n_,
                path: vec![0; n_ * n_],
            },
            init: |s: &mut St| {
                for i in 0..s.n {
                    for j in 0..s.n {
                        let base = ((i as i32).wrapping_mul(j as i32)) % 7 + 1;
                        let cond = (i + j) % 13 == 0 || i % 7 == 0 || j % 11 == 0;
                        s.path[i * s.n + j] = if cond { 999 } else { base };
                    }
                }
            },
            kernel: |s: &mut St| {
                let n = s.n;
                for k in 0..n {
                    for i in 0..n {
                        for j in 0..n {
                            let direct = s.path[i * n + j];
                            let via = s.path[i * n + k] + s.path[k * n + j];
                            s.path[i * n + j] = if direct < via { direct } else { via };
                        }
                    }
                }
            },
            checksum: |s: &St| checksum_slices_i32(&[&s.path]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("floyd-warshall", "polybench", module, native)
}

/// `nussinov`: RNA secondary-structure dynamic program.
pub fn nussinov(d: Dataset) -> Benchmark {
    let n = d.pick(16, 80, 180) as i32;

    let mut l = Layout::new();
    let seq = l.array(ValType::I32, n as u32);
    let table = l.array2(ValType::I32, n as u32, n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(n), |f| {
            seq.set(f, i.get(), (i.get() + ci(1)).rem_s(ci(4)));
        });
        fi.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), ci(n), |f| {
                table.set(f, i.get(), j.get(), ci(0));
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        let k = fk.local_i32();
        // for i from n-1 down to 0; for j in i+1..n
        fk.for_i32_down(i, ci(n), ci(0), |f| {
            f.for_i32_step(j, i.get() + ci(1), ci(n), 1, |f| {
                // max with table[i][j-1]
                let a = table.at(i.get(), j.get());
                let b = table.at(i.get(), j.get() - ci(1));
                let cond = a.clone().lt(b.clone());
                table.set(f, i.get(), j.get(), b.select(a, cond));
                // max with table[i+1][j]
                let a = table.at(i.get(), j.get());
                let b = table.at(i.get() + ci(1), j.get());
                let cond = a.clone().lt(b.clone());
                table.set(f, i.get(), j.get(), b.select(a, cond));
                // pairing term: i+1 <= j-1 guard
                f.if_else(
                    i.get().add(ci(1)).le(j.get() - ci(1)),
                    |f| {
                        // the comparison itself yields 0/1 as i32
                        let matched = seq.at(i.get()).add(seq.at(j.get())).eq(ci(3));
                        let a = table.at(i.get(), j.get());
                        let b = table.at(i.get() + ci(1), j.get() - ci(1)) + matched;
                        let cond = a.clone().lt(b.clone());
                        table.set(f, i.get(), j.get(), b.select(a, cond));
                    },
                    |_| {},
                );
                // split maximization
                f.for_i32_step(k, i.get() + ci(1), j.get(), 1, |f| {
                    let a = table.at(i.get(), j.get());
                    let b = table.at(i.get(), k.get()) + table.at(k.get() + ci(1), j.get());
                    let cond = a.clone().lt(b.clone());
                    table.set(f, i.get(), j.get(), b.select(a, cond));
                });
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn_i32(&[table.flat()]));

    struct St {
        n: usize,
        seq: Vec<i32>,
        table: Vec<i32>,
    }
    let n_ = n as usize;
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                n: n_,
                seq: vec![0; n_],
                table: vec![0; n_ * n_],
            },
            init: |s: &mut St| {
                for i in 0..s.n {
                    s.seq[i] = ((i + 1) % 4) as i32;
                }
                for v in s.table.iter_mut() {
                    *v = 0;
                }
            },
            kernel: |s: &mut St| {
                let n = s.n;
                for i in (0..n).rev() {
                    for j in i + 1..n {
                        let mut t = s.table[i * n + j];
                        let b = s.table[i * n + j - 1];
                        t = if t < b { b } else { t };
                        let b = s.table[(i + 1) * n + j];
                        t = if t < b { b } else { t };
                        s.table[i * n + j] = t;
                        if i + 1 <= j - 1 {
                            let matched = i32::from(s.seq[i] + s.seq[j] == 3);
                            let b = s.table[(i + 1) * n + j - 1] + matched;
                            let t0 = s.table[i * n + j];
                            s.table[i * n + j] = if t0 < b { b } else { t0 };
                        }
                        for k in i + 1..j {
                            let b = s.table[i * n + k] + s.table[(k + 1) * n + j];
                            let t0 = s.table[i * n + j];
                            s.table[i * n + j] = if t0 < b { b } else { t0 };
                        }
                    }
                }
            },
            checksum: |s: &St| checksum_slices_i32(&[&s.table]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("nussinov", "polybench", module, native)
}
