//! Shared machinery for the PolyBench/C kernel implementations: dataset
//! sizing, module assembly, initialization formulas and checksums.
//!
//! Every kernel is written twice from the same reference loops — once in
//! the DSL (lowered to wasm) and once in plain Rust (the native baseline).
//! Both sides use identical IEEE-754 operations in identical order, so
//! their checksums agree bit-for-bit; the differential tests rely on this.

use lb_dsl::expr::{f64 as cf, Expr};
use lb_dsl::{DslFunc, KernelModule, Layout};
use lb_wasm::Module;

/// PolyBench dataset sizes (the paper uses MEDIUM; smaller presets keep
/// tests and interpreter runs fast).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Tiny sizes for unit/differential tests.
    Mini,
    /// Small sizes for quick benchmarking on slow engines.
    Small,
    /// The paper's configuration.
    Medium,
}

impl Dataset {
    /// Parse from a CLI string.
    pub fn parse(s: &str) -> Option<Dataset> {
        Some(match s {
            "mini" => Dataset::Mini,
            "small" => Dataset::Small,
            "medium" => Dataset::Medium,
            _ => return None,
        })
    }

    /// Scale a (mini, small, medium) triple.
    pub fn pick(self, mini: u32, small: u32, medium: u32) -> u32 {
        match self {
            Dataset::Mini => mini,
            Dataset::Small => small,
            Dataset::Medium => medium,
        }
    }
}

/// Assemble the standard three-function kernel module.
pub fn assemble(layout: &Layout, init: DslFunc, kernel: DslFunc, checksum: DslFunc) -> Module {
    let mut km = KernelModule::new();
    km.memory(layout.pages(), Some(layout.pages() + 4));
    km.add_exported(init);
    km.add_exported(kernel);
    km.add_exported(checksum);
    km.finish()
}

pub use lb_dsl::kernel::{
    checksum_fn, checksum_fn_i32, checksum_slices, checksum_slices_i32, weight,
};

/// The standard PolyBench-style initialization value:
/// `((i * a + j + b) % m) as f64 / m` — pure integer math, so the wasm and
/// native sides agree exactly.
pub fn init_val(i: i64, a: i64, j: i64, b: i64, m: i64) -> f64 {
    (((i * a + j + b) % m) as f64) / m as f64
}

/// DSL twin of [`init_val`]; `i`/`j` are i32 expressions.
pub fn init_val_expr(i: Expr, a: i64, j: Expr, b: i64, m: i64) -> Expr {
    let e = i
        .to_i64()
        .mul(lb_dsl::expr::i64(a))
        .add(j.to_i64())
        .add(lb_dsl::expr::i64(b))
        .rem_s(lb_dsl::expr::i64(m));
    e.to_f64().fdiv(cf(m as f64))
}

pub use lb_dsl::kernel::ClosureKernel;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_pick() {
        assert_eq!(Dataset::Mini.pick(4, 16, 64), 4);
        assert_eq!(Dataset::Small.pick(4, 16, 64), 16);
        assert_eq!(Dataset::Medium.pick(4, 16, 64), 64);
        assert_eq!(Dataset::parse("medium"), Some(Dataset::Medium));
        assert_eq!(Dataset::parse("huge"), None);
    }

    #[test]
    fn weights_cycle() {
        assert_eq!(weight(0), 1.0);
        assert_eq!(weight(12), 13.0);
        assert_eq!(weight(13), 1.0);
    }

    #[test]
    fn init_val_is_deterministic() {
        assert_eq!(init_val(3, 7, 5, 1, 100), 27.0 / 100.0);
        // Matches a manual recomputation.
        assert_eq!(init_val(0, 1, 0, 1, 10), 0.1);
    }
}
