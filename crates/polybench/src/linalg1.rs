//! BLAS-style PolyBench kernels: gemm, 2mm, 3mm, mvt, atax, bicg,
//! gesummv, gemver, doitgen.

use crate::common::{
    assemble, checksum_fn, checksum_slices, init_val, init_val_expr, ClosureKernel, Dataset,
};
use lb_dsl::expr::{f64 as cf, i32 as ci};
use lb_dsl::{Benchmark, DslFunc, Layout};

const ALPHA: f64 = 1.5;
const BETA: f64 = 1.2;

/// `gemm`: C = alpha·A·B + beta·C.
pub fn gemm(d: Dataset) -> Benchmark {
    let ni = d.pick(8, 60, 200) as i32;
    let nj = d.pick(10, 70, 220) as i32;
    let nk = d.pick(12, 80, 240) as i32;

    let mut l = Layout::new();
    let a = l.array2_f64(ni as u32, nk as u32);
    let b = l.array2_f64(nk as u32, nj as u32);
    let c = l.array2_f64(ni as u32, nj as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(ni), |f| {
            f.for_i32(j, ci(0), ci(nj), |f| {
                c.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 3, j.get(), 1, 100),
                );
            });
        });
        fi.for_i32(i, ci(0), ci(ni), |f| {
            f.for_i32(j, ci(0), ci(nk), |f| {
                a.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 5, j.get(), 2, 97),
                );
            });
        });
        fi.for_i32(i, ci(0), ci(nk), |f| {
            f.for_i32(j, ci(0), ci(nj), |f| {
                b.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 7, j.get(), 3, 89),
                );
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        let k = fk.local_i32();
        fk.for_i32(i, ci(0), ci(ni), |f| {
            f.for_i32(j, ci(0), ci(nj), |f| {
                c.set(f, i.get(), j.get(), c.at(i.get(), j.get()) * cf(BETA));
            });
            f.for_i32(k, ci(0), ci(nk), |f| {
                f.for_i32(j, ci(0), ci(nj), |f| {
                    c.set(
                        f,
                        i.get(),
                        j.get(),
                        c.at(i.get(), j.get())
                            + cf(ALPHA) * a.at(i.get(), k.get()) * b.at(k.get(), j.get()),
                    );
                });
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[c.flat()]));

    struct St {
        ni: usize,
        nj: usize,
        nk: usize,
        a: Vec<f64>,
        b: Vec<f64>,
        c: Vec<f64>,
    }
    let (ni_, nj_, nk_) = (ni as usize, nj as usize, nk as usize);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                ni: ni_,
                nj: nj_,
                nk: nk_,
                a: vec![0.0; ni_ * nk_],
                b: vec![0.0; nk_ * nj_],
                c: vec![0.0; ni_ * nj_],
            },
            init: |s: &mut St| {
                for i in 0..s.ni {
                    for j in 0..s.nj {
                        s.c[i * s.nj + j] = init_val(i as i64, 3, j as i64, 1, 100);
                    }
                }
                for i in 0..s.ni {
                    for j in 0..s.nk {
                        s.a[i * s.nk + j] = init_val(i as i64, 5, j as i64, 2, 97);
                    }
                }
                for i in 0..s.nk {
                    for j in 0..s.nj {
                        s.b[i * s.nj + j] = init_val(i as i64, 7, j as i64, 3, 89);
                    }
                }
            },
            kernel: |s: &mut St| {
                for i in 0..s.ni {
                    for j in 0..s.nj {
                        s.c[i * s.nj + j] *= BETA;
                    }
                    for k in 0..s.nk {
                        for j in 0..s.nj {
                            s.c[i * s.nj + j] += ALPHA * s.a[i * s.nk + k] * s.b[k * s.nj + j];
                        }
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.c]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("gemm", "polybench", module, native)
}

/// `2mm`: D = alpha·A·B·C + beta·D.
pub fn two_mm(d: Dataset) -> Benchmark {
    let ni = d.pick(8, 40, 180) as i32;
    let nj = d.pick(9, 50, 190) as i32;
    let nk = d.pick(11, 70, 210) as i32;
    let nl = d.pick(12, 80, 220) as i32;

    let mut l = Layout::new();
    let tmp = l.array2_f64(ni as u32, nj as u32);
    let a = l.array2_f64(ni as u32, nk as u32);
    let b = l.array2_f64(nk as u32, nj as u32);
    let c = l.array2_f64(nj as u32, nl as u32);
    let dd = l.array2_f64(ni as u32, nl as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(ni), |f| {
            f.for_i32(j, ci(0), ci(nk), |f| {
                a.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 3, j.get(), 0, 100),
                );
            });
        });
        fi.for_i32(i, ci(0), ci(nk), |f| {
            f.for_i32(j, ci(0), ci(nj), |f| {
                b.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 2, j.get(), 1, 99),
                );
            });
        });
        fi.for_i32(i, ci(0), ci(nj), |f| {
            f.for_i32(j, ci(0), ci(nl), |f| {
                c.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 4, j.get(), 2, 98),
                );
            });
        });
        fi.for_i32(i, ci(0), ci(ni), |f| {
            f.for_i32(j, ci(0), ci(nl), |f| {
                dd.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 5, j.get(), 3, 97),
                );
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        let k = fk.local_i32();
        fk.for_i32(i, ci(0), ci(ni), |f| {
            f.for_i32(j, ci(0), ci(nj), |f| {
                tmp.set(f, i.get(), j.get(), cf(0.0));
                f.for_i32(k, ci(0), ci(nk), |f| {
                    tmp.set(
                        f,
                        i.get(),
                        j.get(),
                        tmp.at(i.get(), j.get())
                            + cf(ALPHA) * a.at(i.get(), k.get()) * b.at(k.get(), j.get()),
                    );
                });
            });
        });
        fk.for_i32(i, ci(0), ci(ni), |f| {
            f.for_i32(j, ci(0), ci(nl), |f| {
                dd.set(f, i.get(), j.get(), dd.at(i.get(), j.get()) * cf(BETA));
                f.for_i32(k, ci(0), ci(nj), |f| {
                    dd.set(
                        f,
                        i.get(),
                        j.get(),
                        dd.at(i.get(), j.get()) + tmp.at(i.get(), k.get()) * c.at(k.get(), j.get()),
                    );
                });
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[dd.flat()]));

    struct St {
        ni: usize,
        nj: usize,
        nk: usize,
        nl: usize,
        tmp: Vec<f64>,
        a: Vec<f64>,
        b: Vec<f64>,
        c: Vec<f64>,
        d: Vec<f64>,
    }
    let (ni_, nj_, nk_, nl_) = (ni as usize, nj as usize, nk as usize, nl as usize);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                ni: ni_,
                nj: nj_,
                nk: nk_,
                nl: nl_,
                tmp: vec![0.0; ni_ * nj_],
                a: vec![0.0; ni_ * nk_],
                b: vec![0.0; nk_ * nj_],
                c: vec![0.0; nj_ * nl_],
                d: vec![0.0; ni_ * nl_],
            },
            init: |s: &mut St| {
                for i in 0..s.ni {
                    for j in 0..s.nk {
                        s.a[i * s.nk + j] = init_val(i as i64, 3, j as i64, 0, 100);
                    }
                }
                for i in 0..s.nk {
                    for j in 0..s.nj {
                        s.b[i * s.nj + j] = init_val(i as i64, 2, j as i64, 1, 99);
                    }
                }
                for i in 0..s.nj {
                    for j in 0..s.nl {
                        s.c[i * s.nl + j] = init_val(i as i64, 4, j as i64, 2, 98);
                    }
                }
                for i in 0..s.ni {
                    for j in 0..s.nl {
                        s.d[i * s.nl + j] = init_val(i as i64, 5, j as i64, 3, 97);
                    }
                }
            },
            kernel: |s: &mut St| {
                for i in 0..s.ni {
                    for j in 0..s.nj {
                        s.tmp[i * s.nj + j] = 0.0;
                        for k in 0..s.nk {
                            s.tmp[i * s.nj + j] += ALPHA * s.a[i * s.nk + k] * s.b[k * s.nj + j];
                        }
                    }
                }
                for i in 0..s.ni {
                    for j in 0..s.nl {
                        s.d[i * s.nl + j] *= BETA;
                        for k in 0..s.nj {
                            s.d[i * s.nl + j] += s.tmp[i * s.nj + k] * s.c[k * s.nl + j];
                        }
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.d]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("2mm", "polybench", module, native)
}

/// `3mm`: G = (A·B)·(C·D).
pub fn three_mm(d: Dataset) -> Benchmark {
    let ni = d.pick(8, 40, 180) as i32;
    let nj = d.pick(9, 50, 190) as i32;
    let nk = d.pick(10, 60, 200) as i32;
    let nl = d.pick(11, 70, 210) as i32;
    let nm = d.pick(12, 80, 220) as i32;

    let mut l = Layout::new();
    let e = l.array2_f64(ni as u32, nj as u32);
    let a = l.array2_f64(ni as u32, nk as u32);
    let b = l.array2_f64(nk as u32, nj as u32);
    let ff = l.array2_f64(nj as u32, nl as u32);
    let c = l.array2_f64(nj as u32, nm as u32);
    let dd = l.array2_f64(nm as u32, nl as u32);
    let g = l.array2_f64(ni as u32, nl as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(ni), |f| {
            f.for_i32(j, ci(0), ci(nk), |f| {
                a.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 3, j.get(), 1, 100),
                );
            });
        });
        fi.for_i32(i, ci(0), ci(nk), |f| {
            f.for_i32(j, ci(0), ci(nj), |f| {
                b.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 2, j.get(), 2, 99),
                );
            });
        });
        fi.for_i32(i, ci(0), ci(nj), |f| {
            f.for_i32(j, ci(0), ci(nm), |f| {
                c.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 4, j.get(), 3, 98),
                );
            });
        });
        fi.for_i32(i, ci(0), ci(nm), |f| {
            f.for_i32(j, ci(0), ci(nl), |f| {
                dd.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 5, j.get(), 4, 97),
                );
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        let k = fk.local_i32();
        // E = A·B
        fk.for_i32(i, ci(0), ci(ni), |f| {
            f.for_i32(j, ci(0), ci(nj), |f| {
                e.set(f, i.get(), j.get(), cf(0.0));
                f.for_i32(k, ci(0), ci(nk), |f| {
                    e.set(
                        f,
                        i.get(),
                        j.get(),
                        e.at(i.get(), j.get()) + a.at(i.get(), k.get()) * b.at(k.get(), j.get()),
                    );
                });
            });
        });
        // F = C·D
        fk.for_i32(i, ci(0), ci(nj), |f| {
            f.for_i32(j, ci(0), ci(nl), |f| {
                ff.set(f, i.get(), j.get(), cf(0.0));
                f.for_i32(k, ci(0), ci(nm), |f| {
                    ff.set(
                        f,
                        i.get(),
                        j.get(),
                        ff.at(i.get(), j.get()) + c.at(i.get(), k.get()) * dd.at(k.get(), j.get()),
                    );
                });
            });
        });
        // G = E·F
        fk.for_i32(i, ci(0), ci(ni), |f| {
            f.for_i32(j, ci(0), ci(nl), |f| {
                g.set(f, i.get(), j.get(), cf(0.0));
                f.for_i32(k, ci(0), ci(nj), |f| {
                    g.set(
                        f,
                        i.get(),
                        j.get(),
                        g.at(i.get(), j.get()) + e.at(i.get(), k.get()) * ff.at(k.get(), j.get()),
                    );
                });
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[g.flat()]));

    struct St {
        ni: usize,
        nj: usize,
        nk: usize,
        nl: usize,
        nm: usize,
        e: Vec<f64>,
        a: Vec<f64>,
        b: Vec<f64>,
        f: Vec<f64>,
        c: Vec<f64>,
        d: Vec<f64>,
        g: Vec<f64>,
    }
    let (ni_, nj_, nk_, nl_, nm_) = (
        ni as usize,
        nj as usize,
        nk as usize,
        nl as usize,
        nm as usize,
    );
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                ni: ni_,
                nj: nj_,
                nk: nk_,
                nl: nl_,
                nm: nm_,
                e: vec![0.0; ni_ * nj_],
                a: vec![0.0; ni_ * nk_],
                b: vec![0.0; nk_ * nj_],
                f: vec![0.0; nj_ * nl_],
                c: vec![0.0; nj_ * nm_],
                d: vec![0.0; nm_ * nl_],
                g: vec![0.0; ni_ * nl_],
            },
            init: |s: &mut St| {
                for i in 0..s.ni {
                    for j in 0..s.nk {
                        s.a[i * s.nk + j] = init_val(i as i64, 3, j as i64, 1, 100);
                    }
                }
                for i in 0..s.nk {
                    for j in 0..s.nj {
                        s.b[i * s.nj + j] = init_val(i as i64, 2, j as i64, 2, 99);
                    }
                }
                for i in 0..s.nj {
                    for j in 0..s.nm {
                        s.c[i * s.nm + j] = init_val(i as i64, 4, j as i64, 3, 98);
                    }
                }
                for i in 0..s.nm {
                    for j in 0..s.nl {
                        s.d[i * s.nl + j] = init_val(i as i64, 5, j as i64, 4, 97);
                    }
                }
            },
            kernel: |s: &mut St| {
                for i in 0..s.ni {
                    for j in 0..s.nj {
                        s.e[i * s.nj + j] = 0.0;
                        for k in 0..s.nk {
                            s.e[i * s.nj + j] += s.a[i * s.nk + k] * s.b[k * s.nj + j];
                        }
                    }
                }
                for i in 0..s.nj {
                    for j in 0..s.nl {
                        s.f[i * s.nl + j] = 0.0;
                        for k in 0..s.nm {
                            s.f[i * s.nl + j] += s.c[i * s.nm + k] * s.d[k * s.nl + j];
                        }
                    }
                }
                for i in 0..s.ni {
                    for j in 0..s.nl {
                        s.g[i * s.nl + j] = 0.0;
                        for k in 0..s.nj {
                            s.g[i * s.nl + j] += s.e[i * s.nj + k] * s.f[k * s.nl + j];
                        }
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.g]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("3mm", "polybench", module, native)
}

/// `mvt`: x1 += A·y1; x2 += Aᵀ·y2.
pub fn mvt(d: Dataset) -> Benchmark {
    let n = d.pick(16, 120, 400) as i32;

    let mut l = Layout::new();
    let a = l.array2_f64(n as u32, n as u32);
    let x1 = l.array_f64(n as u32);
    let x2 = l.array_f64(n as u32);
    let y1 = l.array_f64(n as u32);
    let y2 = l.array_f64(n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(n), |f| {
            x1.set(f, i.get(), init_val_expr(i.get(), 1, ci(0), 0, 100));
            x2.set(f, i.get(), init_val_expr(i.get(), 2, ci(0), 1, 99));
            y1.set(f, i.get(), init_val_expr(i.get(), 3, ci(0), 2, 98));
            y2.set(f, i.get(), init_val_expr(i.get(), 4, ci(0), 3, 97));
            f.for_i32(j, ci(0), ci(n), |f| {
                a.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 5, j.get(), 4, 96),
                );
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        fk.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), ci(n), |f| {
                x1.set(
                    f,
                    i.get(),
                    x1.at(i.get()) + a.at(i.get(), j.get()) * y1.at(j.get()),
                );
            });
        });
        fk.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), ci(n), |f| {
                x2.set(
                    f,
                    i.get(),
                    x2.at(i.get()) + a.at(j.get(), i.get()) * y2.at(j.get()),
                );
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[x1, x2]));

    struct St {
        n: usize,
        a: Vec<f64>,
        x1: Vec<f64>,
        x2: Vec<f64>,
        y1: Vec<f64>,
        y2: Vec<f64>,
    }
    let n_ = n as usize;
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                n: n_,
                a: vec![0.0; n_ * n_],
                x1: vec![0.0; n_],
                x2: vec![0.0; n_],
                y1: vec![0.0; n_],
                y2: vec![0.0; n_],
            },
            init: |s: &mut St| {
                for i in 0..s.n {
                    s.x1[i] = init_val(i as i64, 1, 0, 0, 100);
                    s.x2[i] = init_val(i as i64, 2, 0, 1, 99);
                    s.y1[i] = init_val(i as i64, 3, 0, 2, 98);
                    s.y2[i] = init_val(i as i64, 4, 0, 3, 97);
                    for j in 0..s.n {
                        s.a[i * s.n + j] = init_val(i as i64, 5, j as i64, 4, 96);
                    }
                }
            },
            kernel: |s: &mut St| {
                for i in 0..s.n {
                    for j in 0..s.n {
                        s.x1[i] += s.a[i * s.n + j] * s.y1[j];
                    }
                }
                for i in 0..s.n {
                    for j in 0..s.n {
                        s.x2[i] += s.a[j * s.n + i] * s.y2[j];
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.x1, &s.x2]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("mvt", "polybench", module, native)
}

/// `atax`: y = Aᵀ·(A·x).
pub fn atax(d: Dataset) -> Benchmark {
    let m = d.pick(19, 116, 390) as i32;
    let n = d.pick(21, 124, 410) as i32;

    let mut l = Layout::new();
    let a = l.array2_f64(m as u32, n as u32);
    let x = l.array_f64(n as u32);
    let y = l.array_f64(n as u32);
    let tmp = l.array_f64(m as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(n), |f| {
            x.set(f, i.get(), init_val_expr(i.get(), 1, ci(0), 1, 101));
        });
        fi.for_i32(i, ci(0), ci(m), |f| {
            f.for_i32(j, ci(0), ci(n), |f| {
                a.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 3, j.get(), 1, 100),
                );
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        fk.for_i32(i, ci(0), ci(n), |f| {
            y.set(f, i.get(), cf(0.0));
        });
        fk.for_i32(i, ci(0), ci(m), |f| {
            tmp.set(f, i.get(), cf(0.0));
            f.for_i32(j, ci(0), ci(n), |f| {
                tmp.set(
                    f,
                    i.get(),
                    tmp.at(i.get()) + a.at(i.get(), j.get()) * x.at(j.get()),
                );
            });
            f.for_i32(j, ci(0), ci(n), |f| {
                y.set(
                    f,
                    j.get(),
                    y.at(j.get()) + a.at(i.get(), j.get()) * tmp.at(i.get()),
                );
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[y]));

    struct St {
        m: usize,
        n: usize,
        a: Vec<f64>,
        x: Vec<f64>,
        y: Vec<f64>,
        tmp: Vec<f64>,
    }
    let (m_, n_) = (m as usize, n as usize);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                m: m_,
                n: n_,
                a: vec![0.0; m_ * n_],
                x: vec![0.0; n_],
                y: vec![0.0; n_],
                tmp: vec![0.0; m_],
            },
            init: |s: &mut St| {
                for i in 0..s.n {
                    s.x[i] = init_val(i as i64, 1, 0, 1, 101);
                }
                for i in 0..s.m {
                    for j in 0..s.n {
                        s.a[i * s.n + j] = init_val(i as i64, 3, j as i64, 1, 100);
                    }
                }
            },
            kernel: |s: &mut St| {
                for i in 0..s.n {
                    s.y[i] = 0.0;
                }
                for i in 0..s.m {
                    s.tmp[i] = 0.0;
                    for j in 0..s.n {
                        s.tmp[i] += s.a[i * s.n + j] * s.x[j];
                    }
                    for j in 0..s.n {
                        s.y[j] += s.a[i * s.n + j] * s.tmp[i];
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.y]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("atax", "polybench", module, native)
}

/// `bicg`: s = Aᵀ·r; q = A·p.
pub fn bicg(d: Dataset) -> Benchmark {
    let m = d.pick(19, 116, 390) as i32;
    let n = d.pick(21, 124, 410) as i32;

    let mut l = Layout::new();
    let a = l.array2_f64(n as u32, m as u32);
    let s = l.array_f64(m as u32);
    let q = l.array_f64(n as u32);
    let p = l.array_f64(m as u32);
    let r = l.array_f64(n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(m), |f| {
            p.set(f, i.get(), init_val_expr(i.get(), 1, ci(0), 1, 101));
        });
        fi.for_i32(i, ci(0), ci(n), |f| {
            r.set(f, i.get(), init_val_expr(i.get(), 2, ci(0), 2, 103));
            f.for_i32(j, ci(0), ci(m), |f| {
                a.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 3, j.get(), 1, 100),
                );
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        fk.for_i32(i, ci(0), ci(m), |f| {
            s.set(f, i.get(), cf(0.0));
        });
        fk.for_i32(i, ci(0), ci(n), |f| {
            q.set(f, i.get(), cf(0.0));
            f.for_i32(j, ci(0), ci(m), |f| {
                s.set(
                    f,
                    j.get(),
                    s.at(j.get()) + r.at(i.get()) * a.at(i.get(), j.get()),
                );
                q.set(
                    f,
                    i.get(),
                    q.at(i.get()) + a.at(i.get(), j.get()) * p.at(j.get()),
                );
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[s, q]));

    struct St {
        m: usize,
        n: usize,
        a: Vec<f64>,
        s: Vec<f64>,
        q: Vec<f64>,
        p: Vec<f64>,
        r: Vec<f64>,
    }
    let (m_, n_) = (m as usize, n as usize);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                m: m_,
                n: n_,
                a: vec![0.0; n_ * m_],
                s: vec![0.0; m_],
                q: vec![0.0; n_],
                p: vec![0.0; m_],
                r: vec![0.0; n_],
            },
            init: |s: &mut St| {
                for i in 0..s.m {
                    s.p[i] = init_val(i as i64, 1, 0, 1, 101);
                }
                for i in 0..s.n {
                    s.r[i] = init_val(i as i64, 2, 0, 2, 103);
                    for j in 0..s.m {
                        s.a[i * s.m + j] = init_val(i as i64, 3, j as i64, 1, 100);
                    }
                }
            },
            kernel: |st: &mut St| {
                for i in 0..st.m {
                    st.s[i] = 0.0;
                }
                for i in 0..st.n {
                    st.q[i] = 0.0;
                    for j in 0..st.m {
                        st.s[j] += st.r[i] * st.a[i * st.m + j];
                        st.q[i] += st.a[i * st.m + j] * st.p[j];
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.s, &s.q]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("bicg", "polybench", module, native)
}

/// `gesummv`: y = alpha·A·x + beta·B·x.
pub fn gesummv(d: Dataset) -> Benchmark {
    let n = d.pick(16, 250, 1000) as i32;

    let mut l = Layout::new();
    let a = l.array2_f64(n as u32, n as u32);
    let b = l.array2_f64(n as u32, n as u32);
    let tmp = l.array_f64(n as u32);
    let x = l.array_f64(n as u32);
    let y = l.array_f64(n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(n), |f| {
            x.set(f, i.get(), init_val_expr(i.get(), 1, ci(0), 0, 101));
            f.for_i32(j, ci(0), ci(n), |f| {
                a.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 3, j.get(), 1, 100),
                );
                b.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 4, j.get(), 2, 99),
                );
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        fk.for_i32(i, ci(0), ci(n), |f| {
            tmp.set(f, i.get(), cf(0.0));
            y.set(f, i.get(), cf(0.0));
            f.for_i32(j, ci(0), ci(n), |f| {
                tmp.set(
                    f,
                    i.get(),
                    a.at(i.get(), j.get()) * x.at(j.get()) + tmp.at(i.get()),
                );
                y.set(
                    f,
                    i.get(),
                    b.at(i.get(), j.get()) * x.at(j.get()) + y.at(i.get()),
                );
            });
            y.set(
                f,
                i.get(),
                cf(ALPHA) * tmp.at(i.get()) + cf(BETA) * y.at(i.get()),
            );
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[y]));

    struct St {
        n: usize,
        a: Vec<f64>,
        b: Vec<f64>,
        tmp: Vec<f64>,
        x: Vec<f64>,
        y: Vec<f64>,
    }
    let n_ = n as usize;
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                n: n_,
                a: vec![0.0; n_ * n_],
                b: vec![0.0; n_ * n_],
                tmp: vec![0.0; n_],
                x: vec![0.0; n_],
                y: vec![0.0; n_],
            },
            init: |s: &mut St| {
                for i in 0..s.n {
                    s.x[i] = init_val(i as i64, 1, 0, 0, 101);
                    for j in 0..s.n {
                        s.a[i * s.n + j] = init_val(i as i64, 3, j as i64, 1, 100);
                        s.b[i * s.n + j] = init_val(i as i64, 4, j as i64, 2, 99);
                    }
                }
            },
            kernel: |s: &mut St| {
                for i in 0..s.n {
                    s.tmp[i] = 0.0;
                    s.y[i] = 0.0;
                    for j in 0..s.n {
                        s.tmp[i] = s.a[i * s.n + j] * s.x[j] + s.tmp[i];
                        s.y[i] = s.b[i * s.n + j] * s.x[j] + s.y[i];
                    }
                    s.y[i] = ALPHA * s.tmp[i] + BETA * s.y[i];
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.y]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("gesummv", "polybench", module, native)
}

/// `gemver`: multiple matrix-vector products with rank-2 update.
pub fn gemver(d: Dataset) -> Benchmark {
    let n = d.pick(16, 120, 400) as i32;

    let mut l = Layout::new();
    let a = l.array2_f64(n as u32, n as u32);
    let u1 = l.array_f64(n as u32);
    let v1 = l.array_f64(n as u32);
    let u2 = l.array_f64(n as u32);
    let v2 = l.array_f64(n as u32);
    let w = l.array_f64(n as u32);
    let x = l.array_f64(n as u32);
    let y = l.array_f64(n as u32);
    let z = l.array_f64(n as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(n), |f| {
            u1.set(f, i.get(), init_val_expr(i.get(), 1, ci(0), 0, 101));
            u2.set(f, i.get(), init_val_expr(i.get(), 2, ci(0), 1, 99));
            v1.set(f, i.get(), init_val_expr(i.get(), 3, ci(0), 2, 98));
            v2.set(f, i.get(), init_val_expr(i.get(), 4, ci(0), 3, 97));
            y.set(f, i.get(), init_val_expr(i.get(), 5, ci(0), 4, 96));
            z.set(f, i.get(), init_val_expr(i.get(), 6, ci(0), 5, 95));
            x.set(f, i.get(), cf(0.0));
            w.set(f, i.get(), cf(0.0));
            f.for_i32(j, ci(0), ci(n), |f| {
                a.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 7, j.get(), 1, 100),
                );
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        fk.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), ci(n), |f| {
                a.set(
                    f,
                    i.get(),
                    j.get(),
                    a.at(i.get(), j.get())
                        + u1.at(i.get()) * v1.at(j.get())
                        + u2.at(i.get()) * v2.at(j.get()),
                );
            });
        });
        fk.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), ci(n), |f| {
                x.set(
                    f,
                    i.get(),
                    x.at(i.get()) + cf(BETA) * a.at(j.get(), i.get()) * y.at(j.get()),
                );
            });
        });
        fk.for_i32(i, ci(0), ci(n), |f| {
            x.set(f, i.get(), x.at(i.get()) + z.at(i.get()));
        });
        fk.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), ci(n), |f| {
                w.set(
                    f,
                    i.get(),
                    w.at(i.get()) + cf(ALPHA) * a.at(i.get(), j.get()) * x.at(j.get()),
                );
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[w]));

    struct St {
        n: usize,
        a: Vec<f64>,
        u1: Vec<f64>,
        v1: Vec<f64>,
        u2: Vec<f64>,
        v2: Vec<f64>,
        w: Vec<f64>,
        x: Vec<f64>,
        y: Vec<f64>,
        z: Vec<f64>,
    }
    let n_ = n as usize;
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                n: n_,
                a: vec![0.0; n_ * n_],
                u1: vec![0.0; n_],
                v1: vec![0.0; n_],
                u2: vec![0.0; n_],
                v2: vec![0.0; n_],
                w: vec![0.0; n_],
                x: vec![0.0; n_],
                y: vec![0.0; n_],
                z: vec![0.0; n_],
            },
            init: |s: &mut St| {
                for i in 0..s.n {
                    s.u1[i] = init_val(i as i64, 1, 0, 0, 101);
                    s.u2[i] = init_val(i as i64, 2, 0, 1, 99);
                    s.v1[i] = init_val(i as i64, 3, 0, 2, 98);
                    s.v2[i] = init_val(i as i64, 4, 0, 3, 97);
                    s.y[i] = init_val(i as i64, 5, 0, 4, 96);
                    s.z[i] = init_val(i as i64, 6, 0, 5, 95);
                    s.x[i] = 0.0;
                    s.w[i] = 0.0;
                    for j in 0..s.n {
                        s.a[i * s.n + j] = init_val(i as i64, 7, j as i64, 1, 100);
                    }
                }
            },
            kernel: |s: &mut St| {
                for i in 0..s.n {
                    for j in 0..s.n {
                        s.a[i * s.n + j] = s.a[i * s.n + j] + s.u1[i] * s.v1[j] + s.u2[i] * s.v2[j];
                    }
                }
                for i in 0..s.n {
                    for j in 0..s.n {
                        s.x[i] += BETA * s.a[j * s.n + i] * s.y[j];
                    }
                }
                for i in 0..s.n {
                    s.x[i] += s.z[i];
                }
                for i in 0..s.n {
                    for j in 0..s.n {
                        s.w[i] += ALPHA * s.a[i * s.n + j] * s.x[j];
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.w]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("gemver", "polybench", module, native)
}

/// `doitgen`: multi-resolution analysis kernel (3-D tensor times matrix).
pub fn doitgen(d: Dataset) -> Benchmark {
    let nq = d.pick(8, 40, 140) as i32;
    let nr = d.pick(10, 50, 150) as i32;
    let np = d.pick(12, 60, 160) as i32;

    let mut l = Layout::new();
    let a = l.array3_f64(nr as u32, nq as u32, np as u32);
    let c4 = l.array2_f64(np as u32, np as u32);
    let sum = l.array_f64(np as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let r = fi.local_i32();
        let q = fi.local_i32();
        let p = fi.local_i32();
        fi.for_i32(r, ci(0), ci(nr), |f| {
            f.for_i32(q, ci(0), ci(nq), |f| {
                f.for_i32(p, ci(0), ci(np), |f| {
                    a.set(
                        f,
                        r.get(),
                        q.get(),
                        p.get(),
                        init_val_expr(r.get().mul(ci(nq)).add(q.get()), 3, p.get(), 1, 100),
                    );
                });
            });
        });
        fi.for_i32(q, ci(0), ci(np), |f| {
            f.for_i32(p, ci(0), ci(np), |f| {
                c4.set(
                    f,
                    q.get(),
                    p.get(),
                    init_val_expr(q.get(), 2, p.get(), 2, 99),
                );
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let r = fk.local_i32();
        let q = fk.local_i32();
        let p = fk.local_i32();
        let s = fk.local_i32();
        fk.for_i32(r, ci(0), ci(nr), |f| {
            f.for_i32(q, ci(0), ci(nq), |f| {
                f.for_i32(p, ci(0), ci(np), |f| {
                    sum.set(f, p.get(), cf(0.0));
                    f.for_i32(s, ci(0), ci(np), |f| {
                        sum.set(
                            f,
                            p.get(),
                            sum.at(p.get())
                                + a.at(r.get(), q.get(), s.get()) * c4.at(s.get(), p.get()),
                        );
                    });
                });
                f.for_i32(p, ci(0), ci(np), |f| {
                    a.set(f, r.get(), q.get(), p.get(), sum.at(p.get()));
                });
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[a.flat()]));

    struct St {
        nq: usize,
        nr: usize,
        np: usize,
        a: Vec<f64>,
        c4: Vec<f64>,
        sum: Vec<f64>,
    }
    let (nq_, nr_, np_) = (nq as usize, nr as usize, np as usize);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                nq: nq_,
                nr: nr_,
                np: np_,
                a: vec![0.0; nr_ * nq_ * np_],
                c4: vec![0.0; np_ * np_],
                sum: vec![0.0; np_],
            },
            init: |s: &mut St| {
                for r in 0..s.nr {
                    for q in 0..s.nq {
                        for p in 0..s.np {
                            s.a[(r * s.nq + q) * s.np + p] =
                                init_val((r * s.nq + q) as i64, 3, p as i64, 1, 100);
                        }
                    }
                }
                for q in 0..s.np {
                    for p in 0..s.np {
                        s.c4[q * s.np + p] = init_val(q as i64, 2, p as i64, 2, 99);
                    }
                }
            },
            kernel: |s: &mut St| {
                for r in 0..s.nr {
                    for q in 0..s.nq {
                        for p in 0..s.np {
                            s.sum[p] = 0.0;
                            for k in 0..s.np {
                                s.sum[p] += s.a[(r * s.nq + q) * s.np + k] * s.c4[k * s.np + p];
                            }
                        }
                        for p in 0..s.np {
                            s.a[(r * s.nq + q) * s.np + p] = s.sum[p];
                        }
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.a]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("doitgen", "polybench", module, native)
}
