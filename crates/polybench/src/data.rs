//! Data-mining PolyBench kernels: correlation, covariance.

use crate::common::{
    assemble, checksum_fn, checksum_slices, init_val, init_val_expr, ClosureKernel, Dataset,
};
use lb_dsl::expr::{f64 as cf, i32 as ci};
use lb_dsl::{Benchmark, DslFunc, Layout};

/// `covariance`: covariance matrix of an N×M data set.
pub fn covariance(d: Dataset) -> Benchmark {
    let m = d.pick(10, 80, 240) as i32; // variables
    let n = d.pick(12, 100, 260) as i32; // observations

    let mut l = Layout::new();
    let data = l.array2_f64(n as u32, m as u32);
    let cov = l.array2_f64(m as u32, m as u32);
    let mean = l.array_f64(m as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), ci(m), |f| {
                data.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 3, j.get(), 1, 100),
                );
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        let k = fk.local_i32();
        let float_n = n as f64;
        fk.for_i32(j, ci(0), ci(m), |f| {
            mean.set(f, j.get(), cf(0.0));
            f.for_i32(i, ci(0), ci(n), |f| {
                mean.set(f, j.get(), mean.at(j.get()) + data.at(i.get(), j.get()));
            });
            mean.set(f, j.get(), mean.at(j.get()).fdiv(cf(float_n)));
        });
        fk.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), ci(m), |f| {
                data.set(
                    f,
                    i.get(),
                    j.get(),
                    data.at(i.get(), j.get()) - mean.at(j.get()),
                );
            });
        });
        fk.for_i32(i, ci(0), ci(m), |f| {
            f.for_i32_step(j, i.get(), ci(m), 1, |f| {
                cov.set(f, i.get(), j.get(), cf(0.0));
                f.for_i32(k, ci(0), ci(n), |f| {
                    cov.set(
                        f,
                        i.get(),
                        j.get(),
                        cov.at(i.get(), j.get())
                            + data.at(k.get(), i.get()) * data.at(k.get(), j.get()),
                    );
                });
                cov.set(
                    f,
                    i.get(),
                    j.get(),
                    cov.at(i.get(), j.get()).fdiv(cf(float_n - 1.0)),
                );
                cov.set(f, j.get(), i.get(), cov.at(i.get(), j.get()));
            });
        });
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[cov.flat()]));

    struct St {
        m: usize,
        n: usize,
        data: Vec<f64>,
        cov: Vec<f64>,
        mean: Vec<f64>,
    }
    let (m_, n_) = (m as usize, n as usize);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                m: m_,
                n: n_,
                data: vec![0.0; n_ * m_],
                cov: vec![0.0; m_ * m_],
                mean: vec![0.0; m_],
            },
            init: |s: &mut St| {
                for i in 0..s.n {
                    for j in 0..s.m {
                        s.data[i * s.m + j] = init_val(i as i64, 3, j as i64, 1, 100);
                    }
                }
            },
            kernel: |s: &mut St| {
                let (m, n) = (s.m, s.n);
                let float_n = n as f64;
                for j in 0..m {
                    s.mean[j] = 0.0;
                    for i in 0..n {
                        s.mean[j] += s.data[i * m + j];
                    }
                    s.mean[j] /= float_n;
                }
                for i in 0..n {
                    for j in 0..m {
                        s.data[i * m + j] -= s.mean[j];
                    }
                }
                for i in 0..m {
                    for j in i..m {
                        s.cov[i * m + j] = 0.0;
                        for k in 0..n {
                            s.cov[i * m + j] += s.data[k * m + i] * s.data[k * m + j];
                        }
                        s.cov[i * m + j] /= float_n - 1.0;
                        s.cov[j * m + i] = s.cov[i * m + j];
                    }
                }
            },
            checksum: |s: &St| checksum_slices(&[&s.cov]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("covariance", "polybench", module, native)
}

/// `correlation`: correlation matrix of an N×M data set.
pub fn correlation(d: Dataset) -> Benchmark {
    let m = d.pick(10, 80, 240) as i32;
    let n = d.pick(12, 100, 260) as i32;
    const EPS: f64 = 0.1;

    let mut l = Layout::new();
    let data = l.array2_f64(n as u32, m as u32);
    let corr = l.array2_f64(m as u32, m as u32);
    let mean = l.array_f64(m as u32);
    let stddev = l.array_f64(m as u32);

    let mut fi = DslFunc::new("init", &[], None);
    {
        let i = fi.local_i32();
        let j = fi.local_i32();
        fi.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), ci(m), |f| {
                data.set(
                    f,
                    i.get(),
                    j.get(),
                    init_val_expr(i.get(), 7, j.get(), 2, 93),
                );
            });
        });
    }

    let mut fk = DslFunc::new("kernel", &[], None);
    {
        let i = fk.local_i32();
        let j = fk.local_i32();
        let k = fk.local_i32();
        let float_n = n as f64;
        fk.for_i32(j, ci(0), ci(m), |f| {
            mean.set(f, j.get(), cf(0.0));
            f.for_i32(i, ci(0), ci(n), |f| {
                mean.set(f, j.get(), mean.at(j.get()) + data.at(i.get(), j.get()));
            });
            mean.set(f, j.get(), mean.at(j.get()).fdiv(cf(float_n)));
        });
        fk.for_i32(j, ci(0), ci(m), |f| {
            stddev.set(f, j.get(), cf(0.0));
            f.for_i32(i, ci(0), ci(n), |f| {
                let dv = data.at(i.get(), j.get()) - mean.at(j.get());
                stddev.set(f, j.get(), stddev.at(j.get()) + dv.clone() * dv);
            });
            stddev.set(f, j.get(), stddev.at(j.get()).fdiv(cf(float_n)).sqrt());
            // Guard near-zero variance (PolyBench's exact rule).
            stddev.set(
                f,
                j.get(),
                cf(1.0).select(stddev.at(j.get()), stddev.at(j.get()).le(cf(EPS))),
            );
        });
        fk.for_i32(i, ci(0), ci(n), |f| {
            f.for_i32(j, ci(0), ci(m), |f| {
                data.set(
                    f,
                    i.get(),
                    j.get(),
                    (data.at(i.get(), j.get()) - mean.at(j.get()))
                        .fdiv(cf(float_n.sqrt()) * stddev.at(j.get())),
                );
            });
        });
        fk.for_i32(i, ci(0), ci(m) - ci(1), |f| {
            corr.set(f, i.get(), i.get(), cf(1.0));
            f.for_i32_step(j, i.get() + ci(1), ci(m), 1, |f| {
                corr.set(f, i.get(), j.get(), cf(0.0));
                f.for_i32(k, ci(0), ci(n), |f| {
                    corr.set(
                        f,
                        i.get(),
                        j.get(),
                        corr.at(i.get(), j.get())
                            + data.at(k.get(), i.get()) * data.at(k.get(), j.get()),
                    );
                });
                corr.set(f, j.get(), i.get(), corr.at(i.get(), j.get()));
            });
        });
        corr.set(&mut fk, ci(m - 1), ci(m - 1), cf(1.0));
    }

    let module = assemble(&l, fi, fk, checksum_fn(&[corr.flat()]));

    struct St {
        m: usize,
        n: usize,
        data: Vec<f64>,
        corr: Vec<f64>,
        mean: Vec<f64>,
        stddev: Vec<f64>,
    }
    let (m_, n_) = (m as usize, n as usize);
    let native = Box::new(move || {
        Box::new(ClosureKernel {
            state: St {
                m: m_,
                n: n_,
                data: vec![0.0; n_ * m_],
                corr: vec![0.0; m_ * m_],
                mean: vec![0.0; m_],
                stddev: vec![0.0; m_],
            },
            init: |s: &mut St| {
                for i in 0..s.n {
                    for j in 0..s.m {
                        s.data[i * s.m + j] = init_val(i as i64, 7, j as i64, 2, 93);
                    }
                }
            },
            kernel: |s: &mut St| {
                let (m, n) = (s.m, s.n);
                let float_n = n as f64;
                for j in 0..m {
                    s.mean[j] = 0.0;
                    for i in 0..n {
                        s.mean[j] += s.data[i * m + j];
                    }
                    s.mean[j] /= float_n;
                }
                for j in 0..m {
                    s.stddev[j] = 0.0;
                    for i in 0..n {
                        let dv = s.data[i * m + j] - s.mean[j];
                        s.stddev[j] += dv * dv;
                    }
                    s.stddev[j] = (s.stddev[j] / float_n).sqrt();
                    if s.stddev[j] <= EPS {
                        s.stddev[j] = 1.0;
                    }
                }
                for i in 0..n {
                    for j in 0..m {
                        s.data[i * m + j] =
                            (s.data[i * m + j] - s.mean[j]) / (float_n.sqrt() * s.stddev[j]);
                    }
                }
                for i in 0..m - 1 {
                    s.corr[i * m + i] = 1.0;
                    for j in i + 1..m {
                        s.corr[i * m + j] = 0.0;
                        for k in 0..n {
                            s.corr[i * m + j] += s.data[k * m + i] * s.data[k * m + j];
                        }
                        s.corr[j * m + i] = s.corr[i * m + j];
                    }
                }
                s.corr[(m - 1) * m + (m - 1)] = 1.0;
            },
            checksum: |s: &St| checksum_slices(&[&s.corr]),
        }) as Box<dyn lb_dsl::NativeKernel>
    });

    Benchmark::new("correlation", "polybench", module, native)
}
