//! Differential test: every PolyBench kernel's wasm module, compiled by the
//! JIT under each engine profile and bounds strategy, must produce exactly
//! the checksum of its native twin.

use lb_core::exec::{Engine, Linker};
use lb_core::{BoundsStrategy, MemoryConfig};
use lb_jit::{JitEngine, JitProfile};
use lb_polybench::{all, by_name, common::Dataset};

fn wasm_checksum(
    engine: &JitEngine,
    bench: &lb_polybench::Benchmark,
    strategy: BoundsStrategy,
) -> f64 {
    let loaded = engine.load(&bench.module).expect("load");
    let config = MemoryConfig::new(strategy, 1, 256).with_reserve(512 * 65536);
    let mut inst = loaded
        .instantiate(&config, &Linker::new())
        .expect("instantiate");
    inst.invoke("init", &[]).expect("init");
    inst.invoke("kernel", &[]).expect("kernel");
    inst.invoke("checksum", &[])
        .expect("checksum")
        .expect("checksum returns f64")
        .as_f64()
        .expect("f64 checksum")
}

#[test]
fn all_kernels_match_native_on_wavm_profile() {
    let engine = JitEngine::new(JitProfile::wavm());
    for bench in all(Dataset::Mini) {
        let native = bench.native_checksum();
        let wasm = wasm_checksum(&engine, &bench, BoundsStrategy::Trap);
        assert_eq!(
            native.to_bits(),
            wasm.to_bits(),
            "{}: native {native} != wasm {wasm}",
            bench.name
        );
    }
}

#[test]
fn all_kernels_match_native_on_baseline_tier() {
    // The v8 profile's initial tier spills after every instruction —
    // exercises a completely different codegen path.
    let engine = JitEngine::new(JitProfile::v8());
    for bench in all(Dataset::Mini) {
        let native = bench.native_checksum();
        let wasm = wasm_checksum(&engine, &bench, BoundsStrategy::Mprotect);
        assert_eq!(
            native.to_bits(),
            wasm.to_bits(),
            "{}: native {native} != wasm {wasm}",
            bench.name
        );
    }
}

#[test]
fn gemm_matches_under_every_strategy_and_profile() {
    let bench = by_name("gemm", Dataset::Small).unwrap();
    let native = bench.native_checksum();
    let mut strategies = vec![
        BoundsStrategy::None,
        BoundsStrategy::Clamp,
        BoundsStrategy::Trap,
        BoundsStrategy::Mprotect,
    ];
    if lb_core::uffd::sigbus_mode_available() {
        strategies.push(BoundsStrategy::Uffd);
    }
    for profile in [JitProfile::wavm(), JitProfile::wasmtime(), JitProfile::v8()] {
        let engine = JitEngine::new(profile);
        for &s in &strategies {
            let wasm = wasm_checksum(&engine, &bench, s);
            assert_eq!(
                native.to_bits(),
                wasm.to_bits(),
                "profile {} strategy {s}",
                profile.name
            );
        }
    }
}
