//! Differential test: every PolyBench kernel's wasm module, executed on the
//! interpreter, must produce exactly the checksum of its native twin.

use lb_core::exec::{Engine, Linker};
use lb_core::{BoundsStrategy, MemoryConfig};
use lb_interp::InterpEngine;
use lb_polybench::{all, by_name, common::Dataset, NAMES};

fn wasm_checksum(bench: &lb_polybench::Benchmark, strategy: BoundsStrategy) -> f64 {
    let engine = InterpEngine::new();
    let loaded = engine.load(&bench.module).expect("load");
    // Modest reservation: mini datasets fit in a few pages.
    let config = MemoryConfig::new(strategy, 1, 256).with_reserve(512 * 65536);
    let mut inst = loaded
        .instantiate(&config, &Linker::new())
        .expect("instantiate");
    inst.invoke("init", &[]).expect("init");
    inst.invoke("kernel", &[]).expect("kernel");
    inst.invoke("checksum", &[])
        .expect("checksum")
        .expect("checksum returns f64")
        .as_f64()
        .expect("f64 checksum")
}

#[test]
fn all_kernels_match_native_mini() {
    for bench in all(Dataset::Mini) {
        let native = bench.native_checksum();
        let wasm = wasm_checksum(&bench, BoundsStrategy::Trap);
        assert!(
            native.is_finite(),
            "{}: native checksum not finite: {native}",
            bench.name
        );
        assert_eq!(
            native.to_bits(),
            wasm.to_bits(),
            "{}: native {native} != wasm {wasm}",
            bench.name
        );
    }
}

#[test]
fn gemm_matches_under_every_strategy_small() {
    let bench = by_name("gemm", Dataset::Small).unwrap();
    let native = bench.native_checksum();
    let mut strategies = vec![
        BoundsStrategy::None,
        BoundsStrategy::Clamp,
        BoundsStrategy::Trap,
        BoundsStrategy::Mprotect,
    ];
    if lb_core::uffd::sigbus_mode_available() {
        strategies.push(BoundsStrategy::Uffd);
    }
    for s in strategies {
        let wasm = wasm_checksum(&bench, s);
        assert_eq!(native.to_bits(), wasm.to_bits(), "strategy {s}");
    }
}

#[test]
fn registry_is_complete() {
    assert_eq!(NAMES.len(), 30);
    for n in NAMES {
        assert!(by_name(n, Dataset::Mini).is_some(), "missing {n}");
    }
    assert!(by_name("nonexistent", Dataset::Mini).is_none());
}

#[test]
fn modules_roundtrip_binary_format() {
    for name in ["gemm", "nussinov", "adi", "deriche"] {
        let bench = by_name(name, Dataset::Mini).unwrap();
        let bytes = lb_wasm::binary::encode(&bench.module);
        let decoded = lb_wasm::binary::decode(&bytes).expect("decode");
        assert_eq!(decoded, bench.module, "{name}");
    }
}
