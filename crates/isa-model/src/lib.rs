//! # lb-isa-model — cross-ISA bounds-checking cost estimation
//!
//! The paper evaluates three physical machines (x86-64 Xeon Gold 6230R,
//! Armv8 ThunderX2 CN9980, RISC-V XuanTie C906) and finds that the
//! *relative* cost of each bounds-checking strategy is nearly identical
//! across ISAs (key result 1, within 2 percentage points). This
//! reproduction runs on one host, so the cross-ISA dimension (figures
//! 2b/2c) is regenerated with a cycle-accounting model:
//!
//! 1. the interpreter executes a benchmark while tallying dynamic
//!    instruction counts per [`CostClass`] (real execution, real control
//!    flow — not a static estimate);
//! 2. an [`IsaProfile`] maps each class to a reciprocal-throughput cost
//!    for that microarchitecture;
//! 3. each bounds-checking strategy adds exactly the µ-ops it costs on
//!    that ISA per memory access — e.g. *clamp* is `cmp+csel` on Armv8
//!    but needs a branch sequence on RV64GC (no conditional select in the
//!    base ISA), while guard-based strategies add nothing inline.
//!
//! The model is deliberately simple (no cache or branch-predictor state);
//! it exercises the paper's *invariance* claim rather than assuming it,
//! because strategy overhead scales with each ISA's own per-access cost.

#![warn(missing_docs)]

use lb_core::exec::Linker;
use lb_core::{BoundsStrategy, MemoryConfig};
use lb_dsl::Benchmark;
use lb_interp::InterpModule;
use lb_wasm::instr::{CostClass, OpCounts, COST_CLASS_COUNT};

/// Per-class reciprocal-throughput costs (cycles per operation) plus the
/// per-memory-access cost of each software bounds check on this ISA.
#[derive(Debug, Clone)]
pub struct IsaProfile {
    /// Profile name (matches the paper's hardware, §3.4).
    pub name: &'static str,
    /// Cycles per operation, indexed by [`CostClass`].
    pub class_cost: [f64; COST_CLASS_COUNT],
    /// Extra cycles per memory access for the *clamp* strategy.
    pub clamp_cost: f64,
    /// Extra cycles per memory access for the *trap* strategy.
    pub trap_cost: f64,
}

fn costs(pairs: &[(CostClass, f64)], default: f64) -> [f64; COST_CLASS_COUNT] {
    let mut c = [default; COST_CLASS_COUNT];
    for (k, v) in pairs {
        c[*k as usize] = *v;
    }
    c
}

/// Intel Xeon Gold 6230R (Cascade Lake): wide out-of-order, cheap
/// branches, `cmov` for clamp.
pub fn x86_64() -> IsaProfile {
    use CostClass::*;
    IsaProfile {
        name: "x86_64",
        class_cost: costs(
            &[
                (Control, 0.0),
                (Branch, 0.5),
                (Call, 2.0),
                (LocalVar, 0.25),
                (Global, 0.5),
                (Const, 0.1),
                (MemLoad, 0.5),
                (MemStore, 1.0),
                (MemMgmt, 50.0),
                (IntAlu, 0.25),
                (IntMul, 1.0),
                (IntDiv, 20.0),
                (IntCmp, 0.25),
                (FpAdd, 0.5),
                (FpMul, 0.5),
                (FpDiv, 4.0),
                (FpSqrt, 4.5),
                (FpCmp, 0.5),
                (Convert, 1.0),
                (Parametric, 0.5),
            ],
            0.5,
        ),
        clamp_cost: 0.75, // cmp + cmova
        trap_cost: 0.5,   // cmp + predicted-not-taken ja
    }
}

/// Cavium ThunderX2 CN9980 (Armv8): out-of-order but narrower; `csel`
/// available, slightly costlier memory pipeline.
pub fn armv8_thunderx2() -> IsaProfile {
    use CostClass::*;
    IsaProfile {
        name: "armv8",
        class_cost: costs(
            &[
                (Control, 0.0),
                (Branch, 0.75),
                (Call, 2.5),
                (LocalVar, 0.33),
                (Global, 0.75),
                (Const, 0.15),
                (MemLoad, 0.75),
                (MemStore, 1.2),
                (MemMgmt, 60.0),
                (IntAlu, 0.33),
                (IntMul, 1.5),
                (IntDiv, 25.0),
                (IntCmp, 0.33),
                (FpAdd, 0.75),
                (FpMul, 0.75),
                (FpDiv, 8.0),
                (FpSqrt, 10.0),
                (FpCmp, 0.75),
                (Convert, 1.5),
                (Parametric, 0.66),
            ],
            0.75,
        ),
        clamp_cost: 1.0, // cmp + csel
        trap_cost: 0.8,  // cmp + b.hi
    }
}

/// XuanTie C906 (RV64GC, Nezha D1): single-issue in-order; no conditional
/// select in the base ISA, so clamp lowers to a branch sequence.
pub fn riscv_c906() -> IsaProfile {
    use CostClass::*;
    IsaProfile {
        name: "riscv",
        class_cost: costs(
            &[
                (Control, 0.0),
                (Branch, 2.0),
                (Call, 4.0),
                (LocalVar, 1.0),
                (Global, 2.0),
                (Const, 1.0),
                (MemLoad, 2.0),
                (MemStore, 1.5),
                (MemMgmt, 120.0),
                (IntAlu, 1.0),
                (IntMul, 3.0),
                (IntDiv, 35.0),
                (IntCmp, 1.0),
                (FpAdd, 4.0),
                (FpMul, 5.0),
                (FpDiv, 30.0),
                (FpSqrt, 40.0),
                (FpCmp, 3.0),
                (Convert, 3.0),
                (Parametric, 2.0),
            ],
            2.0,
        ),
        clamp_cost: 3.5, // sltu + branch + move sequence
        trap_cost: 2.5,  // sltu + bgeu (static-predicted)
    }
}

/// All three profiles the paper evaluates.
pub fn all_profiles() -> Vec<IsaProfile> {
    vec![x86_64(), armv8_thunderx2(), riscv_c906()]
}

/// Look up a profile by name.
pub fn by_name(name: &str) -> Option<IsaProfile> {
    all_profiles().into_iter().find(|p| p.name == name)
}

/// Estimated cycles for a dynamic instruction mix on `isa` under
/// `strategy`.
pub fn estimate_cycles(counts: &OpCounts, isa: &IsaProfile, strategy: BoundsStrategy) -> f64 {
    let mut cycles = 0.0;
    for (i, &n) in counts.0.iter().enumerate() {
        cycles += n as f64 * isa.class_cost[i];
    }
    let per_access = match strategy {
        BoundsStrategy::Clamp => isa.clamp_cost,
        BoundsStrategy::Trap => isa.trap_cost,
        // Guard-based strategies cost nothing per access; their costs are
        // in memory management, measured natively elsewhere.
        BoundsStrategy::None | BoundsStrategy::Mprotect | BoundsStrategy::Uffd => 0.0,
    };
    cycles + counts.mem_accesses() as f64 * per_access
}

/// Relative overhead of `strategy` vs no bounds checks on `isa`
/// (e.g. 0.18 = 18% slower).
pub fn strategy_overhead(counts: &OpCounts, isa: &IsaProfile, strategy: BoundsStrategy) -> f64 {
    let base = estimate_cycles(counts, isa, BoundsStrategy::None);
    let with = estimate_cycles(counts, isa, strategy);
    with / base - 1.0
}

/// Execute `init` + `kernel` of a benchmark on the counting interpreter
/// and return the dynamic instruction mix.
///
/// # Panics
/// Panics if the benchmark module fails to load or traps — suite modules
/// are known-good.
pub fn profile_benchmark(bench: &Benchmark) -> OpCounts {
    let loaded = InterpModule::load(&bench.module).expect("benchmark loads");
    let config = MemoryConfig::new(BoundsStrategy::Trap, 1, 1024).with_reserve(2048 * 65536);
    let mut inst = loaded
        .instantiate_interp(&config, &Linker::new())
        .expect("instantiate");
    let (_, c1) = inst.invoke_counted("init", &[]).expect("init");
    let (_, c2) = inst.invoke_counted("kernel", &[]).expect("kernel");
    let mut total = OpCounts::default();
    for i in 0..COST_CLASS_COUNT {
        total.0[i] = c1.0[i] + c2.0[i];
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_polybench::{by_name as pb, common::Dataset};

    #[test]
    fn profiles_have_sane_shapes() {
        for p in all_profiles() {
            assert!(p.clamp_cost > 0.0);
            assert!(p.trap_cost > 0.0);
            assert!(
                p.clamp_cost >= p.trap_cost,
                "{}: clamp at least trap",
                p.name
            );
            assert!(
                p.class_cost[CostClass::IntDiv as usize] > p.class_cost[CostClass::IntAlu as usize]
            );
        }
        // RISC-V per-op costs dominate the OoO machines.
        assert!(
            riscv_c906().class_cost[CostClass::FpMul as usize]
                > x86_64().class_cost[CostClass::FpMul as usize]
        );
        assert!(by_name("armv8").is_some());
        assert!(by_name("sparc").is_none());
    }

    #[test]
    fn counting_interpreter_counts_memory_ops() {
        let b = pb("gemm", Dataset::Mini).unwrap();
        let counts = profile_benchmark(&b);
        assert!(counts.total() > 1000, "gemm mini runs thousands of instrs");
        assert!(counts.mem_accesses() > 100);
        assert!(counts.get(CostClass::FpMul) > 0);
        assert!(counts.get(CostClass::Branch) > 0);
    }

    #[test]
    fn software_checks_cost_more_than_guard_strategies() {
        let b = pb("gemm", Dataset::Mini).unwrap();
        let counts = profile_benchmark(&b);
        for isa in all_profiles() {
            let none = strategy_overhead(&counts, &isa, BoundsStrategy::None);
            let clamp = strategy_overhead(&counts, &isa, BoundsStrategy::Clamp);
            let trap = strategy_overhead(&counts, &isa, BoundsStrategy::Trap);
            let mprotect = strategy_overhead(&counts, &isa, BoundsStrategy::Mprotect);
            assert_eq!(none, 0.0);
            assert_eq!(mprotect, 0.0);
            assert!(clamp > 0.0 && trap > 0.0, "{}", isa.name);
            assert!(
                clamp >= trap,
                "{}: clamp >= trap (paper: clamp worse)",
                isa.name
            );
        }
    }

    #[test]
    fn relative_costs_are_similar_across_isas() {
        // The paper's key result 1: per-strategy relative costs are within
        // a few percentage points of each other across ISAs.
        let b = pb("gemm", Dataset::Mini).unwrap();
        let counts = profile_benchmark(&b);
        let overheads: Vec<f64> = all_profiles()
            .iter()
            .map(|isa| strategy_overhead(&counts, isa, BoundsStrategy::Trap))
            .collect();
        let min = overheads.iter().cloned().fold(f64::MAX, f64::min);
        let max = overheads.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            max - min < 0.10,
            "trap overhead spread too wide across ISAs: {overheads:?}"
        );
    }
}
