//! # lb-sim — a discrete-event model of Linux mm contention
//!
//! The paper's multithreaded results (figures 3–5) hinge on a kernel
//! mechanism: `mprotect(2)` must take the process-wide `mmap_lock`
//! exclusively and broadcast TLB-shootdown IPIs, so isolate-per-thread
//! workloads that create/destroy wasm memories serialize on it, while
//! userfaultfd resolves faults per-page without the exclusive lock
//! (§2.3.1, §4.2.1). This container has one CPU, so that contention cannot
//! manifest physically; this crate simulates the documented mechanism on a
//! configurable number of cores and regenerates the scaling shapes.
//!
//! The model: each worker thread loops over iterations of
//! `setup (lock) → compute → teardown (lock)`. The mmap lock is FIFO and
//! exclusive; holding it for an mprotect-style operation costs a base
//! latency plus an IPI per other active thread. The uffd strategy replaces
//! lock-held page enabling with per-page faults served without the lock.
//! The V8 engine profile adds periodic stop-the-world pauses, each parking
//! and unparking every worker (visible as context switches, as in the
//! paper's figure 5b).

#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Kernel rwsem optimistic-spin window: waits shorter than this spin
/// instead of sleeping (no context switch).
const SPIN_THRESHOLD_NS: u64 = 3_000;

/// Memory-management behavior per bounds strategy (how `lb-core` actually
/// implements them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimStrategy {
    /// Software checks or no checks: plain `mmap`/`munmap` per isolate;
    /// check costs inflate `compute_ns` upstream.
    Plain,
    /// `PROT_NONE` reservation + `mprotect` to enable pages (+ shootdowns).
    Mprotect,
    /// Lazy RW reservation + userfaultfd: per-page faults, no exclusive lock.
    Uffd,
}

impl SimStrategy {
    /// Map a real strategy name.
    pub fn parse(s: &str) -> Option<SimStrategy> {
        Some(match s {
            "none" | "clamp" | "trap" => SimStrategy::Plain,
            "mprotect" => SimStrategy::Mprotect,
            "uffd" => SimStrategy::Uffd,
            _ => return None,
        })
    }
}

/// Simulation parameters. Cost defaults are calibrated against syscall
/// microbenchmarks on the development host (see `lb-bench`'s ablations).
#[derive(Debug, Clone, Copy)]
pub struct SimParams {
    /// Simulated hardware threads (the paper's machines have 16).
    pub cores: usize,
    /// Worker (isolate) threads.
    pub threads: usize,
    /// Iterations per thread.
    pub iters: u32,
    /// Pure compute time per iteration, ns.
    pub compute_ns: u64,
    /// Committed wasm pages per isolate (drives fault/mprotect volume).
    pub pages: u64,
    /// Strategy under test.
    pub strategy: SimStrategy,
    /// V8-style engine: periodic stop-the-world pauses.
    pub v8_pauses: bool,
    /// `mmap` hold time, ns.
    pub mmap_ns: u64,
    /// `munmap` hold time, ns (includes its shootdown base).
    pub munmap_ns: u64,
    /// `mprotect` hold time, ns, excluding IPIs.
    pub mprotect_ns: u64,
    /// Per-recipient TLB-shootdown IPI cost, ns (paid while holding).
    pub ipi_ns: u64,
    /// userfaultfd register/unregister ioctl hold time, ns.
    pub uffd_register_ns: u64,
    /// Per-page fault service time (SIGBUS + UFFDIO_ZEROPAGE), ns.
    pub uffd_fault_ns: u64,
    /// Minor-fault cost per first-touch page for non-uffd strategies, ns.
    pub minor_fault_ns: u64,
    /// GC pause period, ns (V8 profile).
    pub gc_period_ns: u64,
    /// GC pause length, ns.
    pub gc_pause_ns: u64,
}

impl SimParams {
    /// Defaults matching the paper's machine shape: 16 cores, costs from
    /// host microbenchmarks.
    pub fn new(strategy: SimStrategy, threads: usize, compute_ns: u64) -> SimParams {
        SimParams {
            cores: 16,
            threads,
            iters: 50,
            compute_ns,
            pages: 16,
            strategy,
            v8_pauses: false,
            mmap_ns: 1_000,
            munmap_ns: 2_000,
            mprotect_ns: 2_000,
            ipi_ns: 200,
            uffd_register_ns: 1_500,
            uffd_fault_ns: 1_800,
            minor_fault_ns: 350,
            gc_period_ns: 10_000_000,
            gc_pause_ns: 300_000,
        }
    }
}

/// Simulation output.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Total simulated wall time, ns.
    pub wall_ns: u64,
    /// Per-thread iteration times, ns.
    pub iter_ns: Vec<Vec<u64>>,
    /// Context switches (blocking on the lock, GC park/unpark).
    pub ctx_switches: u64,
    /// Sum of busy thread time, ns.
    pub busy_ns: u64,
    /// Time spent waiting for the mmap lock, summed over threads, ns.
    pub lock_wait_ns: u64,
}

impl SimResult {
    /// CPU utilisation in percent-of-one-core (100 × busy / wall), the
    /// paper's rescaled metric (1600% = 16 busy cores).
    pub fn utilization_pct(&self) -> f64 {
        100.0 * self.busy_ns as f64 / self.wall_ns as f64
    }

    /// Median iteration time over all threads, ns.
    pub fn median_iter_ns(&self) -> u64 {
        let mut all: Vec<u64> = self.iter_ns.iter().flatten().copied().collect();
        all.sort_unstable();
        all[all.len() / 2]
    }

    /// Aggregate throughput, iterations per simulated second.
    pub fn iters_per_sec(&self) -> f64 {
        let n: usize = self.iter_ns.iter().map(|v| v.len()).sum();
        n as f64 * 1e9 / self.wall_ns as f64
    }

    /// Context switches per simulated second.
    pub fn ctxt_per_sec(&self) -> f64 {
        self.ctx_switches as f64 * 1e9 / self.wall_ns as f64
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    SetupLock,
    Compute,
    TeardownLock,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    LockDone(usize),
    ComputeDone(usize),
    GcStart,
    GcEnd,
}

struct Thread {
    phase: Phase,
    iters_left: u32,
    iter_started: u64,
    times: Vec<u64>,
    blocked_since: Option<u64>,
    done: bool,
}

struct Sim<'p> {
    p: &'p SimParams,
    threads: Vec<Thread>,
    events: BinaryHeap<Reverse<(u64, u64, Ev)>>,
    now: u64,
    seq: u64,
    lock_holder: Option<usize>,
    lock_queue: VecDeque<usize>,
    ctx_switches: u64,
    busy_ns: u64,
    lock_wait_ns: u64,
    gc_pauses: u64,
}

impl Sim<'_> {
    fn active(&self) -> usize {
        self.threads.iter().filter(|t| !t.done).count()
    }

    fn setup_hold(&self) -> u64 {
        let active = self.active();
        match self.p.strategy {
            SimStrategy::Plain => self.p.mmap_ns,
            SimStrategy::Mprotect => {
                self.p.mmap_ns
                    + self.p.mprotect_ns
                    + self.p.ipi_ns * active.saturating_sub(1) as u64
            }
            SimStrategy::Uffd => self.p.mmap_ns + self.p.uffd_register_ns,
        }
    }

    fn teardown_hold(&self) -> u64 {
        let active = self.active();
        match self.p.strategy {
            // Unmapping mprotect-enabled writable pages forces a TLB
            // shootdown round; lazily-touched plain/uffd reservations are
            // mostly clean.
            SimStrategy::Mprotect => {
                self.p.munmap_ns + self.p.ipi_ns * active.saturating_sub(1) as u64
            }
            _ => self.p.munmap_ns,
        }
    }

    fn compute_time(&self) -> u64 {
        let extra = match self.p.strategy {
            SimStrategy::Uffd => self.p.pages * self.p.uffd_fault_ns,
            _ => self.p.pages * self.p.minor_fault_ns,
        };
        self.p.compute_ns + extra
    }

    fn push(&mut self, t: u64, e: Ev) {
        self.seq += 1;
        self.events.push(Reverse((t, self.seq, e)));
    }

    fn hold_for(&self, tid: usize) -> u64 {
        match self.threads[tid].phase {
            Phase::SetupLock => self.setup_hold(),
            Phase::TeardownLock => self.teardown_hold(),
            Phase::Compute => unreachable!("compute does not hold the lock"),
        }
    }

    fn request_lock(&mut self, tid: usize) {
        if self.lock_holder.is_none() && self.lock_queue.is_empty() {
            self.lock_holder = Some(tid);
            let hold = self.hold_for(tid);
            self.busy_ns += hold;
            self.push(self.now + hold, Ev::LockDone(tid));
        } else {
            self.threads[tid].blocked_since = Some(self.now);
            self.lock_queue.push_back(tid);
        }
    }

    fn run(&mut self) {
        if self.p.v8_pauses {
            self.push(self.p.gc_period_ns, Ev::GcStart);
        }
        for tid in 0..self.p.threads {
            self.threads[tid].iter_started = 0;
            self.request_lock(tid);
        }
        while let Some(Reverse((t, _, ev))) = self.events.pop() {
            self.now = t;
            match ev {
                Ev::GcStart => {
                    for th in &self.threads {
                        if !th.done && th.blocked_since.is_none() {
                            self.ctx_switches += 2;
                        }
                    }
                    self.gc_pauses += 1;
                    self.push(self.now + self.p.gc_pause_ns, Ev::GcEnd);
                }
                Ev::GcEnd => {
                    self.push(self.now + self.p.gc_period_ns, Ev::GcStart);
                }
                Ev::LockDone(tid) => self.on_lock_done(tid),
                Ev::ComputeDone(tid) => {
                    self.threads[tid].phase = Phase::TeardownLock;
                    self.request_lock(tid);
                }
            }
            if self.threads.iter().all(|t| t.done) {
                break;
            }
        }
    }

    fn on_lock_done(&mut self, tid: usize) {
        debug_assert_eq!(self.lock_holder, Some(tid));
        self.lock_holder = None;
        if let Some(next) = self.lock_queue.pop_front() {
            let since = self.threads[next]
                .blocked_since
                .take()
                .expect("queued thread was blocked");
            let waited = self.now - since;
            self.lock_wait_ns += waited;
            // rwsem waiters spin briefly before sleeping; only long waits
            // are real context switches (sleep + wake).
            if waited > SPIN_THRESHOLD_NS {
                self.ctx_switches += 2;
            }
            self.lock_holder = Some(next);
            let hold = self.hold_for(next);
            self.busy_ns += hold;
            self.push(self.now + hold, Ev::LockDone(next));
        }
        match self.threads[tid].phase {
            Phase::SetupLock => {
                self.threads[tid].phase = Phase::Compute;
                let dur = self.compute_time();
                self.busy_ns += dur;
                self.push(self.now + dur, Ev::ComputeDone(tid));
            }
            Phase::TeardownLock => {
                let it = self.now - self.threads[tid].iter_started;
                self.threads[tid].times.push(it);
                self.threads[tid].iters_left -= 1;
                if self.threads[tid].iters_left == 0 {
                    self.threads[tid].done = true;
                } else {
                    self.threads[tid].iter_started = self.now;
                    self.threads[tid].phase = Phase::SetupLock;
                    self.request_lock(tid);
                }
            }
            Phase::Compute => unreachable!(),
        }
    }
}

/// Run the simulation.
///
/// # Panics
/// Panics on zero threads/iterations or more workers than cores (the
/// paper pins workers 1:1 to hardware threads).
pub fn simulate(p: &SimParams) -> SimResult {
    assert!(p.threads > 0 && p.iters > 0);
    assert!(
        p.threads <= p.cores,
        "model assumes one core per worker (the paper pins 1:1)"
    );
    let mut sim = Sim {
        p,
        threads: (0..p.threads)
            .map(|_| Thread {
                phase: Phase::SetupLock,
                iters_left: p.iters,
                iter_started: 0,
                times: Vec::with_capacity(p.iters as usize),
                blocked_since: None,
                done: false,
            })
            .collect(),
        events: BinaryHeap::new(),
        now: 0,
        seq: 0,
        lock_holder: None,
        lock_queue: VecDeque::new(),
        ctx_switches: 0,
        busy_ns: 0,
        lock_wait_ns: 0,
        gc_pauses: 0,
    };
    sim.run();
    // Each stop-the-world pause stalls every worker for its duration:
    // account it as pure wall-time extension (workers idle).
    let stall = sim.gc_pauses * p.gc_pause_ns;
    SimResult {
        wall_ns: (sim.now + stall).max(1),
        iter_ns: sim.threads.into_iter().map(|t| t.times).collect(),
        ctx_switches: sim.ctx_switches,
        busy_ns: sim.busy_ns,
        lock_wait_ns: sim.lock_wait_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(strategy: SimStrategy, threads: usize, compute_us: u64) -> SimResult {
        let mut p = SimParams::new(strategy, threads, compute_us * 1000);
        p.iters = 40;
        simulate(&p)
    }

    #[test]
    fn single_thread_has_no_contention() {
        let r = run(SimStrategy::Mprotect, 1, 100);
        assert_eq!(r.ctx_switches, 0);
        assert_eq!(r.lock_wait_ns, 0);
        assert_eq!(r.iter_ns[0].len(), 40);
    }

    #[test]
    fn mprotect_scales_worse_than_uffd_at_16_threads() {
        // Short-running iterations, like the paper's PolybenchC isolates.
        let mp = run(SimStrategy::Mprotect, 16, 50);
        let uf = run(SimStrategy::Uffd, 16, 50);
        assert!(
            mp.iters_per_sec() < uf.iters_per_sec(),
            "mprotect {} vs uffd {} iters/s",
            mp.iters_per_sec(),
            uf.iters_per_sec()
        );
        assert!(mp.lock_wait_ns > uf.lock_wait_ns * 2);
    }

    #[test]
    fn mprotect_utilization_drops_at_scale() {
        let mp1 = run(SimStrategy::Mprotect, 1, 50);
        let mp16 = run(SimStrategy::Mprotect, 16, 50);
        let per_core_16 = mp16.utilization_pct() / 16.0;
        let per_core_1 = mp1.utilization_pct();
        assert!(
            per_core_16 < per_core_1 * 0.9,
            "16-thread mprotect per-core utilization {per_core_16:.0}% vs 1-thread {per_core_1:.0}%"
        );
        let uf16 = run(SimStrategy::Uffd, 16, 50);
        assert!(uf16.utilization_pct() / 16.0 > per_core_16);
    }

    #[test]
    fn long_compute_hides_contention() {
        // The paper: the locking effect is "significantly more visible in
        // short-running benchmarks".
        let short_mp = run(SimStrategy::Mprotect, 16, 20);
        let short_uf = run(SimStrategy::Uffd, 16, 20);
        let long_mp = run(SimStrategy::Mprotect, 16, 5000);
        let long_uf = run(SimStrategy::Uffd, 16, 5000);
        let short_penalty = short_uf.iters_per_sec() / short_mp.iters_per_sec();
        let long_penalty = long_uf.iters_per_sec() / long_mp.iters_per_sec();
        assert!(
            short_penalty > long_penalty,
            "short {short_penalty:.2} vs long {long_penalty:.2}"
        );
    }

    #[test]
    fn v8_pauses_add_context_switches() {
        let mut p = SimParams::new(SimStrategy::Mprotect, 8, 200_000);
        p.iters = 60;
        let quiet = simulate(&p);
        p.v8_pauses = true;
        let noisy = simulate(&p);
        assert!(
            noisy.ctx_switches > quiet.ctx_switches + 10,
            "GC pauses must inflate switches ({} vs {})",
            noisy.ctx_switches,
            quiet.ctx_switches
        );
    }

    #[test]
    fn plain_strategy_is_light() {
        let pl = run(SimStrategy::Plain, 16, 50);
        let mp = run(SimStrategy::Mprotect, 16, 50);
        assert!(pl.lock_wait_ns < mp.lock_wait_ns);
        assert_eq!(SimStrategy::parse("trap"), Some(SimStrategy::Plain));
        assert_eq!(SimStrategy::parse("uffd"), Some(SimStrategy::Uffd));
        assert_eq!(SimStrategy::parse("weird"), None);
    }
}

#[cfg(test)]
mod proptests {
    //! Randomized invariant checks on a deterministic SplitMix64 stream
    //! (offline build — no proptest; fixed seeds keep failures
    //! reproducible).

    use super::*;

    struct Rng(u64);

    impl Rng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[lo, hi)`.
        fn in_range(&mut self, lo: u64, hi: u64) -> u64 {
            lo + self.next_u64() % (hi - lo)
        }
    }

    /// The simulator conserves work: every thread completes exactly its
    /// iterations, wall time is at least the critical path, and busy
    /// time never exceeds cores × wall.
    #[test]
    fn conservation_invariants() {
        let mut rng = Rng(0x51A_C0DE);
        for _ in 0..32 {
            let threads = rng.in_range(1, 16) as usize;
            let iters = rng.in_range(1, 30) as u32;
            let compute_us = rng.in_range(1, 500);
            let strategy = [SimStrategy::Plain, SimStrategy::Mprotect, SimStrategy::Uffd]
                [rng.in_range(0, 3) as usize];
            let mut p = SimParams::new(strategy, threads, compute_us * 1000);
            p.iters = iters;
            let r = simulate(&p);
            let ctx = format!("threads={threads} iters={iters} compute_us={compute_us}");
            assert_eq!(r.iter_ns.len(), threads, "{ctx}");
            for t in &r.iter_ns {
                assert_eq!(t.len(), iters as usize, "{ctx}");
            }
            // Wall ≥ one thread's serial work.
            let per_iter_min = p.compute_ns;
            assert!(r.wall_ns >= u64::from(iters) * per_iter_min, "{ctx}");
            // Busy time fits on the machine.
            assert!(r.busy_ns <= r.wall_ns * p.cores as u64 + 1, "{ctx}");
            // Iteration times are at least the compute time.
            for t in r.iter_ns.iter().flatten() {
                assert!(*t >= per_iter_min, "{ctx}");
            }
        }
    }

    /// Adding threads never reduces aggregate throughput.
    #[test]
    fn throughput_is_monotone_in_threads() {
        let mut rng = Rng(0x7409_0CE);
        for _ in 0..32 {
            let compute_us = rng.in_range(20, 500);
            let mut last = 0.0;
            for threads in [1usize, 2, 4, 8] {
                let mut p = SimParams::new(SimStrategy::Uffd, threads, compute_us * 1000);
                p.iters = 30;
                let r = simulate(&p);
                let tput = r.iters_per_sec();
                assert!(
                    tput >= last * 0.99,
                    "{threads} threads (compute_us={compute_us}): {tput} < {last}"
                );
                last = tput;
            }
        }
    }
}
