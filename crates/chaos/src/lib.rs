//! # lb-chaos — deterministic fault injection for fallible OS boundaries
//!
//! The paper's headline mechanism — `userfaultfd`/SIGBUS lazily-populated
//! linear memory — lives or dies on syscalls that routinely fail in the
//! wild: `userfaultfd(2)` is EPERM'd in most containers (and gated behind
//! `vm.unprivileged_userfaultfd` since Linux 5.11), `mmap` of an 8 GiB
//! reservation can exhaust address space, `mprotect` can hit ENOMEM on a
//! VMA split. This crate makes those failures *reproducible*: every
//! fallible OS call site in `lb-core` is a named [fault point](SITES) that
//! consults a process-wide injection [`Plan`] before issuing the real
//! syscall, so graceful-degradation paths (strategy fallback chains, clean
//! `memory.grow` failure, watchdog recovery) can be exercised
//! deterministically in tests and benchmark campaigns.
//!
//! # The `LB_FAULTS` spec
//!
//! A plan is a `;`-separated list of directives:
//!
//! ```text
//! site[:mode]:errno
//! ```
//!
//! * `site` — a fault-point name from [`SITES`] (e.g. `core.uffd.create`),
//!   or a prefix wildcard like `core.uffd.*`.
//! * `mode` — when the directive fires:
//!   * omitted — every consultation fires;
//!   * `N` (an integer) — one-shot: fire exactly on the `N`th
//!     consultation of the site (1-based);
//!   * `rate=P` — fire with probability `P` per consultation, drawn from
//!     a seeded SplitMix64 stream (deterministic for a given seed and
//!     consultation sequence).
//! * `errno` — a symbolic errno name (`EPERM`, `ENOMEM`, `EAGAIN`, …).
//!
//! A `seed=N` directive sets the SplitMix64 seed (default 0); the
//! `LB_FAULTS_SEED` environment variable does the same.
//!
//! Examples:
//!
//! ```text
//! LB_FAULTS=core.uffd.create:1:EPERM          # container-style uffd denial, once
//! LB_FAULTS=core.mprotect.grow:rate=0.01:ENOMEM;seed=7
//! LB_FAULTS=core.uffd.*:EAGAIN                # everything uffd, always
//! ```
//!
//! # Overhead and safety
//!
//! With no plan installed, [`inject_raw`] is a single relaxed atomic load
//! and a branch — the instrumented syscall sites are not hot paths
//! (reservation setup, grow, fault service), so unset cost is negligible.
//! With a plan installed, consultation is: pointer load, per-directive
//! site compare, one `fetch_add` — no allocation, no locks. That makes it
//! **async-signal-safe**, which matters because `core.uffd.copy` is also
//! consulted from the SIGBUS handler's zeropage path. Fires are recorded
//! through pre-registered `lb-telemetry` counters (`chaos.fired` plus
//! `chaos.fired.<site>`), registered at plan-install time in normal
//! context.

#![warn(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The fault-point catalog: every named injection site wired into the
/// runtime. The chaos-matrix test iterates this list; [`Plan::parse`]
/// rejects sites not in it (typo protection), except wildcards.
pub const SITES: &[&str] = &[
    "core.mmap.reserve",    // mmap of a linear-memory reservation
    "core.mprotect.init",   // mprotect enabling the initial committed pages
    "core.mprotect.grow",   // mprotect extending the committed range on grow
    "core.uffd.create",     // userfaultfd(2) fd creation + API handshake
    "core.uffd.register",   // UFFDIO_REGISTER of the reservation
    "core.uffd.copy",       // UFFDIO_ZEROPAGE population (host and in-handler)
    "core.uffd.wake",       // UFFDIO_WAKE from the watchdog's stall recovery
    "core.madvise.discard", // madvise(MADV_DONTNEED) when recycling memory
    "core.pool.reset",      // pooled-memory reset on release to the free-list
    "serve.dispatch",       // lb-serve shard worker dispatching a request
    "serve.queue_full",     // lb-serve admission: forces the queue-full path
];

/// Telemetry counter names for per-site fire counts, index-aligned with
/// [`SITES`] (counter registration requires `&'static str`).
const SITE_COUNTERS: &[&str] = &[
    "chaos.fired.core.mmap.reserve",
    "chaos.fired.core.mprotect.init",
    "chaos.fired.core.mprotect.grow",
    "chaos.fired.core.uffd.create",
    "chaos.fired.core.uffd.register",
    "chaos.fired.core.uffd.copy",
    "chaos.fired.core.uffd.wake",
    "chaos.fired.core.madvise.discard",
    "chaos.fired.core.pool.reset",
    "chaos.fired.serve.dispatch",
    "chaos.fired.serve.queue_full",
];

/// Symbolic errno values supported in specs, as (name, value) pairs.
/// Values are the x86-64 Linux ABI constants; `lb-chaos` cannot depend on
/// the libc shim (it sits below `lb-core` in the crate graph).
const ERRNOS: &[(&str, i32)] = &[
    ("EPERM", 1),
    ("EIO", 5),
    ("EAGAIN", 11),
    ("ENOMEM", 12),
    ("EACCES", 13),
    ("EBUSY", 16),
    ("EEXIST", 17),
    ("EINVAL", 22),
    ("ENOSPC", 28),
    ("ENOSYS", 38),
];

/// Translate a symbolic errno name to its value.
pub fn errno_by_name(name: &str) -> Option<i32> {
    ERRNOS.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
}

/// A malformed `LB_FAULTS` spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad LB_FAULTS spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// When a directive fires.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Mode {
    /// Every consultation.
    Always,
    /// Exactly the nth consultation (1-based), once.
    Nth(u64),
    /// Probability per consultation from the seeded stream.
    Rate(f64),
}

/// One parsed `site[:mode]:errno` directive plus its live counters.
#[derive(Debug)]
struct Directive {
    /// Site name or `prefix.*` wildcard.
    site: String,
    wildcard: bool,
    mode: Mode,
    errno: i32,
    /// Consultations of this directive so far (drives `Nth`).
    hits: AtomicU64,
    /// Per-directive SplitMix64 stream state (drives `Rate`).
    rng: AtomicU64,
}

impl Directive {
    fn matches(&self, site: &str) -> bool {
        if self.wildcard {
            site.as_bytes().starts_with(self.site.as_bytes())
        } else {
            site == self.site
        }
    }

    /// One consultation: does this directive fire? Lock- and
    /// allocation-free (async-signal-safe).
    fn roll(&self) -> bool {
        let n = self.hits.fetch_add(1, Ordering::Relaxed) + 1;
        match self.mode {
            Mode::Always => true,
            Mode::Nth(k) => n == k,
            Mode::Rate(p) => {
                // Advance the per-directive SplitMix64 stream atomically;
                // concurrent rollers each take a distinct state, so the
                // *set* of draws is deterministic for a given seed even if
                // thread interleaving varies.
                let s = self.rng.fetch_add(SPLITMIX_GAMMA, Ordering::Relaxed);
                let u = splitmix64_mix(s.wrapping_add(SPLITMIX_GAMMA));
                ((u >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
            }
        }
    }
}

const SPLITMIX_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded SplitMix64 stream — the same generator the `Rate` directives
/// draw from, exported so test harnesses across the workspace share one
/// deterministic RNG instead of growing private copies.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Start a stream at `seed`. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(SPLITMIX_GAMMA);
        splitmix64_mix(self.0)
    }

    /// Uniform draw in `[0, n)`. `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// A parsed injection plan: an ordered set of [`Directive`]s sharing a
/// seed. Normally installed process-wide (from `LB_FAULTS` or
/// [`install`]); standalone plans support deterministic unit testing via
/// [`Plan::check`].
#[derive(Debug)]
pub struct Plan {
    directives: Vec<Directive>,
    seed: u64,
}

impl Plan {
    /// Parse a spec string (see the module docs for the grammar).
    ///
    /// # Errors
    /// Unknown sites, unknown errno names, malformed modes.
    pub fn parse(spec: &str) -> Result<Plan, SpecError> {
        let mut seed = 0u64;
        let mut raw: Vec<(String, bool, Mode, i32)> = Vec::new();
        for directive in spec.split(';').map(str::trim).filter(|d| !d.is_empty()) {
            if let Some(s) = directive.strip_prefix("seed=") {
                seed = s
                    .parse()
                    .map_err(|_| SpecError(format!("bad seed `{s}`")))?;
                continue;
            }
            let parts: Vec<&str> = directive.split(':').collect();
            let (site, mode, errno) = match parts.len() {
                2 => (parts[0], Mode::Always, parts[1]),
                3 => {
                    let mode = if let Some(p) = parts[1].strip_prefix("rate=") {
                        let p: f64 = p
                            .parse()
                            .map_err(|_| SpecError(format!("bad rate in `{directive}`")))?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(SpecError(format!("rate out of [0,1] in `{directive}`")));
                        }
                        Mode::Rate(p)
                    } else {
                        let n: u64 = parts[1]
                            .parse()
                            .map_err(|_| SpecError(format!("bad nth in `{directive}`")))?;
                        if n == 0 {
                            return Err(SpecError(format!("nth is 1-based in `{directive}`")));
                        }
                        Mode::Nth(n)
                    };
                    (parts[0], mode, parts[2])
                }
                _ => return Err(SpecError(format!("`{directive}` is not site[:mode]:errno"))),
            };
            let wildcard = site.ends_with('*');
            let site_key = if wildcard {
                site.trim_end_matches('*').to_string()
            } else {
                if !SITES.contains(&site) {
                    return Err(SpecError(format!("unknown fault point `{site}`")));
                }
                site.to_string()
            };
            let errno = errno_by_name(errno)
                .ok_or_else(|| SpecError(format!("unknown errno `{errno}` in `{directive}`")))?;
            raw.push((site_key, wildcard, mode, errno));
        }
        let directives = raw
            .into_iter()
            .enumerate()
            .map(|(i, (site, wildcard, mode, errno))| Directive {
                site,
                wildcard,
                mode,
                errno,
                hits: AtomicU64::new(0),
                // Per-directive stream: seed ⊕ index keeps directives
                // independent but jointly deterministic.
                rng: AtomicU64::new(splitmix64_mix(seed ^ (i as u64).wrapping_mul(0x9E37))),
            })
            .collect();
        Ok(Plan { directives, seed })
    }

    /// Override the seed (re-seeds all `rate` streams; `nth` counters are
    /// untouched).
    pub fn reseed(&mut self, seed: u64) {
        self.seed = seed;
        for (i, d) in self.directives.iter_mut().enumerate() {
            *d.rng.get_mut() = splitmix64_mix(seed ^ (i as u64).wrapping_mul(0x9E37));
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of directives.
    pub fn len(&self) -> usize {
        self.directives.len()
    }

    /// Whether the plan has no directives.
    pub fn is_empty(&self) -> bool {
        self.directives.is_empty()
    }

    /// Consult the plan for `site`: `Some(errno)` if a directive fires.
    /// First matching-and-firing directive wins. Async-signal-safe.
    pub fn check(&self, site: &str) -> Option<i32> {
        for d in &self.directives {
            if d.matches(site) && d.roll() {
                return Some(d.errno);
            }
        }
        None
    }
}

// ── process-wide plan ────────────────────────────────────────────────────

/// Fast gate: false ⇒ no plan ever installed ⇒ `inject_raw` is one load.
static ARMED: AtomicBool = AtomicBool::new(false);
/// The live plan (leaked box; swapped under `INSTALL_LOCK`).
static PLAN: AtomicPtr<Plan> = AtomicPtr::new(std::ptr::null_mut());
/// Serializes installs so scoped guards nest correctly across tests.
static INSTALL_LOCK: Mutex<()> = Mutex::new(());
static ENV_INIT: OnceLock<()> = OnceLock::new();

struct FireCounters {
    total: lb_telemetry::Counter,
    per_site: Vec<(&'static str, lb_telemetry::Counter)>,
}

/// Pre-registered fire counters (registration takes a lock, so it happens
/// at install time in normal context; increments are signal-safe).
fn fire_counters() -> &'static FireCounters {
    static C: OnceLock<FireCounters> = OnceLock::new();
    C.get_or_init(|| FireCounters {
        total: lb_telemetry::counter("chaos.fired"),
        per_site: SITES
            .iter()
            .zip(SITE_COUNTERS)
            .map(|(&s, &c)| (s, lb_telemetry::counter(c)))
            .collect(),
    })
}

/// Parse `LB_FAULTS` / `LB_FAULTS_SEED` once and install the resulting
/// plan. Called lazily by [`inject_raw`]'s slow path and eagerly by
/// `lb-core`'s handler installation; idempotent. A malformed spec is
/// reported to stderr once and ignored (an injection layer must never be
/// the thing that crashes the process).
pub fn init_from_env() {
    ENV_INIT.get_or_init(|| {
        let Ok(spec) = std::env::var("LB_FAULTS") else {
            return;
        };
        if spec.is_empty() {
            return;
        }
        match Plan::parse(&spec) {
            Ok(mut plan) => {
                if let Ok(seed) = std::env::var("LB_FAULTS_SEED") {
                    if let Ok(seed) = seed.parse() {
                        plan.reseed(seed);
                    }
                }
                let _guard = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
                install_plan(plan);
            }
            Err(e) => eprintln!("lb-chaos: ignoring LB_FAULTS: {e}"),
        }
    });
}

/// Swap in `plan` (caller holds `INSTALL_LOCK`); returns the previous
/// pointer. The old plan is intentionally leaked: a signal handler may
/// still be reading it, and plans are tiny and installed O(1) times.
fn install_plan(plan: Plan) -> *mut Plan {
    fire_counters();
    let new = Box::into_raw(Box::new(plan));
    let old = PLAN.swap(new, Ordering::Release);
    ARMED.store(true, Ordering::Release);
    old
}

/// A scoped plan installation for tests; restores the previous plan on
/// drop. Holds a global lock, serializing chaos-using tests against each
/// other.
pub struct ChaosGuard {
    prev: *mut Plan,
    _lock: MutexGuard<'static, ()>,
}

impl Drop for ChaosGuard {
    fn drop(&mut self) {
        // ARMED stays set even when restoring a null plan: a concurrent
        // signal handler may race the store, and inject_raw's null check
        // keeps the armed-but-empty state correct.
        PLAN.swap(self.prev, Ordering::Release);
    }
}

/// Install a plan for the lifetime of the returned guard (tests). The
/// guard serializes concurrent installers via a global lock.
///
/// # Errors
/// Propagates parse failures.
pub fn install(spec: &str) -> Result<ChaosGuard, SpecError> {
    let plan = Plan::parse(spec)?;
    let lock = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev = install_plan(plan);
    Ok(ChaosGuard { prev, _lock: lock })
}

/// Consult the process-wide plan for `site`: `Some(errno)` when an
/// injected fault fires. Async-signal-safe after the first (normal-
/// context) call: the fast path is one relaxed load; the fire path is
/// atomic increments on pre-registered telemetry counters.
#[inline]
pub fn inject_raw(site: &str) -> Option<i32> {
    if !ARMED.load(Ordering::Acquire) {
        // One-time env parse happens lazily but only in normal context —
        // the first consultation of any site is always from a constructor
        // or an explicitly-armed test, never a signal handler.
        init_from_env();
        if !ARMED.load(Ordering::Acquire) {
            return None;
        }
    }
    let plan = PLAN.load(Ordering::Acquire);
    if plan.is_null() {
        return None;
    }
    // SAFETY: installed plans are leaked, so the pointer is valid forever.
    let errno = unsafe { (*plan).check(site) }?;
    let c = fire_counters();
    c.total.inc();
    if let Some((_, ctr)) = c.per_site.iter().find(|(s, _)| *s == site) {
        ctr.inc();
    }
    Some(errno)
}

/// [`inject_raw`] wrapped as an `io::Error` for `Result` call sites.
#[inline]
pub fn inject(site: &str) -> Option<std::io::Error> {
    inject_raw(site).map(std::io::Error::from_raw_os_error)
}

/// Whether any plan is installed (used by tests and diagnostics).
pub fn armed() -> bool {
    ARMED.load(Ordering::Acquire) && !PLAN.load(Ordering::Acquire).is_null()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_garbage() {
        assert!(Plan::parse("nonsense").is_err());
        assert!(Plan::parse("core.mmap.reserve:EWHAT").is_err());
        assert!(Plan::parse("not.a.site:1:EPERM").is_err());
        assert!(
            Plan::parse("core.mmap.reserve:0:EPERM").is_err(),
            "nth is 1-based"
        );
        assert!(Plan::parse("core.mmap.reserve:rate=1.5:EPERM").is_err());
        assert!(Plan::parse("seed=x").is_err());
    }

    #[test]
    fn always_mode_fires_every_time() {
        let p = Plan::parse("core.uffd.create:EPERM").unwrap();
        for _ in 0..5 {
            assert_eq!(p.check("core.uffd.create"), Some(1));
        }
        assert_eq!(p.check("core.uffd.register"), None);
    }

    #[test]
    fn nth_mode_is_one_shot() {
        let p = Plan::parse("core.mmap.reserve:3:ENOMEM").unwrap();
        assert_eq!(p.check("core.mmap.reserve"), None);
        assert_eq!(p.check("core.mmap.reserve"), None);
        assert_eq!(p.check("core.mmap.reserve"), Some(12));
        assert_eq!(p.check("core.mmap.reserve"), None);
    }

    #[test]
    fn wildcard_matches_prefix() {
        let p = Plan::parse("core.uffd.*:EAGAIN").unwrap();
        assert_eq!(p.check("core.uffd.create"), Some(11));
        assert_eq!(p.check("core.uffd.copy"), Some(11));
        assert_eq!(p.check("core.mmap.reserve"), None);
    }

    #[test]
    fn rate_stream_is_seed_deterministic() {
        let fire_pattern = |seed: u64| -> Vec<bool> {
            let mut p = Plan::parse("core.uffd.copy:rate=0.5:EAGAIN").unwrap();
            p.reseed(seed);
            (0..256)
                .map(|_| p.check("core.uffd.copy").is_some())
                .collect()
        };
        let a = fire_pattern(42);
        let b = fire_pattern(42);
        assert_eq!(a, b, "same seed ⇒ same fire pattern");
        let c = fire_pattern(43);
        assert_ne!(a, c, "different seed ⇒ different pattern");
        let fires = a.iter().filter(|&&f| f).count();
        assert!(
            (64..=192).contains(&fires),
            "rate=0.5 should fire roughly half the time, got {fires}/256"
        );
    }

    #[test]
    fn multiple_directives_first_fire_wins() {
        let p = Plan::parse("core.mmap.reserve:2:ENOMEM;core.mmap.reserve:EPERM;seed=1").unwrap();
        // Directive order: the nth directive is consulted first but does
        // not fire on hit 1, so the always directive provides EPERM.
        assert_eq!(p.check("core.mmap.reserve"), Some(1));
        // Hit 2: nth fires first.
        assert_eq!(p.check("core.mmap.reserve"), Some(12));
        assert_eq!(p.check("core.mmap.reserve"), Some(1));
    }

    #[test]
    fn scoped_install_fires_and_restores() {
        {
            let _g = install("core.uffd.create:EPERM").unwrap();
            assert!(armed());
            let e = inject("core.uffd.create").expect("fires");
            assert_eq!(e.raw_os_error(), Some(1));
            assert!(inject("core.mmap.reserve").is_none());
        }
        assert!(inject_raw("core.uffd.create").is_none(), "guard restored");
    }

    #[test]
    fn fires_are_counted_in_telemetry() {
        let before = lb_telemetry::snapshot();
        {
            let _g = install("core.mprotect.grow:ENOMEM").unwrap();
            assert!(inject_raw("core.mprotect.grow").is_some());
            assert!(inject_raw("core.mprotect.grow").is_some());
        }
        let d = lb_telemetry::snapshot().delta_since(&before);
        assert_eq!(d.counter("chaos.fired.core.mprotect.grow"), 2);
        assert!(d.counter("chaos.fired") >= 2);
    }

    #[test]
    fn errno_table() {
        assert_eq!(errno_by_name("EPERM"), Some(1));
        assert_eq!(errno_by_name("ENOMEM"), Some(12));
        assert_eq!(errno_by_name("EBOGUS"), None);
    }
}
