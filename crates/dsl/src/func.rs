//! Imperative function bodies: variables, assignment, loops, conditionals.

use crate::expr::Expr;
use lb_wasm::instr::Instr;
use lb_wasm::types::{BlockType, ValType};

/// A local variable (parameter or declared local) of a [`DslFunc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var {
    pub(crate) idx: u32,
    pub(crate) ty: ValType,
}

impl Var {
    /// Read the variable as an expression.
    pub fn get(self) -> Expr {
        Expr::from_raw(vec![Instr::LocalGet(self.idx)], self.ty)
    }

    /// The variable's type.
    pub fn ty(self) -> ValType {
        self.ty
    }
}

/// A function under construction in the DSL.
#[derive(Debug)]
pub struct DslFunc {
    pub(crate) name: String,
    pub(crate) params: Vec<ValType>,
    pub(crate) result: Option<ValType>,
    pub(crate) locals: Vec<ValType>,
    pub(crate) body: Vec<Instr>,
}

impl DslFunc {
    /// Start a function with the given name and signature.
    pub fn new(name: &str, params: &[ValType], result: Option<ValType>) -> DslFunc {
        DslFunc {
            name: name.to_string(),
            params: params.to_vec(),
            result,
            locals: Vec::new(),
            body: Vec::new(),
        }
    }

    /// The `i`-th parameter.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn param(&self, i: usize) -> Var {
        Var {
            idx: i as u32,
            ty: self.params[i],
        }
    }

    /// Declare a new local of type `ty` (zero-initialized).
    pub fn local(&mut self, ty: ValType) -> Var {
        self.locals.push(ty);
        Var {
            idx: (self.params.len() + self.locals.len() - 1) as u32,
            ty,
        }
    }

    /// Declare an i32 local.
    pub fn local_i32(&mut self) -> Var {
        self.local(ValType::I32)
    }

    /// Declare an i64 local.
    pub fn local_i64(&mut self) -> Var {
        self.local(ValType::I64)
    }

    /// Declare an f64 local.
    pub fn local_f64(&mut self) -> Var {
        self.local(ValType::F64)
    }

    /// Declare an f32 local.
    pub fn local_f32(&mut self) -> Var {
        self.local(ValType::F32)
    }

    /// Append raw instructions (escape hatch).
    pub fn raw(&mut self, instrs: impl IntoIterator<Item = Instr>) {
        self.body.extend(instrs);
    }

    /// Evaluate `e` and assign it to `v`.
    ///
    /// # Panics
    /// Panics on type mismatch.
    pub fn assign(&mut self, v: Var, e: Expr) {
        assert_eq!(v.ty, e.ty(), "assign type mismatch for local {}", v.idx);
        self.body.extend(e.into_code());
        self.body.push(Instr::LocalSet(v.idx));
    }

    /// Evaluate `e` for its side effects and discard the value.
    pub fn eval_drop(&mut self, e: Expr) {
        self.body.extend(e.into_code());
        self.body.push(Instr::Drop);
    }

    /// Emit a statement expression that leaves nothing on the stack
    /// (used by [`crate::layout::Arr::set`]-style helpers).
    pub fn stmt(&mut self, code: Vec<Instr>) {
        self.body.extend(code);
    }

    /// `for v in start..end` (i32, step +1).
    pub fn for_i32(&mut self, v: Var, start: Expr, end: Expr, body: impl FnOnce(&mut DslFunc)) {
        self.for_i32_step(v, start, end, 1, body);
    }

    /// `for v in (start..end).step_by(step)` (i32, positive step).
    ///
    /// # Panics
    /// Panics if `step == 0` or the loop variable is not i32.
    pub fn for_i32_step(
        &mut self,
        v: Var,
        start: Expr,
        end: Expr,
        step: i32,
        body: impl FnOnce(&mut DslFunc),
    ) {
        assert!(step > 0, "step must be positive");
        assert_eq!(v.ty, ValType::I32, "loop variable must be i32");
        // v = start
        self.assign(v, start);
        // end is evaluated once into a fresh local.
        let end_v = self.local_i32();
        self.assign(end_v, end);
        // block { if v >= end br 0; loop { body; v += step; if v < end br 0 } }
        self.body.push(Instr::Block(BlockType::Empty));
        self.body.push(Instr::LocalGet(v.idx));
        self.body.push(Instr::LocalGet(end_v.idx));
        self.body.push(Instr::I32GeS);
        self.body.push(Instr::BrIf(0));
        self.body.push(Instr::Loop(BlockType::Empty));
        body(self);
        self.body.push(Instr::LocalGet(v.idx));
        self.body.push(Instr::I32Const(step));
        self.body.push(Instr::I32Add);
        self.body.push(Instr::LocalTee(v.idx));
        self.body.push(Instr::LocalGet(end_v.idx));
        self.body.push(Instr::I32LtS);
        self.body.push(Instr::BrIf(0));
        self.body.push(Instr::End); // loop
        self.body.push(Instr::End); // block
    }

    /// `for v in start..end` (i32, step +1) with *unsigned* comparisons.
    ///
    /// The `v <u end` backedge is the loop shape whose relational fact
    /// lets `lb-analysis` synthesize a hoisted preheader guard when `end`
    /// is not statically known (signed compares prove nothing about the
    /// unsigned access index unless both sides are provably non-negative).
    pub fn for_i32u(&mut self, v: Var, start: Expr, end: Expr, body: impl FnOnce(&mut DslFunc)) {
        assert_eq!(v.ty, ValType::I32, "loop variable must be i32");
        self.assign(v, start);
        let end_v = self.local_i32();
        self.assign(end_v, end);
        // block { if v >=u end br 0; loop { body; v += 1; if v <u end br 0 } }
        self.body.push(Instr::Block(BlockType::Empty));
        self.body.push(Instr::LocalGet(v.idx));
        self.body.push(Instr::LocalGet(end_v.idx));
        self.body.push(Instr::I32GeU);
        self.body.push(Instr::BrIf(0));
        self.body.push(Instr::Loop(BlockType::Empty));
        body(self);
        self.body.push(Instr::LocalGet(v.idx));
        self.body.push(Instr::I32Const(1));
        self.body.push(Instr::I32Add);
        self.body.push(Instr::LocalTee(v.idx));
        self.body.push(Instr::LocalGet(end_v.idx));
        self.body.push(Instr::I32LtU);
        self.body.push(Instr::BrIf(0));
        self.body.push(Instr::End); // loop
        self.body.push(Instr::End); // block
    }

    /// Descending loop: `for v in (start-1)..=end_inclusive` counting down.
    pub fn for_i32_down(
        &mut self,
        v: Var,
        start_exclusive: Expr,
        end_inclusive: Expr,
        body: impl FnOnce(&mut DslFunc),
    ) {
        assert_eq!(v.ty, ValType::I32, "loop variable must be i32");
        // v = start - 1
        self.assign(v, start_exclusive - crate::expr::i32(1));
        let end_v = self.local_i32();
        self.assign(end_v, end_inclusive);
        self.body.push(Instr::Block(BlockType::Empty));
        self.body.push(Instr::LocalGet(v.idx));
        self.body.push(Instr::LocalGet(end_v.idx));
        self.body.push(Instr::I32LtS);
        self.body.push(Instr::BrIf(0));
        self.body.push(Instr::Loop(BlockType::Empty));
        body(self);
        self.body.push(Instr::LocalGet(v.idx));
        self.body.push(Instr::I32Const(1));
        self.body.push(Instr::I32Sub);
        self.body.push(Instr::LocalTee(v.idx));
        self.body.push(Instr::LocalGet(end_v.idx));
        self.body.push(Instr::I32GeS);
        self.body.push(Instr::BrIf(0));
        self.body.push(Instr::End);
        self.body.push(Instr::End);
    }

    /// `while cond { body }`. `cond` is re-evaluated each iteration.
    pub fn while_loop(&mut self, cond: impl Fn() -> Expr, body: impl FnOnce(&mut DslFunc)) {
        self.body.push(Instr::Block(BlockType::Empty));
        let c = cond();
        assert_eq!(c.ty(), ValType::I32, "while condition must be i32");
        self.body.extend(c.into_code());
        self.body.push(Instr::I32Eqz);
        self.body.push(Instr::BrIf(0));
        self.body.push(Instr::Loop(BlockType::Empty));
        body(self);
        let c = cond();
        self.body.extend(c.into_code());
        self.body.push(Instr::BrIf(0));
        self.body.push(Instr::End);
        self.body.push(Instr::End);
    }

    /// `if cond { then }`.
    pub fn if_then(&mut self, cond: Expr, then: impl FnOnce(&mut DslFunc)) {
        assert_eq!(cond.ty(), ValType::I32, "if condition must be i32");
        self.body.extend(cond.into_code());
        self.body.push(Instr::If(BlockType::Empty));
        then(self);
        self.body.push(Instr::End);
    }

    /// `if cond { then } else { els }`.
    pub fn if_else(
        &mut self,
        cond: Expr,
        then: impl FnOnce(&mut DslFunc),
        els: impl FnOnce(&mut DslFunc),
    ) {
        assert_eq!(cond.ty(), ValType::I32, "if condition must be i32");
        self.body.extend(cond.into_code());
        self.body.push(Instr::If(BlockType::Empty));
        then(self);
        self.body.push(Instr::Else);
        els(self);
        self.body.push(Instr::End);
    }

    /// Return `e` from the function.
    ///
    /// # Panics
    /// Panics if the type does not match the declared result.
    pub fn ret(&mut self, e: Expr) {
        assert_eq!(Some(e.ty()), self.result, "return type mismatch");
        self.body.extend(e.into_code());
        self.body.push(Instr::Return);
    }

    /// Grow linear memory by `pages` (drops the result).
    pub fn memory_grow(&mut self, pages: Expr) {
        self.body.extend(pages.into_code());
        self.body.push(Instr::MemoryGrow);
        self.body.push(Instr::Drop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{f64, i32};

    #[test]
    fn locals_number_after_params() {
        let mut f = DslFunc::new("f", &[ValType::I32, ValType::F64], None);
        let a = f.local_i32();
        let b = f.local_f64();
        assert_eq!(a.idx, 2);
        assert_eq!(b.idx, 3);
        assert_eq!(f.param(1).ty(), ValType::F64);
    }

    #[test]
    fn for_loop_emits_balanced_blocks() {
        let mut f = DslFunc::new("f", &[], None);
        let i = f.local_i32();
        let acc = f.local_f64();
        f.for_i32(i, i32(0), i32(10), |f| {
            f.assign(acc, acc.get() + f64(1.0));
        });
        let opens = f.body.iter().filter(|x| x.is_block_start()).count();
        let ends = f.body.iter().filter(|x| matches!(x, Instr::End)).count();
        assert_eq!(opens, ends);
        assert_eq!(opens, 2); // block + loop
    }

    #[test]
    #[should_panic(expected = "assign type mismatch")]
    fn assign_checks_types() {
        let mut f = DslFunc::new("f", &[], None);
        let v = f.local_i32();
        f.assign(v, f64(1.0));
    }
}
