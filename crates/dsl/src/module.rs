//! Assembling DSL functions into a wasm [`Module`].

use crate::expr::Expr;
use crate::func::DslFunc;
use lb_wasm::builder::ModuleBuilder;
use lb_wasm::instr::Instr;
use lb_wasm::types::{FuncType, ValType};
use lb_wasm::Module;

/// A reference to a declared function, usable for `call`s before the body
/// is defined (enabling mutual recursion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnRef {
    idx: u32,
    result: Option<ValType>,
}

impl FnRef {
    /// The function index this reference will have in the final module.
    pub fn index(&self) -> u32 {
        self.idx
    }
}

/// Builder assembling a kernel module from DSL functions.
#[derive(Debug, Default)]
pub struct KernelModule {
    sigs: Vec<(Vec<ValType>, Option<ValType>)>,
    names: Vec<String>,
    bodies: Vec<Option<DslFunc>>,
    exports: Vec<(String, u32)>,
    pages: u32,
    max_pages: Option<u32>,
}

impl KernelModule {
    /// An empty kernel module with no memory.
    pub fn new() -> KernelModule {
        KernelModule::default()
    }

    /// Declare the module's linear memory.
    pub fn memory(&mut self, pages: u32, max_pages: Option<u32>) -> &mut Self {
        self.pages = pages;
        self.max_pages = max_pages;
        self
    }

    /// Declare a function signature, returning a callable reference.
    pub fn declare(&mut self, name: &str, params: &[ValType], result: Option<ValType>) -> FnRef {
        self.sigs.push((params.to_vec(), result));
        self.names.push(name.to_string());
        self.bodies.push(None);
        FnRef {
            idx: (self.sigs.len() - 1) as u32,
            result,
        }
    }

    /// Define the body of a declared function.
    ///
    /// # Panics
    /// Panics if the signature differs from the declaration or the body
    /// was already defined.
    pub fn define(&mut self, fr: FnRef, f: DslFunc) {
        let (params, result) = &self.sigs[fr.idx as usize];
        assert_eq!(
            &f.params, params,
            "define: parameter mismatch for {}",
            f.name
        );
        assert_eq!(&f.result, result, "define: result mismatch for {}", f.name);
        let slot = &mut self.bodies[fr.idx as usize];
        assert!(slot.is_none(), "function {} defined twice", f.name);
        *slot = Some(f);
    }

    /// Declare + define + export in one step.
    pub fn add_exported(&mut self, f: DslFunc) -> FnRef {
        let fr = self.declare(&f.name.clone(), &f.params.clone(), f.result);
        let name = f.name.clone();
        self.define(fr, f);
        self.exports.push((name, fr.idx));
        fr
    }

    /// Declare + define without exporting.
    pub fn add(&mut self, f: DslFunc) -> FnRef {
        let fr = self.declare(&f.name.clone(), &f.params.clone(), f.result);
        self.define(fr, f);
        fr
    }

    /// Export a declared function under its declared name.
    pub fn export(&mut self, fr: FnRef) {
        self.exports
            .push((self.names[fr.idx as usize].clone(), fr.idx));
    }

    /// Build the final module.
    ///
    /// # Panics
    /// Panics if any declared function lacks a body.
    pub fn finish(self) -> Module {
        let mut mb = ModuleBuilder::new();
        if self.pages > 0 {
            mb.memory(self.pages, self.max_pages);
        }
        let mut ids = Vec::new();
        for (i, body) in self.bodies.into_iter().enumerate() {
            let f = body.unwrap_or_else(|| panic!("function {} never defined", self.names[i]));
            let id = mb.begin_func(
                &f.name,
                FuncType::new(f.params.clone(), f.result.into_iter().collect()),
            );
            {
                let mut fb = mb.func_mut(id);
                for ty in &f.locals {
                    fb.local(*ty);
                }
                fb.emit_all(f.body);
            }
            ids.push(id);
        }
        for (name, idx) in self.exports {
            mb.export_func(&name, ids[idx as usize]);
        }
        mb.finish()
    }
}

/// A call expression `fr(args...)` producing the callee's result value.
///
/// # Panics
/// Panics if the callee returns no value (use [`DslFunc::stmt`]-style
/// [`call_stmt`] for void calls).
pub fn call(fr: FnRef, args: Vec<Expr>) -> Expr {
    let result = fr
        .result
        .expect("call() requires a result; use call_stmt for void functions");
    let mut code = Vec::new();
    for a in args {
        code.extend(a.into_code());
    }
    code.push(Instr::Call(fr.idx));
    Expr::from_raw(code, result)
}

/// Emit a void call statement on `f`.
///
/// # Panics
/// Panics if the callee returns a value (it would corrupt the stack).
pub fn call_stmt(f: &mut DslFunc, fr: FnRef, args: Vec<Expr>) {
    assert!(
        fr.result.is_none(),
        "call_stmt on a function returning a value"
    );
    let mut code = Vec::new();
    for a in args {
        code.extend(a.into_code());
    }
    code.push(Instr::Call(fr.idx));
    f.stmt(code);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::i32 as ci32;
    use lb_wasm::validate::validate;

    #[test]
    fn build_and_validate_mutually_recursive() {
        let mut km = KernelModule::new();
        let is_even = km.declare("is_even", &[ValType::I32], Some(ValType::I32));
        let is_odd = km.declare("is_odd", &[ValType::I32], Some(ValType::I32));

        let mut fe = DslFunc::new("is_even", &[ValType::I32], Some(ValType::I32));
        {
            let n = fe.param(0);
            fe.if_then(n.get().eqz(), |f| f.ret(ci32(1)));
            fe.ret(call(is_odd, vec![n.get() - ci32(1)]));
            fe.raw([Instr::Unreachable]);
        }
        km.define(is_even, fe);

        let mut fo = DslFunc::new("is_odd", &[ValType::I32], Some(ValType::I32));
        {
            let n = fo.param(0);
            fo.if_then(n.get().eqz(), |f| f.ret(ci32(0)));
            fo.ret(call(is_even, vec![n.get() - ci32(1)]));
            fo.raw([Instr::Unreachable]);
        }
        km.define(is_odd, fo);
        km.export(is_even);

        let m = km.finish();
        validate(&m).expect("module should validate");
        assert!(m.exported_func("is_even").is_some());
    }

    #[test]
    #[should_panic(expected = "never defined")]
    fn undefined_function_panics() {
        let mut km = KernelModule::new();
        km.declare("ghost", &[], None);
        let _ = km.finish();
    }
}
