//! Linear-memory layout: a bump allocator handing out typed array views.
//!
//! Kernels declare their arrays once against a [`Layout`]; the layout then
//! reports the number of wasm pages the module must commit, and the array
//! handles lower indexing math (`base + i*size`, row-major for 2-D/3-D)
//! into wasm address expressions with the static base folded into the
//! memarg offset — exactly how clang lays out global arrays for
//! wasm32-wasi.

use crate::expr::{i32 as ci32, Expr};
use crate::func::DslFunc;
use lb_wasm::instr::{Instr, MemArg};
use lb_wasm::types::ValType;
use lb_wasm::PAGE_SIZE;

/// A bump allocator over the module's linear memory.
#[derive(Debug, Default)]
pub struct Layout {
    next: u32,
}

impl Layout {
    /// An empty layout starting at address 64 (address 0 is kept unused so
    /// stray null-ish accesses are visible in testing).
    pub fn new() -> Layout {
        Layout { next: 64 }
    }

    fn alloc(&mut self, bytes: u32, align: u32) -> u32 {
        let base = (self.next + align - 1) & !(align - 1);
        self.next = base + bytes;
        base
    }

    /// Total bytes allocated so far.
    pub fn bytes(&self) -> u32 {
        self.next
    }

    /// Number of 64 KiB wasm pages needed to hold every allocation.
    pub fn pages(&self) -> u32 {
        self.next.div_ceil(PAGE_SIZE as u32).max(1)
    }

    /// A 1-D array of `n` elements.
    pub fn array(&mut self, ty: ValType, n: u32) -> Arr {
        let esize = ty.size_bytes();
        let base = self.alloc(n * esize, esize.max(8));
        Arr { base, ty, len: n }
    }

    /// A 1-D f64 array.
    pub fn array_f64(&mut self, n: u32) -> Arr {
        self.array(ValType::F64, n)
    }

    /// A 1-D i32 array.
    pub fn array_i32(&mut self, n: u32) -> Arr {
        self.array(ValType::I32, n)
    }

    /// A 2-D row-major array.
    pub fn array2(&mut self, ty: ValType, rows: u32, cols: u32) -> Arr2 {
        let a = self.array(ty, rows * cols);
        Arr2 { arr: a, cols }
    }

    /// A 2-D row-major f64 array.
    pub fn array2_f64(&mut self, rows: u32, cols: u32) -> Arr2 {
        self.array2(ValType::F64, rows, cols)
    }

    /// A 3-D row-major array.
    pub fn array3(&mut self, ty: ValType, d0: u32, d1: u32, d2: u32) -> Arr3 {
        let a = self.array(ty, d0 * d1 * d2);
        Arr3 { arr: a, d1, d2 }
    }

    /// A 3-D row-major f64 array.
    pub fn array3_f64(&mut self, d0: u32, d1: u32, d2: u32) -> Arr3 {
        self.array3(ValType::F64, d0, d1, d2)
    }
}

fn load_instr(ty: ValType, offset: u32) -> Instr {
    let m = MemArg::offset(offset);
    match ty {
        ValType::I32 => Instr::I32Load(m),
        ValType::I64 => Instr::I64Load(m),
        ValType::F32 => Instr::F32Load(m),
        ValType::F64 => Instr::F64Load(m),
    }
}

fn store_instr(ty: ValType, offset: u32) -> Instr {
    let m = MemArg::offset(offset);
    match ty {
        ValType::I32 => Instr::I32Store(m),
        ValType::I64 => Instr::I64Store(m),
        ValType::F32 => Instr::F32Store(m),
        ValType::F64 => Instr::F64Store(m),
    }
}

fn scale(idx: Expr, esize: u32) -> Expr {
    debug_assert!(esize.is_power_of_two());
    let shift = esize.trailing_zeros() as i32;
    if shift == 0 {
        idx
    } else {
        idx.shl(ci32(shift))
    }
}

/// A 1-D typed array view over linear memory.
#[derive(Debug, Clone, Copy)]
pub struct Arr {
    base: u32,
    ty: ValType,
    len: u32,
}

impl Arr {
    /// Base byte address.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Element count.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the array has zero elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Element type.
    pub fn ty(&self) -> ValType {
        self.ty
    }

    /// Load `self[idx]`. The array base becomes the constant memarg offset.
    pub fn at(&self, idx: Expr) -> Expr {
        assert_eq!(idx.ty(), ValType::I32, "index must be i32");
        let mut code = scale(idx, self.ty.size_bytes()).into_code();
        code.push(load_instr(self.ty, self.base));
        Expr::from_raw(code, self.ty)
    }

    /// Store `self[idx] = val` as a statement on `f`.
    ///
    /// # Panics
    /// Panics if `val`'s type differs from the element type.
    pub fn set(&self, f: &mut DslFunc, idx: Expr, val: Expr) {
        assert_eq!(val.ty(), self.ty, "store type mismatch");
        let mut code = scale(idx, self.ty.size_bytes()).into_code();
        code.extend(val.into_code());
        code.push(store_instr(self.ty, self.base));
        f.stmt(code);
    }
}

/// A 2-D row-major typed array view.
#[derive(Debug, Clone, Copy)]
pub struct Arr2 {
    arr: Arr,
    cols: u32,
}

impl Arr2 {
    /// Number of columns (row stride in elements).
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Base byte address.
    pub fn base(&self) -> u32 {
        self.arr.base
    }

    /// Flatten an `(i, j)` pair into a linear element index.
    fn index(&self, i: Expr, j: Expr) -> Expr {
        i.mul(ci32(self.cols as i32)).add(j)
    }

    /// Load `self[i][j]`.
    pub fn at(&self, i: Expr, j: Expr) -> Expr {
        self.arr.at(self.index(i, j))
    }

    /// The flattened 1-D view (row-major), e.g. for checksumming.
    pub fn flat(&self) -> Arr {
        self.arr
    }

    /// Store `self[i][j] = val`.
    pub fn set(&self, f: &mut DslFunc, i: Expr, j: Expr, val: Expr) {
        self.arr.set(f, self.index(i, j), val);
    }
}

/// A 3-D row-major typed array view.
#[derive(Debug, Clone, Copy)]
pub struct Arr3 {
    arr: Arr,
    d1: u32,
    d2: u32,
}

impl Arr3 {
    /// Base byte address.
    pub fn base(&self) -> u32 {
        self.arr.base
    }

    fn index(&self, i: Expr, j: Expr, k: Expr) -> Expr {
        i.mul(ci32((self.d1 * self.d2) as i32))
            .add(j.mul(ci32(self.d2 as i32)))
            .add(k)
    }

    /// Load `self[i][j][k]`.
    pub fn at(&self, i: Expr, j: Expr, k: Expr) -> Expr {
        self.arr.at(self.index(i, j, k))
    }

    /// The flattened 1-D view (row-major), e.g. for checksumming.
    pub fn flat(&self) -> Arr {
        self.arr
    }

    /// Store `self[i][j][k] = val`.
    pub fn set(&self, f: &mut DslFunc, i: Expr, j: Expr, k: Expr, val: Expr) {
        self.arr.set(f, self.index(i, j, k), val);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_is_aligned_and_disjoint() {
        let mut l = Layout::new();
        let a = l.array_f64(10);
        let b = l.array_i32(3);
        let c = l.array_f64(4);
        assert_eq!(a.base() % 8, 0);
        assert!(b.base() >= a.base() + 80);
        assert_eq!(c.base() % 8, 0);
        assert!(c.base() >= b.base() + 12);
        assert!(l.bytes() >= c.base() + 32);
    }

    #[test]
    fn pages_round_up() {
        let mut l = Layout::new();
        let _ = l.array_f64(10_000); // 80 KB → 2 pages
        assert_eq!(l.pages(), 2);
        let empty = Layout::new();
        assert_eq!(empty.pages(), 1);
    }

    #[test]
    fn indexing_emits_shift_and_offset() {
        let mut l = Layout::new();
        let a = l.array_f64(8);
        let e = a.at(crate::expr::i32(3));
        let code = e.into_code();
        assert_eq!(code[0], Instr::I32Const(3));
        assert_eq!(code[1], Instr::I32Const(3)); // shift amount for 8-byte
        assert_eq!(code[2], Instr::I32Shl);
        match &code[3] {
            Instr::F64Load(m) => assert_eq!(m.offset, a.base()),
            other => panic!("expected load, got {other:?}"),
        }
    }

    #[test]
    fn arr2_flattens_row_major() {
        let mut l = Layout::new();
        let m = l.array2_f64(4, 5);
        assert_eq!(m.cols(), 5);
        // No functional test here (engines cover it); just type sanity.
        assert_eq!(
            m.at(crate::expr::i32(1), crate::expr::i32(2)).ty(),
            ValType::F64
        );
    }
}
