//! # lb-dsl — a typed kernel-authoring DSL lowering to wasm
//!
//! The paper compiles C benchmarks (PolyBench/C, SPEC) to wasm with Clang.
//! No C→wasm toolchain is available to this reproduction, so benchmark
//! kernels are authored once in this small typed DSL and lowered to
//! `lb-wasm` bytecode; their native twins are the same kernels in plain
//! Rust (see [`kernel::Benchmark`]). The DSL covers what the C kernels
//! need: typed scalars, 1/2/3-D row-major arrays over linear memory,
//! counted loops, conditionals, and function calls.
//!
//! ## Example: a dot-product kernel
//!
//! ```rust
//! use lb_dsl::expr::i32 as ci;
//! use lb_dsl::func::DslFunc;
//! use lb_dsl::layout::Layout;
//! use lb_dsl::module::KernelModule;
//! use lb_wasm::types::ValType;
//!
//! let n = 64u32;
//! let mut layout = Layout::new();
//! let a = layout.array_f64(n);
//! let b = layout.array_f64(n);
//!
//! let mut f = DslFunc::new("dot", &[], Some(ValType::F64));
//! let i = f.local_i32();
//! let acc = f.local_f64();
//! f.for_i32(i, ci(0), ci(n as i32), |f| {
//!     f.assign(acc, acc.get() + a.at(i.get()) * b.at(i.get()));
//! });
//! f.ret(acc.get());
//!
//! let mut km = KernelModule::new();
//! km.memory(layout.pages(), Some(layout.pages()));
//! km.add_exported(f);
//! let module = km.finish();
//! assert!(lb_wasm::validate(&module).is_ok());
//! ```

#![warn(missing_docs)]

pub mod expr;
pub mod func;
pub mod kernel;
pub mod layout;
pub mod module;

pub use expr::Expr;
pub use func::{DslFunc, Var};
pub use kernel::{Benchmark, NativeFactory, NativeKernel};
pub use layout::{Arr, Arr2, Arr3, Layout};
pub use module::{call, call_stmt, FnRef, KernelModule};
