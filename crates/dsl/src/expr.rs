//! Typed expression values that lower to wasm instruction sequences.
//!
//! An [`Expr`] is a small instruction program that leaves exactly one value
//! of a known type on the wasm stack. Combinators type-check operand types
//! at kernel-construction time, so authoring mistakes surface as panics
//! when the benchmark suite is built, not as validation errors later.

use lb_wasm::instr::Instr;
use lb_wasm::types::ValType;

/// An expression: instructions leaving one value of type `ty` on the stack.
#[derive(Debug, Clone)]
pub struct Expr {
    pub(crate) code: Vec<Instr>,
    pub(crate) ty: ValType,
}

impl Expr {
    /// Build from raw parts (for extension points).
    pub fn from_raw(code: Vec<Instr>, ty: ValType) -> Expr {
        Expr { code, ty }
    }

    /// The expression's wasm type.
    pub fn ty(&self) -> ValType {
        self.ty
    }

    /// The lowered instructions.
    pub fn into_code(self) -> Vec<Instr> {
        self.code
    }

    fn bin(mut self, rhs: Expr, op: Instr, result: ValType) -> Expr {
        assert_eq!(
            self.ty, rhs.ty,
            "operand type mismatch: {} vs {}",
            self.ty, rhs.ty
        );
        self.code.extend(rhs.code);
        self.code.push(op);
        Expr {
            code: self.code,
            ty: result,
        }
    }

    fn un(mut self, op: Instr, result: ValType) -> Expr {
        self.code.push(op);
        Expr {
            code: self.code,
            ty: result,
        }
    }

    fn pick4(&self, i32_: Instr, i64_: Instr, f32_: Instr, f64_: Instr) -> Instr {
        match self.ty {
            ValType::I32 => i32_,
            ValType::I64 => i64_,
            ValType::F32 => f32_,
            ValType::F64 => f64_,
        }
    }

    // ── arithmetic (all four types) ────────────────────────────────

    /// Addition.
    pub fn add(self, rhs: Expr) -> Expr {
        let op = self.pick4(Instr::I32Add, Instr::I64Add, Instr::F32Add, Instr::F64Add);
        let ty = self.ty;
        self.bin(rhs, op, ty)
    }

    /// Subtraction.
    pub fn sub(self, rhs: Expr) -> Expr {
        let op = self.pick4(Instr::I32Sub, Instr::I64Sub, Instr::F32Sub, Instr::F64Sub);
        let ty = self.ty;
        self.bin(rhs, op, ty)
    }

    /// Multiplication.
    pub fn mul(self, rhs: Expr) -> Expr {
        let op = self.pick4(Instr::I32Mul, Instr::I64Mul, Instr::F32Mul, Instr::F64Mul);
        let ty = self.ty;
        self.bin(rhs, op, ty)
    }

    /// Float division (f32/f64 only).
    pub fn fdiv(self, rhs: Expr) -> Expr {
        let op = match self.ty {
            ValType::F32 => Instr::F32Div,
            ValType::F64 => Instr::F64Div,
            t => panic!("fdiv on non-float type {t}"),
        };
        let ty = self.ty;
        self.bin(rhs, op, ty)
    }

    /// Signed integer division (i32/i64 only).
    pub fn div_s(self, rhs: Expr) -> Expr {
        let op = match self.ty {
            ValType::I32 => Instr::I32DivS,
            ValType::I64 => Instr::I64DivS,
            t => panic!("div_s on non-integer type {t}"),
        };
        let ty = self.ty;
        self.bin(rhs, op, ty)
    }

    /// Signed remainder (i32/i64 only).
    pub fn rem_s(self, rhs: Expr) -> Expr {
        let op = match self.ty {
            ValType::I32 => Instr::I32RemS,
            ValType::I64 => Instr::I64RemS,
            t => panic!("rem_s on non-integer type {t}"),
        };
        let ty = self.ty;
        self.bin(rhs, op, ty)
    }

    /// Unsigned remainder (i32/i64 only).
    pub fn rem_u(self, rhs: Expr) -> Expr {
        let op = match self.ty {
            ValType::I32 => Instr::I32RemU,
            ValType::I64 => Instr::I64RemU,
            t => panic!("rem_u on non-integer type {t}"),
        };
        let ty = self.ty;
        self.bin(rhs, op, ty)
    }

    /// Bitwise and (integers).
    pub fn and(self, rhs: Expr) -> Expr {
        let op = match self.ty {
            ValType::I32 => Instr::I32And,
            ValType::I64 => Instr::I64And,
            t => panic!("and on non-integer type {t}"),
        };
        let ty = self.ty;
        self.bin(rhs, op, ty)
    }

    /// Bitwise or (integers).
    pub fn or(self, rhs: Expr) -> Expr {
        let op = match self.ty {
            ValType::I32 => Instr::I32Or,
            ValType::I64 => Instr::I64Or,
            t => panic!("or on non-integer type {t}"),
        };
        let ty = self.ty;
        self.bin(rhs, op, ty)
    }

    /// Bitwise xor (integers).
    pub fn xor(self, rhs: Expr) -> Expr {
        let op = match self.ty {
            ValType::I32 => Instr::I32Xor,
            ValType::I64 => Instr::I64Xor,
            t => panic!("xor on non-integer type {t}"),
        };
        let ty = self.ty;
        self.bin(rhs, op, ty)
    }

    /// Shift left (integers).
    pub fn shl(self, rhs: Expr) -> Expr {
        let op = match self.ty {
            ValType::I32 => Instr::I32Shl,
            ValType::I64 => Instr::I64Shl,
            t => panic!("shl on non-integer type {t}"),
        };
        let ty = self.ty;
        self.bin(rhs, op, ty)
    }

    /// Logical shift right (integers).
    pub fn shr_u(self, rhs: Expr) -> Expr {
        let op = match self.ty {
            ValType::I32 => Instr::I32ShrU,
            ValType::I64 => Instr::I64ShrU,
            t => panic!("shr_u on non-integer type {t}"),
        };
        let ty = self.ty;
        self.bin(rhs, op, ty)
    }

    /// Arithmetic shift right (integers).
    pub fn shr_s(self, rhs: Expr) -> Expr {
        let op = match self.ty {
            ValType::I32 => Instr::I32ShrS,
            ValType::I64 => Instr::I64ShrS,
            t => panic!("shr_s on non-integer type {t}"),
        };
        let ty = self.ty;
        self.bin(rhs, op, ty)
    }

    /// Square root (floats).
    pub fn sqrt(self) -> Expr {
        let op = match self.ty {
            ValType::F32 => Instr::F32Sqrt,
            ValType::F64 => Instr::F64Sqrt,
            t => panic!("sqrt on non-float type {t}"),
        };
        let ty = self.ty;
        self.un(op, ty)
    }

    /// Absolute value (floats).
    pub fn abs(self) -> Expr {
        let op = match self.ty {
            ValType::F32 => Instr::F32Abs,
            ValType::F64 => Instr::F64Abs,
            t => panic!("abs on non-float type {t}"),
        };
        let ty = self.ty;
        self.un(op, ty)
    }

    /// Negation (floats).
    pub fn neg(self) -> Expr {
        let op = match self.ty {
            ValType::F32 => Instr::F32Neg,
            ValType::F64 => Instr::F64Neg,
            t => panic!("neg on non-float type {t}"),
        };
        let ty = self.ty;
        self.un(op, ty)
    }

    /// NaN-propagating maximum (floats).
    pub fn max(self, rhs: Expr) -> Expr {
        let op = match self.ty {
            ValType::F32 => Instr::F32Max,
            ValType::F64 => Instr::F64Max,
            t => panic!("max on non-float type {t}"),
        };
        let ty = self.ty;
        self.bin(rhs, op, ty)
    }

    /// NaN-propagating minimum (floats).
    pub fn min(self, rhs: Expr) -> Expr {
        let op = match self.ty {
            ValType::F32 => Instr::F32Min,
            ValType::F64 => Instr::F64Min,
            t => panic!("min on non-float type {t}"),
        };
        let ty = self.ty;
        self.bin(rhs, op, ty)
    }

    // ── comparisons (result i32) ───────────────────────────────────

    /// Equality.
    pub fn eq(self, rhs: Expr) -> Expr {
        let op = self.pick4(Instr::I32Eq, Instr::I64Eq, Instr::F32Eq, Instr::F64Eq);
        self.bin(rhs, op, ValType::I32)
    }

    /// Inequality.
    pub fn ne(self, rhs: Expr) -> Expr {
        let op = self.pick4(Instr::I32Ne, Instr::I64Ne, Instr::F32Ne, Instr::F64Ne);
        self.bin(rhs, op, ValType::I32)
    }

    /// Signed/ordered less-than.
    pub fn lt(self, rhs: Expr) -> Expr {
        let op = self.pick4(Instr::I32LtS, Instr::I64LtS, Instr::F32Lt, Instr::F64Lt);
        self.bin(rhs, op, ValType::I32)
    }

    /// Signed/ordered less-or-equal.
    pub fn le(self, rhs: Expr) -> Expr {
        let op = self.pick4(Instr::I32LeS, Instr::I64LeS, Instr::F32Le, Instr::F64Le);
        self.bin(rhs, op, ValType::I32)
    }

    /// Signed/ordered greater-than.
    pub fn gt(self, rhs: Expr) -> Expr {
        let op = self.pick4(Instr::I32GtS, Instr::I64GtS, Instr::F32Gt, Instr::F64Gt);
        self.bin(rhs, op, ValType::I32)
    }

    /// Signed/ordered greater-or-equal.
    pub fn ge(self, rhs: Expr) -> Expr {
        let op = self.pick4(Instr::I32GeS, Instr::I64GeS, Instr::F32Ge, Instr::F64Ge);
        self.bin(rhs, op, ValType::I32)
    }

    /// Unsigned less-than (integers).
    pub fn lt_u(self, rhs: Expr) -> Expr {
        let op = match self.ty {
            ValType::I32 => Instr::I32LtU,
            ValType::I64 => Instr::I64LtU,
            t => panic!("lt_u on non-integer type {t}"),
        };
        self.bin(rhs, op, ValType::I32)
    }

    /// i32 == 0 test.
    pub fn eqz(self) -> Expr {
        let op = match self.ty {
            ValType::I32 => Instr::I32Eqz,
            ValType::I64 => Instr::I64Eqz,
            t => panic!("eqz on non-integer type {t}"),
        };
        self.un(op, ValType::I32)
    }

    // ── conversions ────────────────────────────────────────────────

    /// Convert to f64 (signed for integers; promote for f32).
    pub fn to_f64(self) -> Expr {
        let op = match self.ty {
            ValType::I32 => Instr::F64ConvertI32S,
            ValType::I64 => Instr::F64ConvertI64S,
            ValType::F32 => Instr::F64PromoteF32,
            ValType::F64 => return self,
        };
        self.un(op, ValType::F64)
    }

    /// Convert to f32 (signed for integers; demote for f64).
    pub fn to_f32(self) -> Expr {
        let op = match self.ty {
            ValType::I32 => Instr::F32ConvertI32S,
            ValType::I64 => Instr::F32ConvertI64S,
            ValType::F64 => Instr::F32DemoteF64,
            ValType::F32 => return self,
        };
        self.un(op, ValType::F32)
    }

    /// Convert to i32 (trapping signed truncation for floats; wrap for i64).
    pub fn to_i32(self) -> Expr {
        let op = match self.ty {
            ValType::I64 => Instr::I32WrapI64,
            ValType::F32 => Instr::I32TruncF32S,
            ValType::F64 => Instr::I32TruncF64S,
            ValType::I32 => return self,
        };
        self.un(op, ValType::I32)
    }

    /// Convert to i64 (sign-extend i32; trapping truncation for floats).
    pub fn to_i64(self) -> Expr {
        let op = match self.ty {
            ValType::I32 => Instr::I64ExtendI32S,
            ValType::F32 => Instr::I64TruncF32S,
            ValType::F64 => Instr::I64TruncF64S,
            ValType::I64 => return self,
        };
        self.un(op, ValType::I64)
    }

    /// `select(cond, self, other)` — both branches evaluated.
    pub fn select(self, other: Expr, cond: Expr) -> Expr {
        assert_eq!(self.ty, other.ty, "select branch types differ");
        assert_eq!(cond.ty, ValType::I32, "select condition must be i32");
        let ty = self.ty;
        let mut code = self.code;
        code.extend(other.code);
        code.extend(cond.code);
        code.push(Instr::Select);
        Expr { code, ty }
    }
}

/// An i32 constant.
pub fn i32(v: i32) -> Expr {
    Expr {
        code: vec![Instr::I32Const(v)],
        ty: ValType::I32,
    }
}

/// An i64 constant.
pub fn i64(v: i64) -> Expr {
    Expr {
        code: vec![Instr::I64Const(v)],
        ty: ValType::I64,
    }
}

/// An f32 constant.
pub fn f32(v: f32) -> Expr {
    Expr {
        code: vec![Instr::F32Const(v)],
        ty: ValType::F32,
    }
}

/// An f64 constant.
pub fn f64(v: f64) -> Expr {
    Expr {
        code: vec![Instr::F64Const(v)],
        ty: ValType::F64,
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::add(self, rhs)
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::sub(self, rhs)
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::mul(self, rhs)
    }
}

impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        match self.ty {
            ValType::F32 | ValType::F64 => self.fdiv(rhs),
            _ => self.div_s(rhs),
        }
    }
}

impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        match self.ty {
            ValType::F32 | ValType::F64 => Expr::neg(self),
            ValType::I32 => i32(0).sub(self),
            ValType::I64 => i64(0).sub(self),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_types_check() {
        let e = i32(1) + i32(2) * i32(3);
        assert_eq!(e.ty(), ValType::I32);
        assert_eq!(e.into_code().len(), 5);

        let f = f64(1.0) / f64(2.0);
        assert_eq!(f.ty(), ValType::F64);
    }

    #[test]
    #[should_panic(expected = "operand type mismatch")]
    fn mixed_types_panic() {
        let _ = i32(1) + f64(2.0).to_i64().to_i32().to_f64();
    }

    #[test]
    fn comparisons_yield_i32() {
        assert_eq!(f64(1.0).lt(f64(2.0)).ty(), ValType::I32);
        assert_eq!(i64(1).ge(i64(2)).ty(), ValType::I32);
    }

    #[test]
    fn conversions_are_idempotent() {
        assert_eq!(f64(1.0).to_f64().into_code().len(), 1);
        assert_eq!(i32(1).to_f64().into_code().len(), 2);
    }

    #[test]
    fn neg_of_int_uses_zero_sub() {
        let e = -i32(5);
        let code = e.into_code();
        assert_eq!(code[0], Instr::I32Const(0));
        assert_eq!(code.last(), Some(&Instr::I32Sub));
    }
}
