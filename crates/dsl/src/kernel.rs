//! The benchmark-kernel convention shared by the PolyBench and SPEC-proxy
//! suites and consumed by the harness.
//!
//! A benchmark is a wasm module exporting three niladic functions —
//!
//! * `init` — fill input arrays with deterministic data,
//! * `kernel` — the timed computation,
//! * `checksum` — reduce the outputs to one `f64`,
//!
//! — plus a factory for the equivalent native-Rust implementation (the
//! paper's "native Clang/GCC" baseline). Checksums from the wasm and
//! native sides must agree, which the differential tests assert.

use lb_wasm::Module;

/// Native implementation of a benchmark kernel.
pub trait NativeKernel: Send {
    /// Fill inputs with the same deterministic data as the wasm `init`.
    fn init(&mut self);
    /// The timed computation (same work as the wasm `kernel`).
    fn kernel(&mut self);
    /// Reduce outputs to a checksum (same reduction as wasm `checksum`).
    fn checksum(&self) -> f64;
}

/// Factory producing fresh native kernel states.
pub type NativeFactory = Box<dyn Fn() -> Box<dyn NativeKernel> + Send + Sync>;

/// One benchmark: a wasm module plus its native twin.
pub struct Benchmark {
    /// Short name (e.g. `"gemm"`, `"mcf"`).
    pub name: String,
    /// Suite label (`"polybench"` or `"spec"`).
    pub suite: &'static str,
    /// The wasm module exporting `init`/`kernel`/`checksum`.
    pub module: Module,
    /// Factory for the native implementation.
    pub native: NativeFactory,
}

impl Benchmark {
    /// Construct a benchmark.
    pub fn new(
        name: impl Into<String>,
        suite: &'static str,
        module: Module,
        native: NativeFactory,
    ) -> Benchmark {
        Benchmark {
            name: name.into(),
            suite,
            module,
            native,
        }
    }

    /// Run the native twin once, returning its checksum.
    pub fn native_checksum(&self) -> f64 {
        let mut k = (self.native)();
        k.init();
        k.kernel();
        k.checksum()
    }
}

impl std::fmt::Debug for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Benchmark")
            .field("name", &self.name)
            .field("suite", &self.suite)
            .field("instrs", &self.module.instr_count())
            .finish()
    }
}

/// Relative tolerance for checksum agreement between wasm and native.
///
/// Both sides perform identical IEEE operations in the same order, so they
/// agree bit-for-bit in practice; the epsilon absorbs printing round-trips.
pub const CHECKSUM_RELATIVE_TOLERANCE: f64 = 1e-9;

/// Whether two checksums agree within tolerance.
pub fn checksums_match(a: f64, b: f64) -> bool {
    if a == b {
        return true;
    }
    let denom = a.abs().max(b.abs()).max(1.0);
    ((a - b) / denom).abs() < CHECKSUM_RELATIVE_TOLERANCE
}

/// The shared checksum weight: `(index % 13 + 1)`; catches element
/// transposition that a plain sum would hide.
pub fn weight(idx: usize) -> f64 {
    ((idx % 13) + 1) as f64
}

/// Native checksum over f64 slices, matching [`checksum_fn`].
pub fn checksum_slices(slices: &[&[f64]]) -> f64 {
    let mut acc = 0.0f64;
    for s in slices {
        for (i, v) in s.iter().enumerate() {
            acc += v * weight(i);
        }
    }
    acc
}

/// Native checksum over i32 slices, matching [`checksum_fn_i32`].
pub fn checksum_slices_i32(slices: &[&[i32]]) -> f64 {
    let mut acc = 0.0f64;
    for s in slices {
        for (i, v) in s.iter().enumerate() {
            acc += f64::from(*v) * weight(i);
        }
    }
    acc
}

/// Build the wasm `checksum` function over flattened f64 arrays, matching
/// [`checksum_slices`].
pub fn checksum_fn(arrays: &[crate::Arr]) -> crate::DslFunc {
    use crate::expr::i32 as ci;
    let mut f = crate::DslFunc::new("checksum", &[], Some(lb_wasm::types::ValType::F64));
    let acc = f.local_f64();
    let i = f.local_i32();
    for a in arrays {
        assert_eq!(
            a.ty(),
            lb_wasm::types::ValType::F64,
            "checksum over f64 arrays only"
        );
        f.for_i32(i, ci(0), ci(a.len() as i32), |f| {
            let w = i.get().rem_s(ci(13)).add(ci(1)).to_f64();
            f.assign(acc, acc.get() + a.at(i.get()) * w);
        });
    }
    f.ret(acc.get());
    f
}

/// Build the wasm `checksum` function over flattened i32 arrays.
pub fn checksum_fn_i32(arrays: &[crate::Arr]) -> crate::DslFunc {
    use crate::expr::i32 as ci;
    let mut f = crate::DslFunc::new("checksum", &[], Some(lb_wasm::types::ValType::F64));
    let acc = f.local_f64();
    let i = f.local_i32();
    for a in arrays {
        assert_eq!(
            a.ty(),
            lb_wasm::types::ValType::I32,
            "i32 checksum over i32 arrays only"
        );
        f.for_i32(i, ci(0), ci(a.len() as i32), |f| {
            let w = i.get().rem_s(ci(13)).add(ci(1)).to_f64();
            f.assign(acc, acc.get() + a.at(i.get()).to_f64() * w);
        });
    }
    f.ret(acc.get());
    f
}

/// A [`NativeKernel`] built from a state struct and three plain functions —
/// the pattern every native twin uses.
pub struct ClosureKernel<S> {
    /// Kernel state (the arrays).
    pub state: S,
    /// Matches the wasm `init`.
    pub init: fn(&mut S),
    /// Matches the wasm `kernel`.
    pub kernel: fn(&mut S),
    /// Matches the wasm `checksum`.
    pub checksum: fn(&S) -> f64,
}

impl<S: Send> NativeKernel for ClosureKernel<S> {
    fn init(&mut self) {
        (self.init)(&mut self.state);
    }
    fn kernel(&mut self) {
        (self.kernel)(&mut self.state);
    }
    fn checksum(&self) -> f64 {
        (self.checksum)(&self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_tolerance() {
        assert!(checksums_match(1.0, 1.0));
        assert!(checksums_match(1e12, 1e12 * (1.0 + 1e-12)));
        assert!(!checksums_match(1.0, 1.1));
        assert!(checksums_match(0.0, 0.0));
        assert!(!checksums_match(0.0, 1e-3));
    }
}
