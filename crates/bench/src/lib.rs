//! # lb-bench — figure/table regeneration
//!
//! One binary per figure in the paper's evaluation (`fig1` … `fig6`) plus
//! `replication` (§4.4's comparisons to prior work). Each binary prints the
//! rows/series the paper plots and optionally writes CSV. Shared CLI:
//!
//! ```text
//! --dataset mini|small|medium   workload size        (default small)
//! --suite polybench|spec|all    benchmark suites     (default all)
//! --iters N --warmup N          measurement lengths
//! --bench NAME                  restrict to one benchmark
//! --csv PATH                    also write CSV
//! --threads a,b,c               thread counts (fig3-5)
//! --measured                    use real threads instead of the
//!                               mm-contention simulator (fig3-5)
//! ```

#![warn(missing_docs)]

pub mod micro;

use lb_dsl::Benchmark;
use lb_harness::EngineSel;
use lb_polybench::common::Dataset;
use lb_spec_proxy::Scale;
use std::collections::HashMap;

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct Args {
    /// Raw key→value flags.
    pub flags: HashMap<String, String>,
    /// Workload size.
    pub dataset: Dataset,
    /// Which suites to run.
    pub suite: String,
    /// Timed iterations per configuration.
    pub iters: u32,
    /// Warm-up iterations.
    pub warmup: u32,
    /// Optional single-benchmark filter.
    pub bench: Option<String>,
    /// Optional CSV output path.
    pub csv: Option<String>,
    /// Thread counts for scaling figures.
    pub threads: Vec<usize>,
    /// Real multithreaded measurement instead of the simulator.
    pub measured: bool,
}

impl Args {
    /// Parse `std::env::args`.
    ///
    /// # Panics
    /// Panics (with a usage message) on malformed flags.
    pub fn parse() -> Args {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let k = argv[i].trim_start_matches("--").to_string();
            if argv[i] == "--measured" {
                flags.insert("measured".into(), "true".into());
                i += 1;
                continue;
            }
            assert!(
                argv[i].starts_with("--") && i + 1 < argv.len(),
                "usage: --key value … (offending: {})",
                argv[i]
            );
            flags.insert(k, argv[i + 1].clone());
            i += 2;
        }
        let dataset = flags
            .get("dataset")
            .map(|s| Dataset::parse(s).expect("dataset: mini|small|medium"))
            .unwrap_or(Dataset::Small);
        let threads = flags
            .get("threads")
            .map(|s| {
                s.split(',')
                    .map(|x| x.parse().expect("thread count"))
                    .collect()
            })
            .unwrap_or_else(|| vec![1, 4, 16]);
        Args {
            dataset,
            suite: flags.get("suite").cloned().unwrap_or_else(|| "all".into()),
            iters: flags
                .get("iters")
                .map(|s| s.parse().expect("iters"))
                .unwrap_or(5),
            warmup: flags
                .get("warmup")
                .map(|s| s.parse().expect("warmup"))
                .unwrap_or(1),
            bench: flags.get("bench").cloned(),
            csv: flags.get("csv").cloned(),
            threads,
            measured: flags.contains_key("measured"),
            flags,
        }
    }

    /// The spec-proxy scale matching the chosen dataset.
    pub fn scale(&self) -> Scale {
        match self.dataset {
            Dataset::Mini => Scale::Mini,
            Dataset::Small => Scale::Small,
            Dataset::Medium => Scale::Train,
        }
    }

    /// Build the selected benchmarks.
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        let mut v = Vec::new();
        if self.suite == "all" || self.suite == "polybench" {
            v.extend(lb_polybench::all(self.dataset));
        }
        if self.suite == "all" || self.suite == "spec" {
            v.extend(lb_spec_proxy::all(self.scale()));
        }
        if let Some(name) = &self.bench {
            v.retain(|b| &b.name == name);
            assert!(!v.is_empty(), "unknown benchmark {name}");
        }
        v
    }

    /// All wasm runtimes plus native, in the paper's order.
    pub fn engines(&self) -> Vec<EngineSel> {
        vec![
            EngineSel::Native,
            EngineSel::Wavm,
            EngineSel::Wasmtime,
            EngineSel::V8,
            EngineSel::Interp,
        ]
    }
}

/// Write the table to CSV if requested, and always print it.
pub fn emit(table: &lb_harness::Table, csv: &Option<String>) {
    print!("{}", table.render());
    if let Some(path) = csv {
        table
            .write_csv(std::path::Path::new(path))
            .expect("write csv");
        println!("(csv written to {path})");
    }
}

// ── shared scaling machinery for figures 3–5 ────────────────────────────

/// One (engine, strategy, thread-count) observation for figures 3–5.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Engine name.
    pub engine: String,
    /// Strategy name.
    pub strategy: String,
    /// Worker threads.
    pub threads: usize,
    /// Aggregate iterations/second.
    pub iters_per_sec: f64,
    /// CPU utilisation in percent-of-one-core.
    pub utilization_pct: f64,
    /// Context switches per second.
    pub ctxt_per_sec: f64,
    /// Mean used memory, bytes (measured mode only).
    pub mem_bytes: u64,
    /// `true` when produced by the mm-contention simulator.
    pub simulated: bool,
}

/// The benchmarks figures 3–5 default to: short-running kernels, where the
/// paper says the mprotect locking effect is most visible.
pub const SCALING_DEFAULT_BENCH: &str = "jacobi-1d";

/// Produce scaling data, either simulated (default on small hosts — this
/// models the paper's 16-hardware-thread machines) or measured with real
/// threads (`--measured`).
pub fn scaling_data(args: &Args) -> Vec<ScalePoint> {
    if args.measured {
        scaling_measured(args)
    } else {
        scaling_simulated(args)
    }
}

fn scaling_bench(args: &Args) -> Benchmark {
    let name = args
        .bench
        .clone()
        .unwrap_or_else(|| SCALING_DEFAULT_BENCH.into());
    lb_polybench::by_name(&name, args.dataset)
        .or_else(|| lb_spec_proxy::by_name(&name, args.scale()))
        .unwrap_or_else(|| panic!("unknown benchmark {name}"))
}

fn scaling_strategies() -> Vec<lb_core::BoundsStrategy> {
    use lb_core::BoundsStrategy as B;
    let mut v = vec![B::Trap, B::Mprotect];
    if lb_core::uffd::sigbus_mode_available() {
        v.push(B::Uffd);
    }
    v
}

fn scaling_measured(args: &Args) -> Vec<ScalePoint> {
    use lb_harness::{run_benchmark, RunSpec};
    let bench = scaling_bench(args);
    let mut out = Vec::new();
    for engine in [EngineSel::Wavm, EngineSel::V8] {
        for s in scaling_strategies() {
            for &t in &args.threads {
                let mut spec = RunSpec::new(engine, s);
                spec.threads = t;
                spec.warmup_iters = args.warmup;
                spec.measured_iters = args.iters;
                spec.sample_system = true;
                let r = run_benchmark(&bench, &spec);
                assert!(r.checksum_ok);
                let sys = r.sys.expect("sampled");
                out.push(ScalePoint {
                    engine: engine.name().into(),
                    strategy: s.name().into(),
                    threads: t,
                    iters_per_sec: r.iters_per_sec(),
                    utilization_pct: sys.cpu_util_pct,
                    ctxt_per_sec: sys.ctxt_per_sec,
                    mem_bytes: sys.mem_used_bytes,
                    simulated: false,
                });
                eprintln!("  measured {} {} t={}", engine.name(), s.name(), t);
            }
        }
    }
    out
}

fn scaling_simulated(args: &Args) -> Vec<ScalePoint> {
    use lb_harness::{run_benchmark, RunSpec};
    use lb_sim::{simulate, SimParams, SimStrategy};
    let bench = scaling_bench(args);
    // Calibrate per-iteration compute time with a quick real run.
    let mut spec = RunSpec::new(EngineSel::Wavm, lb_core::BoundsStrategy::Trap);
    spec.warmup_iters = 1;
    spec.measured_iters = args.iters.max(3);
    let r = run_benchmark(&bench, &spec);
    let compute_ns = r.median().as_nanos() as u64;
    eprintln!(
        "  calibration: {} compute ≈ {:?} per iteration",
        bench.name,
        r.median()
    );
    let pages = bench
        .module
        .memory
        .map(|m| m.limits.min as u64)
        .unwrap_or(1);

    let mut out = Vec::new();
    for (engine, v8) in [("wavm", false), ("v8", true)] {
        for s in scaling_strategies() {
            let sim_strategy = SimStrategy::parse(s.name()).expect("strategy");
            for &t in &args.threads {
                let mut p = SimParams::new(sim_strategy, t, compute_ns);
                // Long enough for several GC periods to elapse.
                p.iters = (args.iters * 100).max(400);
                p.pages = pages;
                p.v8_pauses = v8;
                let sr = simulate(&p);
                out.push(ScalePoint {
                    engine: engine.into(),
                    strategy: s.name().into(),
                    threads: t,
                    iters_per_sec: sr.iters_per_sec(),
                    utilization_pct: sr.utilization_pct(),
                    ctxt_per_sec: sr.ctxt_per_sec(),
                    mem_bytes: 0,
                    simulated: true,
                });
            }
        }
    }
    out
}
