//! A minimal, dependency-free micro-benchmark harness with a
//! Criterion-shaped API.
//!
//! The offline build environment cannot fetch criterion, so the three
//! bench targets (`strategies`, `engines`, `memsys`) run on this instead:
//! the same `Criterion` / `benchmark_group` / `Bencher` / `BenchmarkId`
//! surface and the same `criterion_group!` / `criterion_main!` macros,
//! but a much simpler measurement loop (median over `sample_size`
//! samples, each auto-calibrated to a minimum batch duration) and plain
//! stdout reporting.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum time one measured batch should take; `Bencher::iter` repeats
/// the routine enough times per sample to reach this.
const MIN_BATCH: Duration = Duration::from_micros(200);

/// Top-level harness state (per-process, like Criterion's).
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Start a named group of related measurements.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _c: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A group of measurements sharing a name prefix and sample count.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: u32) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measure `f`, labelled by `id`.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut b);
        b.report(&self.name, &id.to_string());
        self
    }

    /// Measure `f` with an input value (Criterion parity; the input is
    /// simply passed through).
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        f: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            times: Vec::new(),
        };
        f(&mut b, input);
        b.report(&self.name, &id.to_string());
        self
    }

    /// End the group (prints nothing extra; exists for API parity).
    pub fn finish(self) {}
}

/// Runs and times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: u32,
    times: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, batching calls so each sample spans at least
    /// [`MIN_BATCH`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate the batch size on one untimed call.
        let t = Instant::now();
        black_box(f());
        let once = t.elapsed().max(Duration::from_nanos(1));
        let batch = (MIN_BATCH.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u32;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.times.push(t.elapsed() / batch);
        }
    }

    /// Time `f` on a fresh `setup()` value per sample; only `f` is timed.
    pub fn iter_with_setup<S, I, O, F>(&mut self, mut setup: S, mut f: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(f(input));
            self.times.push(t.elapsed());
        }
    }

    fn report(&mut self, group: &str, id: &str) {
        if self.times.is_empty() {
            println!("  {group}/{id}: no samples");
            return;
        }
        self.times.sort();
        let median = self.times[self.times.len() / 2];
        let min = self.times[0];
        let max = self.times[self.times.len() - 1];
        println!(
            "  {group}/{id}: median {median:?} (min {min:?}, max {max:?}, n={})",
            self.times.len()
        );
    }
}

/// A two-part benchmark label (`function/parameter`), like Criterion's.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Label with a function name and a parameter.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{name}/{param}"),
        }
    }

    /// Label with only a parameter.
    pub fn from_parameter(param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: param.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Bundle benchmark functions into one runner function, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::micro::Criterion::default();
            $( $f(&mut c); )+
        }
    };
}

/// Emit `main` for a bench target, Criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($name:ident),+ $(,)?) => {
        fn main() {
            $( $name(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("micro_test");
        g.sample_size(3);
        let mut ran = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        g.bench_with_input(BenchmarkId::new("with", "input"), &7u32, |b, &x| {
            b.iter_with_setup(|| x, |v| v + 1)
        });
        g.finish();
        assert!(ran >= 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("gemm", "trap").to_string(), "gemm/trap");
        assert_eq!(BenchmarkId::from_parameter("uffd").to_string(), "uffd");
    }
}
