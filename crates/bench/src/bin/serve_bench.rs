//! Load generator for `lb-serve`: open-loop latency/throughput sweeps,
//! a closed-loop CI smoke check, and the chaos-under-load campaign.
//!
//! Modes:
//!
//! ```text
//! serve_bench                       # open-loop sweep -> BENCH_serve.json
//! serve_bench --smoke true          # short closed-loop run for scripts/ci.sh
//! serve_bench --chaos true          # >=10k-request fault campaign per strategy
//! ```
//!
//! Common flags: `--shards N` (default `LB_SERVE` or 2), `--out PATH`,
//! `--requests N` (chaos/smoke request count), `--seed N` (chaos),
//! `--jsonl PATH` (telemetry JSONL for the chaos campaign).
//!
//! The sweep steps offered load per {strategy} × {pool on/off}, reports
//! p50/p99/p999 completed latency, achieved req/s, and shed/reject
//! counts per step, then cross-checks the measured scaling knee against
//! `lb-sim`'s mm-subsystem model. The container pins everything to few
//! (often one) CPUs, so absolute rates are machine-relative; the *shape*
//! (pooled vs unpooled ratio, knee location vs prediction) is the
//! reproducible claim, mirroring how Fig. 6 is cross-validated.

use lb_core::pool::{self, MemoryPoolConfig};
use lb_core::{BoundsStrategy, Engine, Linker, MemoryConfig};
use lb_jit::{JitEngine, JitProfile};
use lb_serve::{KernelSpec, Outcome, Overload, ServeConfig, Server, TenantQuota};
use lb_wasm::module::{Export, ExportKind, Function};
use lb_wasm::{FuncType, Instr, Limits, MemoryType, Module, ValType};
use std::collections::HashMap;
use std::time::{Duration, Instant};

fn parse_flags() -> HashMap<String, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < argv.len() {
        let k = argv[i].trim_start_matches("--").to_string();
        assert!(
            argv[i].starts_with("--") && i + 1 < argv.len(),
            "usage: serve_bench [--smoke true] [--chaos true] [--shards N] \
             [--requests N] [--seed N] [--out PATH] [--jsonl PATH]"
        );
        flags.insert(k, argv[i + 1].clone());
        i += 2;
    }
    flags
}

/// The serving kernel: touch memory, return a value. Tiny on purpose —
/// the serving layer's costs (instantiation, admission, strategy memory
/// setup) are the measurand, not kernel compute.
fn kernel_module() -> Module {
    let mut m = Module::new();
    m.types.push(FuncType {
        params: vec![],
        results: vec![ValType::I32],
    });
    m.memory = Some(MemoryType {
        limits: Limits {
            min: 1,
            max: Some(2),
        },
    });
    m.functions.push(Function {
        type_idx: 0,
        locals: vec![],
        body: vec![
            Instr::I32Const(16),
            Instr::I32Const(42),
            Instr::I32Store(lb_wasm::MemArg::offset(0)),
            Instr::I32Const(16),
            Instr::I32Load(lb_wasm::MemArg::offset(0)),
            Instr::End,
        ],
        name: Some("run".into()),
    });
    m.exports.push(Export {
        name: "run".into(),
        kind: ExportKind::Func(0),
    });
    lb_wasm::validate(&m).expect("module validates");
    m
}

fn mem_config(strategy: BoundsStrategy) -> MemoryConfig {
    // The production-shaped config: full 8 GiB virtual reservation per
    // instance (guard-page bounds checking needs it). Setting it up and
    // tearing it down — mmap, initial mprotect, uffd registration,
    // munmap with its VMA/TLB work — is exactly the cost the instance
    // pool exists to amortize, so the pooled-vs-unpooled comparison must
    // run against this reservation, not a test-sized one.
    MemoryConfig::new(strategy, 1, 2)
}

fn start_server(
    strategy: BoundsStrategy,
    shards: usize,
    deadline: Duration,
    breaker: Option<lb_serve::BreakerConfig>,
) -> Server {
    let engine = JitEngine::new(JitProfile::wavm());
    let module = engine.load(&kernel_module()).expect("load kernel");
    let mut cfg = ServeConfig::from_env();
    cfg.shards = shards;
    cfg.queue_depth = 128;
    cfg.max_inflight = 4096;
    cfg.tenants = vec![TenantQuota::Unlimited; 4];
    cfg.default_deadline = deadline;
    if let Some(b) = breaker {
        cfg.breaker = b;
    }
    Server::start(
        cfg,
        vec![KernelSpec {
            name: "store-load".into(),
            module,
            entry: "run".into(),
            args: vec![],
        }],
        mem_config(strategy),
        Linker::new(),
    )
}

fn set_pool(enabled: bool) {
    pool::drain();
    pool::configure(MemoryPoolConfig {
        capacity: if enabled { 16 } else { 0 },
        verify_zero: false,
    });
}

struct StepStats {
    offered_rps: f64,
    achieved_rps: f64,
    admitted: u64,
    completed: u64,
    failed: u64,
    shed: u64,
    rejected: u64,
    p50_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len()) - 1;
    sorted[idx]
}

/// Closed-loop burst: `n` requests submitted with retry-on-overload,
/// then all awaited. Returns (achieved req/s, sorted completed
/// latencies, outcome counts).
fn closed_loop(server: &Server, n: u64) -> (f64, Vec<u64>, [u64; 3]) {
    let started = Instant::now();
    let mut tickets = Vec::with_capacity(n as usize);
    for i in 0..n {
        loop {
            match server.submit((i % 4) as u32, 0, None) {
                Ok(t) => {
                    tickets.push(t);
                    break;
                }
                Err(Overload::QueueFull) | Err(Overload::QuotaExceeded) => {
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(e) => panic!("closed loop rejected: {e}"),
            }
        }
    }
    let mut lat = Vec::new();
    let mut counts = [0u64; 3]; // completed, failed, shed
    for t in tickets {
        match t.wait_timeout(Duration::from_secs(30)) {
            Some(Outcome::Completed { queue_ns, run_ns }) => {
                counts[0] += 1;
                lat.push(queue_ns + run_ns);
            }
            Some(Outcome::Failed { .. }) => counts[1] += 1,
            Some(Outcome::Shed { .. }) => counts[2] += 1,
            None => panic!("lost request: ticket unresolved after 30s"),
        }
    }
    let dur = started.elapsed().as_secs_f64();
    lat.sort_unstable();
    (counts[0] as f64 / dur.max(1e-9), lat, counts)
}

/// One open-loop step: submit at `rate` req/s for `dur`, then await
/// everything admitted.
fn open_loop_step(server: &Server, rate: f64, dur: Duration) -> StepStats {
    let interval_ns = (1e9 / rate) as u64;
    let started = Instant::now();
    let mut tickets = Vec::new();
    let mut rejected = 0u64;
    let mut next_ns = 0u64;
    while started.elapsed() < dur {
        let now_ns = started.elapsed().as_nanos() as u64;
        if now_ns < next_ns {
            std::thread::sleep(Duration::from_nanos(next_ns - now_ns));
        }
        next_ns += interval_ns;
        // Open loop: a rejection is recorded, never retried — offered
        // load does not slow down because the server is struggling.
        match server.submit((tickets.len() % 4) as u32, 0, None) {
            Ok(t) => tickets.push(t),
            Err(_) => rejected += 1,
        }
    }
    let admitted = tickets.len() as u64;
    let mut lat = Vec::new();
    let (mut completed, mut failed, mut shed) = (0u64, 0u64, 0u64);
    for t in tickets {
        match t.wait_timeout(Duration::from_secs(30)) {
            Some(Outcome::Completed { queue_ns, run_ns }) => {
                completed += 1;
                lat.push(queue_ns + run_ns);
            }
            Some(Outcome::Failed { .. }) => failed += 1,
            Some(Outcome::Shed { .. }) => shed += 1,
            None => panic!("lost request in open-loop step"),
        }
    }
    lat.sort_unstable();
    let wall = started.elapsed().as_secs_f64();
    StepStats {
        offered_rps: rate,
        achieved_rps: completed as f64 / wall.max(1e-9),
        admitted,
        completed,
        failed,
        shed,
        rejected,
        p50_ns: percentile(&lat, 0.50),
        p99_ns: percentile(&lat, 0.99),
        p999_ns: percentile(&lat, 0.999),
    }
}

fn sim_strategy(s: BoundsStrategy) -> lb_sim::SimStrategy {
    lb_sim::SimStrategy::parse(s.name()).unwrap_or(lb_sim::SimStrategy::Plain)
}

fn strategies() -> Vec<BoundsStrategy> {
    let mut v = vec![BoundsStrategy::Trap, BoundsStrategy::Clamp];
    if lb_core::uffd::sigbus_mode_available() {
        v.push(BoundsStrategy::Uffd);
    } else {
        eprintln!("note: uffd unavailable in this environment; skipping that column");
    }
    v
}

fn smoke(shards: usize, requests: u64) {
    set_pool(true);
    let before = lb_telemetry::snapshot();
    let server = start_server(BoundsStrategy::Trap, shards, Duration::from_secs(5), None);
    let (rps, lat, counts) = closed_loop(&server, requests);
    server.shutdown();
    let delta = lb_telemetry::snapshot().delta_since(&before);
    let resolved = counts[0] + counts[1] + counts[2];
    assert_eq!(
        resolved, requests,
        "smoke: {requests} admitted but only {resolved} resolved"
    );
    assert_eq!(
        delta.counter("serve.admitted"),
        resolved,
        "smoke: admission counter drifted from resolutions"
    );
    assert_eq!(
        delta.counter("serve.double_complete"),
        0,
        "smoke: double completion detected"
    );
    let hist = delta
        .histogram("serve.latency_ns")
        .expect("smoke: latency histogram missing");
    assert!(hist.count > 0, "smoke: latency histogram empty");
    assert!(
        !lat.is_empty(),
        "smoke: no completed requests to measure latency on"
    );
    println!(
        "serve_bench smoke: OK — {requests} requests, {rps:.0} req/s, p99 {} ns, zero lost",
        percentile(&lat, 0.99)
    );
    set_pool(false);
}

fn chaos(shards: usize, requests: u64, seed: u64, jsonl_path: &str) {
    let mut rows = String::new();
    let mut all_ok = true;
    for strategy in strategies() {
        set_pool(true);
        let plan = format!(
            "core.pool.reset:rate=0.01:EIO;core.mmap.reserve:rate=0.01:ENOMEM;\
             core.madvise.discard:rate=0.01:EIO;core.uffd.copy:rate=0.01:EIO;\
             serve.dispatch:rate=0.02:EIO;serve.queue_full:rate=0.005:EAGAIN;\
             seed={seed}"
        );
        let _guard = lb_chaos::install(&plan).expect("chaos plan");
        let before = lb_telemetry::snapshot();
        // A hair-trigger breaker (trip on 2 consecutive failures, short
        // open window) so the campaign exercises the full
        // open -> half-open probe -> close lifecycle under load.
        let breaker = lb_serve::BreakerConfig {
            failure_threshold: 2,
            open_base: Duration::from_millis(2),
            open_max: Duration::from_millis(50),
        };
        let server = start_server(strategy, shards, Duration::from_secs(10), Some(breaker));
        let started = Instant::now();
        let mut admitted = 0u64;
        let mut rejected = 0u64;
        let mut counts = [0u64; 3];
        let mut window: Vec<lb_serve::Ticket> = Vec::new();
        for i in 0..requests {
            // Closed-loop client with bounded retry: an overload
            // rejection (queue full, breaker open) backs off briefly so
            // open windows expire and half-open probes get through. A
            // request still rejected after ~100ms counts as rejected.
            let give_up = Instant::now() + Duration::from_millis(100);
            loop {
                match server.submit((i % 4) as u32, 0, None) {
                    Ok(t) => {
                        admitted += 1;
                        window.push(t);
                        break;
                    }
                    Err(_) if Instant::now() < give_up => {
                        std::thread::sleep(Duration::from_micros(200));
                    }
                    Err(_) => {
                        rejected += 1;
                        break;
                    }
                }
            }
            if window.len() >= 256 {
                for t in window.drain(..) {
                    match t.wait_timeout(Duration::from_secs(30)) {
                        Some(Outcome::Completed { .. }) => counts[0] += 1,
                        Some(Outcome::Failed { .. }) => counts[1] += 1,
                        Some(Outcome::Shed { .. }) => counts[2] += 1,
                        None => panic!("chaos campaign lost a request"),
                    }
                }
            }
        }
        for t in window.drain(..) {
            match t.wait_timeout(Duration::from_secs(30)) {
                Some(Outcome::Completed { .. }) => counts[0] += 1,
                Some(Outcome::Failed { .. }) => counts[1] += 1,
                Some(Outcome::Shed { .. }) => counts[2] += 1,
                None => panic!("chaos campaign lost a request"),
            }
        }
        server.shutdown();
        let dur = started.elapsed().as_secs_f64();
        let delta = lb_telemetry::snapshot().delta_since(&before);
        let resolved = counts[0] + counts[1] + counts[2];
        let exactly_once = resolved == admitted && delta.counter("serve.double_complete") == 0;
        all_ok &= exactly_once;
        println!(
            "chaos {}: {admitted} admitted ({rejected} rejected) -> {} completed / {} failed / {} shed in {dur:.1}s; \
             breaker open/half/close = {}/{}/{}; exactly-once: {}",
            strategy.name(),
            counts[0],
            counts[1],
            counts[2],
            delta.counter("serve.breaker.open"),
            delta.counter("serve.breaker.half_open"),
            delta.counter("serve.breaker.close"),
            if exactly_once { "OK" } else { "VIOLATED" }
        );
        let meta: Vec<(&str, String)> = vec![
            ("mode", "chaos_campaign".into()),
            ("strategy", strategy.name().into()),
            ("requests", requests.to_string()),
            ("admitted", admitted.to_string()),
            ("resolved", resolved.to_string()),
            ("seed", seed.to_string()),
            ("faults", plan.clone()),
        ];
        lb_telemetry::export::write_jsonl(&mut rows, &meta, &delta);
    }
    set_pool(false);
    std::fs::write(jsonl_path, &rows).expect("write chaos jsonl");
    println!("chaos campaign telemetry -> {jsonl_path}");
    assert!(all_ok, "exactly-once invariant violated under chaos");
}

fn sweep(shards: usize, out_path: &str) {
    let mut cells = Vec::new();
    let mut pooled_ratio = Vec::new();
    for strategy in strategies() {
        // Closed-loop calibration per pool mode: the pooled-vs-unpooled
        // req/s ratio at equal (closed-loop) p99, and the base service
        // rate the open-loop steps are derived from.
        let mut base = HashMap::new();
        for pool_on in [true, false] {
            set_pool(pool_on);
            let server = start_server(strategy, shards, Duration::from_secs(5), None);
            // Warm the pool and the per-strategy JIT cache.
            let _ = closed_loop(&server, 64);
            let (rps, lat, _) = closed_loop(&server, 512);
            server.shutdown();
            base.insert(pool_on, (rps, percentile(&lat, 0.99)));
        }
        let (pooled_rps, pooled_p99) = base[&true];
        let (unpooled_rps, unpooled_p99) = base[&false];

        // Memory-lifecycle-only medians isolate what the pool actually
        // amortizes (mmap/mprotect/uffd-register/munmap of the 8 GiB
        // reservation) from the serving path's fixed costs.
        let mut mem_us = HashMap::new();
        for pool_on in [true, false] {
            set_pool(pool_on);
            let cfg = mem_config(strategy);
            for _ in 0..8 {
                drop(lb_core::LinearMemory::new(&cfg)); // warm pool / allocator
            }
            let mut lat: Vec<u64> = (0..64)
                .map(|_| {
                    let t = Instant::now();
                    let m = lb_core::LinearMemory::new(&cfg);
                    drop(m);
                    t.elapsed().as_nanos() as u64
                })
                .collect();
            lat.sort_unstable();
            mem_us.insert(pool_on, lat[lat.len() / 2] as f64 / 1e3);
        }
        pooled_ratio.push(format!(
            "    {{\"strategy\": \"{}\", \"pooled_rps\": {:.0}, \"pooled_p99_ns\": {}, \
             \"unpooled_rps\": {:.0}, \"unpooled_p99_ns\": {}, \"ratio\": {:.2}, \
             \"mem_lifecycle_pooled_us\": {:.1}, \"mem_lifecycle_unpooled_us\": {:.1}, \
             \"mem_lifecycle_ratio\": {:.2}}}",
            strategy.name(),
            pooled_rps,
            pooled_p99,
            unpooled_rps,
            unpooled_p99,
            pooled_rps / unpooled_rps.max(1e-9),
            mem_us[&true],
            mem_us[&false],
            mem_us[&false] / mem_us[&true].max(1e-9),
        ));

        for pool_on in [true, false] {
            set_pool(pool_on);
            let server = start_server(strategy, shards, Duration::from_millis(250), None);
            let _ = closed_loop(&server, 64); // warm
            let base_rps = base[&pool_on].0;
            let mut steps = Vec::new();
            let mut knee = 0f64;
            for frac in [0.25, 0.5, 0.75, 0.9, 1.0, 1.25] {
                let rate = (base_rps * frac).max(10.0);
                let st = open_loop_step(&server, rate, Duration::from_millis(400));
                if st.achieved_rps >= 0.9 * st.offered_rps {
                    knee = knee.max(st.offered_rps);
                }
                steps.push(format!(
                    "        {{\"offered_rps\": {:.0}, \"achieved_rps\": {:.0}, \"admitted\": {}, \
                     \"completed\": {}, \"failed\": {}, \"shed\": {}, \"rejected\": {}, \
                     \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
                    st.offered_rps,
                    st.achieved_rps,
                    st.admitted,
                    st.completed,
                    st.failed,
                    st.shed,
                    st.rejected,
                    st.p50_ns,
                    st.p99_ns,
                    st.p999_ns,
                ));
                println!(
                    "{:<8} pool={:<5} offered {:>7.0} rps -> achieved {:>7.0} rps, p99 {:>9} ns, shed {} rejected {}",
                    strategy.name(),
                    pool_on,
                    st.offered_rps,
                    st.achieved_rps,
                    st.p99_ns,
                    st.shed,
                    st.rejected,
                );
            }
            server.shutdown();

            // Cross-check the knee against the mm-subsystem model.
            // Calibration: per-request service time is the inverse of the
            // measured closed-loop base rate (NOT low-load latency, which
            // includes queue/wakeup time and overpredicts service by 3x);
            // simulated workers = min(shards, CPUs). The sim then layers
            // its mmap_lock/TLB-shootdown contention model on top, so the
            // check asserts the open-loop knee lands where the model says
            // a machine this size saturates. Documented tolerance: factor
            // of 3 on the knee — the calibration rate already embeds
            // strategy overhead the sim re-adds (the double-count skews
            // predictions low, worst for uffd whose modeled zeropage cost
            // is large), and a 1-CPU container adds step noise.
            let cpus = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            let threads = shards.min(cpus);
            let service_ns = (1e9 / base_rps).max(1.0) as u64;
            let params = lb_sim::SimParams::new(sim_strategy(strategy), threads, service_ns);
            let predicted = lb_sim::simulate(&params).iters_per_sec() * threads as f64;
            let ratio = if predicted > 0.0 {
                knee / predicted
            } else {
                0.0
            };
            let within = ratio >= 0.33 && ratio <= 3.0;
            cells.push(format!(
                "    {{\"strategy\": \"{}\", \"pool\": {}, \"knee_rps\": {:.0}, \
                 \"sim_predicted_rps\": {:.0}, \"knee_over_predicted\": {:.3}, \
                 \"within_tolerance\": {}, \"steps\": [\n{}\n      ]}}",
                strategy.name(),
                pool_on,
                knee,
                predicted,
                ratio,
                within,
                steps.join(",\n"),
            ));
        }
    }
    set_pool(false);
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json =
        format!
    (
        "{{\n  \"description\": \"lb-serve open-loop sweep: offered-load steps x strategy x pool. \
         The knee (highest offered step with achieved >= 0.9x offered) is cross-checked against \
         lb-sim calibrated from the closed-loop base rate; documented tolerance is a factor of 3 \
         (the calibration rate already embeds strategy overhead the sim re-adds, skewing \
         predictions conservative — worst for uffd, whose modeled zeropage cost is largest). \
         pooled_vs_unpooled reports both end-to-end req/s and the isolated memory-lifecycle \
         median. NOTE: on a single-CPU container the end-to-end ratio is structurally flattened — \
         the multi-core costs the pool amortizes (munmap TLB-shootdown IPIs, mmap_lock \
         contention; paper sec. 6) need concurrency to manifest, so the end-to-end ratio here \
         bounds below the multi-core gap rather than exhibiting it.\",\n  \
         \"cpus\": {cpus},\n  \"shards\": {shards},\n  \
         \"pooled_vs_unpooled\": [\n{}\n  ],\n  \"cells\": [\n{}\n  ]\n}}\n",
        pooled_ratio.join(",\n"),
        cells.join(",\n"),
    );
    std::fs::write(out_path, json).expect("write BENCH_serve.json");
    println!("sweep -> {out_path}");
}

fn main() {
    let flags = parse_flags();
    let shards = flags
        .get("shards")
        .map(|s| s.parse().expect("--shards N"))
        .unwrap_or_else(|| {
            std::env::var("LB_SERVE")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(2)
        });
    let requests = flags
        .get("requests")
        .map(|s| s.parse().expect("--requests N"))
        .unwrap_or(10_000u64);
    let seed = flags
        .get("seed")
        .map(|s| s.parse().expect("--seed N"))
        .unwrap_or(0xC0FFEE_u64);

    if flags.contains_key("smoke") {
        smoke(shards, flags.get("requests").map_or(300, |_| requests));
    } else if flags.contains_key("chaos") {
        let jsonl = flags
            .get("jsonl")
            .cloned()
            .unwrap_or_else(|| "serve_chaos.jsonl".into());
        chaos(shards, requests, seed, &jsonl);
    } else {
        let out = flags
            .get("out")
            .cloned()
            .unwrap_or_else(|| "BENCH_serve.json".into());
        sweep(shards, &out);
    }
}
