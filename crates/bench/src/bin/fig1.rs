//! **Figure 1** — Cost of bounds-checking strategies in a WebAssembly
//! runtime: per-benchmark execution time under each strategy, normalized
//! to *none* (no bounds checks), on the V8-profile engine — the setup the
//! paper uses for its motivating figure.
//!
//! ```text
//! cargo run --release -p lb-bench --bin fig1 -- --dataset small
//! ```

use lb_bench::{emit, Args};
use lb_core::BoundsStrategy;
use lb_harness::{run_benchmark, stats, EngineSel, RunSpec, Table};

fn main() {
    let args = Args::parse();
    let strategies = available_strategies();
    let mut table = Table::new(&[
        "suite",
        "benchmark",
        "none",
        "clamp",
        "trap",
        "mprotect",
        "uffd",
    ]);

    for bench in args.benchmarks() {
        let mut medians = Vec::new();
        for &s in &strategies {
            let mut spec = RunSpec::new(EngineSel::V8, s);
            spec.warmup_iters = args.warmup;
            spec.measured_iters = args.iters;
            let r = run_benchmark(&bench, &spec);
            assert!(r.checksum_ok, "{} checksum mismatch under {s}", bench.name);
            medians.push(r.median());
        }
        let base = medians[0];
        let mut row = vec![bench.suite.to_string(), bench.name.clone()];
        for (i, s) in strategies.iter().enumerate() {
            let _ = s;
            if i < medians.len() {
                row.push(format!("{:.3}", stats::ratio(medians[i], base)));
            }
        }
        while row.len() < 7 {
            row.push("n/a".into()); // uffd unavailable in this environment
        }
        table.row(row);
        eprintln!("  measured {}", bench.name);
    }

    println!("\nFigure 1: execution time normalized to `none`, V8-profile engine\n");
    emit(&table, &args.csv);
}

fn available_strategies() -> Vec<BoundsStrategy> {
    let mut v = vec![
        BoundsStrategy::None,
        BoundsStrategy::Clamp,
        BoundsStrategy::Trap,
        BoundsStrategy::Mprotect,
    ];
    if lb_core::uffd::sigbus_mode_available() {
        v.push(BoundsStrategy::Uffd);
    }
    v
}
