//! Measure what the mid tier's IR guard-optimization pass (fused
//! compare-against-limit guards + dominance-based redundant-guard
//! elimination) buys over the same tier with the pass disabled, and
//! write the results to `BENCH_guardopt.json`.
//!
//! Every PolyBench kernel runs with the pass off and on for each of the
//! trap, clamp and uffd bounds-check strategies. The static analysis
//! plan is withheld in both arms, so every access reaches codegen with
//! its check intact — isolating the pass's effect on exactly the checks
//! the paper's bounds-checking comparison measures. The pass only
//! rewrites trap-strategy guards (clamp has no branch to fuse and uffd
//! has no explicit check), so those rows double as a no-regression
//! control.
//!
//! The kernel checksums must be bit-identical between the arms — a fused
//! guard admits exactly the addresses the classic two-instruction guard
//! admits, never one more — and the trap-strategy geomean speedup is the
//! headline number.
//!
//! Usage: `guardopt_bench [--smoke] [--out PATH]`
//! (default `BENCH_guardopt.json`; `--smoke` runs a three-kernel,
//! trap-only subset, asserts the checksum and geomean gates, and writes
//! nothing unless `--out` is given).

use lb_core::exec::{Engine, Linker};
use lb_core::{BoundsStrategy, MemoryConfig};
use lb_jit::{JitEngine, JitProfile};
use lb_polybench::common::Dataset;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Measurement {
    time: Duration,
    checksum_bits: u64,
    gvn_elided: u64,
    fused: u64,
}

fn measure(
    bench: &lb_polybench::Benchmark,
    strategy: BoundsStrategy,
    guardopt: bool,
    iters: u32,
) -> Measurement {
    let before = lb_telemetry::snapshot();
    let engine = JitEngine::new(
        JitProfile::wasmtime()
            .with_midtier(true)
            .with_analysis(false)
            .with_guardopt(guardopt),
    );
    let loaded = engine.load(&bench.module).expect("load");
    let config = MemoryConfig::new(strategy, 1, 256);
    let mut inst = loaded
        .instantiate(&config, &Linker::new())
        .expect("instantiate");
    inst.invoke("init", &[]).expect("init");
    inst.invoke("kernel", &[]).expect("kernel"); // warm
    let t = Instant::now();
    for _ in 0..iters {
        inst.invoke("kernel", &[]).expect("kernel");
    }
    let time = t.elapsed() / iters;
    let checksum_bits = inst
        .invoke("checksum", &[])
        .expect("checksum")
        .expect("checksum value")
        .to_bits();
    let delta = lb_telemetry::snapshot().delta_since(&before);
    Measurement {
        time,
        checksum_bits,
        gvn_elided: delta.counter("jit.checks.gvn_elided"),
        fused: delta.counter("jit.checks.fused"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("usage: guardopt_bench [--smoke] [--out PATH]");
                    std::process::exit(2);
                }
            },
            _ => {
                eprintln!("usage: guardopt_bench [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let kernels: Vec<&str> = if smoke {
        lb_polybench::NAMES.iter().take(3).copied().collect()
    } else {
        lb_polybench::NAMES.to_vec()
    };
    let strategies: &[BoundsStrategy] = if smoke {
        &[BoundsStrategy::Trap]
    } else {
        &[
            BoundsStrategy::Trap,
            BoundsStrategy::Clamp,
            BoundsStrategy::Uffd,
        ]
    };
    let iters: u32 = if smoke { 3 } else { 5 };

    let mut rows = String::new();
    let mut trap_log_sum = 0.0f64;
    let mut trap_rows = 0usize;
    let mut first = true;
    for name in &kernels {
        let bench = lb_polybench::by_name(name, Dataset::Mini).expect("known kernel");
        for &strategy in strategies {
            let off = measure(&bench, strategy, false, iters);
            let on = measure(&bench, strategy, true, iters);
            assert_eq!(
                off.checksum_bits, on.checksum_bits,
                "{name}/{strategy:?}: guard optimization must not change a single bit"
            );
            if strategy == BoundsStrategy::Trap {
                assert!(
                    on.fused > 0,
                    "{name}/trap: the pass must fuse guards on a plan-less kernel"
                );
            } else {
                assert_eq!(
                    (on.gvn_elided, on.fused),
                    (0, 0),
                    "{name}/{strategy:?}: the pass only rewrites trap-strategy guards"
                );
            }
            let speedup = off.time.as_secs_f64() / on.time.as_secs_f64();
            if strategy == BoundsStrategy::Trap {
                trap_log_sum += speedup.ln();
                trap_rows += 1;
            }
            println!(
                "{name:<12} {:<8} off {:>10.3?} on {:>10.3?} speedup {speedup:.3}x \
                 (fused {}, gvn elided {})",
                strategy.name(),
                off.time,
                on.time,
                on.fused,
                on.gvn_elided
            );
            if !first {
                rows.push_str(",\n");
            }
            first = false;
            write!(
                rows,
                "    {{\"bench\": \"{name}\", \"strategy\": \"{}\", \
                 \"time_off_ns\": {}, \"time_on_ns\": {}, \"speedup\": {:.4}, \
                 \"fused\": {}, \"gvn_elided\": {}, \"checksum_bits\": {}}}",
                strategy.name(),
                off.time.as_nanos(),
                on.time.as_nanos(),
                speedup,
                on.fused,
                on.gvn_elided,
                on.checksum_bits
            )
            .unwrap();
        }
    }

    let geomean = (trap_log_sum / trap_rows as f64).exp();
    println!("geomean speedup (trap, {trap_rows} kernels): {geomean:.3}x");
    assert!(
        geomean >= 1.03,
        "guard fusion must be at least 1.03x on the trap mid tier (geomean); got {geomean:.3}x"
    );

    let json = format!(
        "{{\n  \"description\": \"mid tier with the IR guard-optimization pass \
         (fused limit guards + dominance-based elision) on vs off; analysis plan \
         withheld in both arms, per PolyBench kernel x strategy\",\n  \
         \"iters\": {iters},\n  \"geomean_speedup_trap\": {geomean:.4},\n  \
         \"results\": [\n{rows}\n  ]\n}}\n"
    );
    match (smoke, out_path) {
        (_, Some(p)) => {
            std::fs::write(&p, json).expect("write results");
            println!("wrote {p}");
        }
        (false, None) => {
            std::fs::write("BENCH_guardopt.json", json).expect("write results");
            println!("wrote BENCH_guardopt.json");
        }
        (true, None) => println!("smoke mode: results not written"),
    }
}
