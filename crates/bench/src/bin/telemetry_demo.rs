//! Telemetry acceptance demo: exercises every instrumented path and
//! exports per-run snapshots to the sink selected by `LB_TELEMETRY`.
//!
//! ```text
//! LB_TELEMETRY=jsonl:out.jsonl cargo run --release -p lb-bench --bin telemetry_demo
//! ```
//!
//! The output contains a PolyBench run under the WAVM-profile JIT
//! (compile spans, code-size counters), a run that grows linear memory
//! under two strategies (strategy-labelled `mem.grow.*` counters), and
//! a batch of hardware traps (`trap.latency_ns` histogram).

use lb_core::exec::{Engine, Linker};
use lb_core::{catch_traps, BoundsStrategy, LinearMemory, MemoryConfig};
use lb_dsl::{expr, DslFunc, KernelModule};
use lb_harness::{run_benchmark, EngineSel, RunSpec};
use lb_jit::{JitEngine, JitProfile};
use lb_polybench::{by_name, common::Dataset};
use lb_wasm::types::ValType;

fn grow_module() -> lb_wasm::Module {
    let mut f = DslFunc::new("grow_some", &[], Some(ValType::I32));
    f.memory_grow(expr::i32(1));
    f.memory_grow(expr::i32(1));
    f.ret(expr::i32(0));
    let mut km = KernelModule::new();
    km.memory(1, Some(8));
    km.add_exported(f);
    km.finish()
}

fn main() {
    lb_telemetry::ensure_thread_ring();
    lb_telemetry::set_spans_enabled(true);

    // 1. PolyBench under the JIT: compile spans, code-size counters,
    //    per-run mmap/mprotect counts. Exported by the harness itself.
    let bench = by_name("atax", Dataset::Mini).unwrap();
    let mut spec = RunSpec::new(EngineSel::Wavm, BoundsStrategy::Mprotect);
    spec.warmup_iters = 1;
    spec.measured_iters = 3;
    let r = run_benchmark(&bench, &spec);
    assert!(r.checksum_ok);

    // 2. memory.grow under two strategies + a batch of hardware traps,
    //    exported as one extra record.
    let before = lb_telemetry::snapshot();
    for (engine, strategy) in [
        (
            Box::new(JitEngine::new(JitProfile::wavm())) as Box<dyn Engine>,
            BoundsStrategy::Mprotect,
        ),
        (
            Box::new(JitEngine::new(JitProfile::wavm())),
            BoundsStrategy::Trap,
        ),
    ] {
        let module = grow_module();
        let loaded = engine.load(&module).unwrap();
        let config = MemoryConfig::new(strategy, 1, 8).with_reserve(1 << 22);
        let mut inst = loaded.instantiate(&config, &Linker::new()).unwrap();
        inst.invoke("grow_some", &[]).unwrap();
    }
    let config = MemoryConfig::new(BoundsStrategy::Mprotect, 1, 1).with_reserve(4 << 20);
    let mem = LinearMemory::new(&config).unwrap();
    for _ in 0..8 {
        catch_traps(|| mem.load::<u8>(2 * 65536, 0)).unwrap_err();
    }
    let mut delta = lb_telemetry::snapshot_and_drain().delta_since(&before);
    delta.retain_nonzero();
    lb_telemetry::export::emit_run(&[("bench", "grow-and-trap".to_string())], &delta);

    eprintln!(
        "telemetry demo done: grows={} traps={}",
        delta.counter("mem.grow"),
        delta.counter("trap.signal")
    );
}
