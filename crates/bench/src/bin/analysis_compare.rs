//! PolyBench under the `trap` strategy: static analysis on vs off.
//!
//! The paper's core claim is that bounds checks are a dominant share of
//! WebAssembly overhead; `lb-analysis` recovers part of it by proving
//! checks redundant at compile time. This tool quantifies that on the
//! paper's own workloads: for each kernel it compiles twice with the WAVM
//! profile — once consuming the analysis plan, once falling back to the
//! legacy peephole — and reports kernel time plus the fraction of checks
//! statically elided (from the `jit.checks.*` telemetry counters).
//!
//! Usage: `analysis_compare [bench ...]` (defaults to a representative
//! kernel set).

use lb_core::exec::{Engine, Linker};
use lb_core::{BoundsStrategy, MemoryConfig};
use lb_jit::{JitEngine, JitProfile};
use lb_polybench::{by_name, common::Dataset};
use std::time::{Duration, Instant};

const DEFAULT_BENCHES: &[&str] = &["gemm", "atax", "mvt", "bicg", "jacobi-2d", "trisolv"];

struct Measurement {
    time: Duration,
    elided: u64,
    emitted: u64,
    checksum_ok: bool,
}

fn measure(bench: &lb_polybench::Benchmark, analysis: bool, iters: u32) -> Measurement {
    let before = lb_telemetry::snapshot();
    let engine = JitEngine::new(JitProfile::wavm().with_analysis(analysis));
    let loaded = engine.load(&bench.module).expect("load");
    let config = MemoryConfig::new(BoundsStrategy::Trap, 1, 256);
    let mut inst = loaded
        .instantiate(&config, &Linker::new())
        .expect("instantiate");
    // Correctness first: kernels are not idempotent (gemm accumulates
    // into C), so the checksum is only meaningful after exactly one run.
    inst.invoke("init", &[]).expect("init");
    inst.invoke("kernel", &[]).expect("kernel");
    let cs = inst
        .invoke("checksum", &[])
        .expect("checksum")
        .and_then(|v| v.as_f64())
        .unwrap_or(f64::NAN);
    let checksum_ok = lb_dsl::kernel::checksums_match(cs, bench.native_checksum());
    // Then time the warmed instance.
    inst.invoke("init", &[]).expect("init");
    let t = Instant::now();
    for _ in 0..iters {
        inst.invoke("kernel", &[]).expect("kernel");
    }
    let time = t.elapsed() / iters;
    let delta = lb_telemetry::snapshot().delta_since(&before);
    Measurement {
        time,
        elided: delta.counter("jit.checks.static_elided"),
        emitted: delta.counter("jit.checks.emitted"),
        checksum_ok,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let benches: Vec<&str> = if args.is_empty() {
        DEFAULT_BENCHES.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    println!(
        "{:<12} {:>12} {:>12} {:>8} {:>9} {:>9} {:>8}",
        "bench", "trap", "trap+bce", "speedup", "elided", "emitted", "elide%"
    );
    for name in benches {
        let Some(bench) = by_name(name, Dataset::Small) else {
            eprintln!("{name}: unknown benchmark, skipping");
            continue;
        };
        let off = measure(&bench, false, 20);
        let on = measure(&bench, true, 20);
        assert!(
            off.checksum_ok,
            "{name}: checksum mismatch without analysis"
        );
        assert!(on.checksum_ok, "{name}: checksum mismatch with analysis");
        let total = on.elided + on.emitted;
        let pct = if total == 0 {
            0.0
        } else {
            100.0 * on.elided as f64 / total as f64
        };
        println!(
            "{:<12} {:>12} {:>12} {:>7.2}x {:>9} {:>9} {:>7.1}%",
            bench.name,
            format!("{:.3?}", off.time),
            format!("{:.3?}", on.time),
            off.time.as_secs_f64() / on.time.as_secs_f64(),
            on.elided,
            on.emitted,
            pct,
        );
    }
}
