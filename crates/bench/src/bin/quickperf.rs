//! Scratch performance sanity check.
use lb_core::exec::{Engine, Linker};
use lb_core::{BoundsStrategy, MemoryConfig};
use lb_interp::InterpEngine;
use lb_jit::{JitEngine, JitProfile};
use lb_polybench::{by_name, common::Dataset};
use std::time::Instant;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gemm".into());
    let bench = by_name(&name, Dataset::Small).unwrap();
    let mut k = (bench.native)();
    k.init();
    k.kernel();
    let t = Instant::now();
    let iters = 30;
    for _ in 0..iters {
        k.kernel();
    }
    println!("native:   {:?}", t.elapsed() / iters);
    let config = MemoryConfig::new(BoundsStrategy::Mprotect, 1, 256).with_reserve(512 << 16);
    for (label, engine) in [
        (
            "wavm",
            Box::new(JitEngine::new(JitProfile::wavm())) as Box<dyn Engine>,
        ),
        ("wasmtime", Box::new(JitEngine::new(JitProfile::wasmtime()))),
        ("v8", Box::new(JitEngine::new(JitProfile::v8()))),
        ("interp", Box::new(InterpEngine::new())),
    ] {
        let loaded = engine.load(&bench.module).unwrap();
        let mut inst = loaded.instantiate(&config, &Linker::new()).unwrap();
        inst.invoke("init", &[]).unwrap();
        inst.invoke("kernel", &[]).unwrap();
        inst.invoke("kernel", &[]).unwrap();
        let iters = if label == "interp" { 3 } else { 30 };
        let t = Instant::now();
        for _ in 0..iters {
            inst.invoke("kernel", &[]).unwrap();
        }
        println!("{label:9} {:?}", t.elapsed() / iters);
    }
}
