//! Scratch performance sanity check.
//!
//! * `quickperf [bench]` — the original per-engine kernel timing table.
//! * `quickperf pool [bench]` — the memory-lifecycle fast-path matrix:
//!   pool on/off × strategy (× uffd window {1,16}) over fresh-isolate
//!   iterations, written to `BENCH_pool.json`. This is the acceptance
//!   harness for pooled reuse (instantiation latency, mmap churn) and
//!   batched uffd fault service (zeropage ioctls per kernel, which must
//!   drop ≥4× with the 16-page window on a sequential kernel) — with the
//!   checksum recorded bit-exactly per row to prove results are identical
//!   across every configuration.
use lb_core::exec::{Engine, Linker};
use lb_core::pool::{self, MemoryPoolConfig};
use lb_core::{BoundsStrategy, MemoryConfig};
use lb_interp::InterpEngine;
use lb_jit::{JitEngine, JitProfile};
use lb_polybench::{by_name, common::Dataset};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("pool") => pool_matrix(&args.next().unwrap_or_else(|| "gemm".into())),
        first => kernel_table(first.unwrap_or("gemm")),
    }
}

fn kernel_table(name: &str) {
    let bench = by_name(name, Dataset::Small).unwrap();
    let mut k = (bench.native)();
    k.init();
    k.kernel();
    let t = Instant::now();
    let iters = 30;
    for _ in 0..iters {
        k.kernel();
    }
    println!("native:   {:?}", t.elapsed() / iters);
    let config = MemoryConfig::new(BoundsStrategy::Mprotect, 1, 256).with_reserve(512 << 16);
    for (label, engine) in [
        (
            "wavm",
            Box::new(JitEngine::new(JitProfile::wavm())) as Box<dyn Engine>,
        ),
        ("wasmtime", Box::new(JitEngine::new(JitProfile::wasmtime()))),
        ("v8", Box::new(JitEngine::new(JitProfile::v8()))),
        ("interp", Box::new(InterpEngine::new())),
    ] {
        let loaded = engine.load(&bench.module).unwrap();
        let mut inst = loaded.instantiate(&config, &Linker::new()).unwrap();
        inst.invoke("init", &[]).unwrap();
        inst.invoke("kernel", &[]).unwrap();
        inst.invoke("kernel", &[]).unwrap();
        let iters = if label == "interp" { 3 } else { 30 };
        let t = Instant::now();
        for _ in 0..iters {
            inst.invoke("kernel", &[]).unwrap();
        }
        println!("{label:9} {:?}", t.elapsed() / iters);
    }
}

/// One measured cell of the pool matrix.
struct PoolRow {
    strategy: &'static str,
    pool: bool,
    window: usize,
    iters: u32,
    instantiate_us_median: f64,
    mmap: u64,
    munmap: u64,
    pool_hits: u64,
    pool_misses: u64,
    zeropage_per_iter: f64,
    batch_pages: u64,
    prefetch_streaks: u64,
    checksum_bits: u64,
}

fn pool_matrix(name: &str) {
    let bench = by_name(name, Dataset::Small).unwrap();
    let engine = JitEngine::new(JitProfile::wavm());
    let loaded = engine.load(&bench.module).unwrap();
    let linker = Linker::new();
    let iters: u32 = 8;
    let uffd_ok = lb_core::uffd::sigbus_mode_available();

    let mut rows: Vec<PoolRow> = Vec::new();
    for s in BoundsStrategy::ALL {
        if s == BoundsStrategy::Uffd && !uffd_ok {
            eprintln!("note: uffd unavailable, skipping its rows");
            continue;
        }
        // The window only drives the uffd servicer; window=1 is the
        // per-page baseline the ≥4× batching claim is measured against.
        let windows: &[usize] = if s == BoundsStrategy::Uffd {
            &[1, 16]
        } else {
            &[16]
        };
        for &window in windows {
            lb_core::uffd::set_uffd_window_pages(window);
            for pooled in [false, true] {
                pool::drain();
                pool::configure(MemoryPoolConfig {
                    capacity: if pooled { 8 } else { 0 },
                    verify_zero: false,
                });
                let config = MemoryConfig::new(s, 1, 256).with_reserve(512 << 16);
                let one_iter = |lat: &mut Vec<f64>| -> f64 {
                    let t = Instant::now();
                    let mut inst = loaded.instantiate(&config, &linker).unwrap();
                    lat.push(t.elapsed().as_secs_f64() * 1e6);
                    inst.invoke("init", &[]).unwrap();
                    inst.invoke("kernel", &[]).unwrap();
                    inst.invoke("checksum", &[])
                        .unwrap()
                        .and_then(|v| v.as_f64())
                        .unwrap_or(f64::NAN)
                };
                // Warm-up fills the pool so the measured window sees
                // steady-state hits when pooling is on.
                let mut scratch = Vec::new();
                for _ in 0..2 {
                    one_iter(&mut scratch);
                }
                let vm0 = lb_core::stats::snapshot();
                let tele0 = lb_telemetry::snapshot();
                let mut lat = Vec::with_capacity(iters as usize);
                let mut checksum = 0.0f64;
                for _ in 0..iters {
                    checksum = one_iter(&mut lat);
                }
                let vm = lb_core::stats::snapshot().delta(&vm0);
                let tele = lb_telemetry::snapshot().delta_since(&tele0);
                lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
                rows.push(PoolRow {
                    strategy: s.name(),
                    pool: pooled,
                    window,
                    iters,
                    instantiate_us_median: lat[lat.len() / 2],
                    mmap: vm.mmap,
                    munmap: vm.munmap,
                    pool_hits: vm.pool_hits,
                    pool_misses: vm.pool_misses,
                    zeropage_per_iter: vm.uffd_zeropage as f64 / f64::from(iters),
                    batch_pages: tele.counter("uffd.batch_pages"),
                    prefetch_streaks: tele.counter("uffd.prefetch_streak"),
                    checksum_bits: checksum.to_bits(),
                });
                let r = rows.last().unwrap();
                println!(
                    "{:9} pool={:<5} window={:<3} inst_us={:<9.1} mmap={:<3} \
                     zeropage/iter={:<7.1} hits={} misses={}",
                    r.strategy,
                    r.pool,
                    r.window,
                    r.instantiate_us_median,
                    r.mmap,
                    r.zeropage_per_iter,
                    r.pool_hits,
                    r.pool_misses
                );
            }
        }
    }
    pool::configure(MemoryPoolConfig::default());
    pool::drain();
    lb_core::uffd::set_uffd_window_pages(lb_core::uffd::DEFAULT_UFFD_WINDOW_PAGES);

    // Correctness gate: every configuration must produce the same bits.
    let first = rows.first().map(|r| r.checksum_bits).unwrap_or(0);
    assert!(
        rows.iter().all(|r| r.checksum_bits == first),
        "checksum diverged across pool/window configurations"
    );
    // Batching gate: the 16-page window must service the sequential
    // kernel with ≥4× fewer UFFDIO_ZEROPAGE ioctls than per-page mode.
    let zp = |w: usize| {
        rows.iter()
            .filter(|r| r.strategy == "uffd" && r.window == w)
            .map(|r| r.zeropage_per_iter)
            .fold(0.0f64, f64::max)
    };
    if uffd_ok {
        let (base, batched) = (zp(1), zp(16));
        println!("uffd zeropage ioctls/iter: window1={base:.1} window16={batched:.1}");
        assert!(
            batched * 4.0 <= base,
            "batched fault service must cut ioctls >=4x ({base:.1} -> {batched:.1})"
        );
    }

    let mut json = String::from("{\n  \"bench\": \"");
    json.push_str(name);
    json.push_str("\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"strategy\":\"{}\",\"pool\":{},\"window\":{},\"iters\":{},\
             \"instantiate_us_median\":{:.2},\"mmap\":{},\"munmap\":{},\
             \"pool_hits\":{},\"pool_misses\":{},\"zeropage_per_iter\":{:.2},\
             \"batch_pages\":{},\"prefetch_streaks\":{},\"checksum_bits\":\"{:#018x}\"}}{}",
            r.strategy,
            r.pool,
            r.window,
            r.iters,
            r.instantiate_us_median,
            r.mmap,
            r.munmap,
            r.pool_hits,
            r.pool_misses,
            r.zeropage_per_iter,
            r.batch_pages,
            r.prefetch_streaks,
            r.checksum_bits,
            if i + 1 == rows.len() { "" } else { "," }
        ));
        json.push('\n');
    }
    json.push_str("  ]\n}\n");
    let path = std::path::Path::new("BENCH_pool.json");
    lb_harness::report::atomic_write(path, json.as_bytes()).unwrap();
    println!("wrote {}", path.display());
}
