//! Measure what the mid tier (IR-driven linear-scan register homes +
//! redundant-access elimination, `OptLevel::Mid`) buys over the baseline
//! tier (`OptLevel::None`, the spill-everything single pass a tiered
//! runtime executes before tier-up), and write the results to
//! `BENCH_midtier.json`.
//!
//! Every PolyBench kernel runs under both tiers for each of the trap,
//! clamp and uffd bounds-check strategies; the JSON records per-row
//! speedups plus the mid tier's register-allocation work counters
//! (`jit.midtier.*`), and the geometric-mean speedup under the trap
//! strategy as the headline number.
//!
//! Usage: `midtier_bench [--smoke] [--out PATH]`
//! (default `BENCH_midtier.json`; `--smoke` runs a three-kernel,
//! trap-only subset and writes nothing unless `--out` is given).

use lb_core::exec::{Engine, Linker};
use lb_core::{BoundsStrategy, MemoryConfig};
use lb_jit::{JitEngine, JitProfile, OptLevel};
use lb_polybench::common::Dataset;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

struct Measurement {
    time: Duration,
    spills: u64,
    reloads_elided: u64,
    dead_stores_elided: u64,
}

fn profile(opt: OptLevel) -> JitProfile {
    let mut p = JitProfile::wasmtime();
    p.opt = opt;
    p
}

fn measure(
    bench: &lb_polybench::Benchmark,
    strategy: BoundsStrategy,
    opt: OptLevel,
    iters: u32,
) -> Measurement {
    let before = lb_telemetry::snapshot();
    let engine = JitEngine::new(profile(opt));
    let loaded = engine.load(&bench.module).expect("load");
    let config = MemoryConfig::new(strategy, 1, 256);
    let mut inst = loaded
        .instantiate(&config, &Linker::new())
        .expect("instantiate");
    inst.invoke("init", &[]).expect("init");
    inst.invoke("kernel", &[]).expect("kernel"); // warm
    let t = Instant::now();
    for _ in 0..iters {
        inst.invoke("kernel", &[]).expect("kernel");
    }
    let time = t.elapsed() / iters;
    let delta = lb_telemetry::snapshot().delta_since(&before);
    Measurement {
        time,
        spills: delta.counter("jit.midtier.spills"),
        reloads_elided: delta.counter("jit.midtier.reloads_elided"),
        dead_stores_elided: delta.counter("jit.midtier.dead_stores_elided"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(p) => out_path = Some(p.clone()),
                None => {
                    eprintln!("usage: midtier_bench [--smoke] [--out PATH]");
                    std::process::exit(2);
                }
            },
            _ => {
                eprintln!("usage: midtier_bench [--smoke] [--out PATH]");
                std::process::exit(2);
            }
        }
    }

    let kernels: Vec<&str> = if smoke {
        lb_polybench::NAMES.iter().take(3).copied().collect()
    } else {
        lb_polybench::NAMES.to_vec()
    };
    let strategies: &[BoundsStrategy] = if smoke {
        &[BoundsStrategy::Trap]
    } else {
        &[
            BoundsStrategy::Trap,
            BoundsStrategy::Clamp,
            BoundsStrategy::Uffd,
        ]
    };
    let iters: u32 = if smoke { 2 } else { 5 };

    let mut rows = String::new();
    let mut trap_log_sum = 0.0f64;
    let mut trap_rows = 0usize;
    let mut first = true;
    for name in &kernels {
        let bench = lb_polybench::by_name(name, Dataset::Mini).expect("known kernel");
        for &strategy in strategies {
            let base = measure(&bench, strategy, OptLevel::None, iters);
            let mid = measure(&bench, strategy, OptLevel::Mid, iters);
            assert!(
                mid.reloads_elided > 0,
                "{name}/{strategy:?}: the mid tier must home hot locals"
            );
            let speedup = base.time.as_secs_f64() / mid.time.as_secs_f64();
            if strategy == BoundsStrategy::Trap {
                trap_log_sum += speedup.ln();
                trap_rows += 1;
            }
            println!(
                "{name:<12} {:<8} baseline {:>10.3?} mid {:>10.3?} speedup {speedup:.3}x \
                 (spills {}, reloads elided {}, dead stores {})",
                strategy.name(),
                base.time,
                mid.time,
                mid.spills,
                mid.reloads_elided,
                mid.dead_stores_elided
            );
            if !first {
                rows.push_str(",\n");
            }
            first = false;
            write!(
                rows,
                "    {{\"bench\": \"{name}\", \"strategy\": \"{}\", \
                 \"time_baseline_ns\": {}, \"time_mid_ns\": {}, \"speedup\": {:.4}, \
                 \"spills\": {}, \"reloads_elided\": {}, \"dead_stores_elided\": {}}}",
                strategy.name(),
                base.time.as_nanos(),
                mid.time.as_nanos(),
                speedup,
                mid.spills,
                mid.reloads_elided,
                mid.dead_stores_elided
            )
            .unwrap();
        }
    }

    let geomean = (trap_log_sum / trap_rows as f64).exp();
    println!("geomean speedup (trap, {trap_rows} kernels): {geomean:.3}x");
    if !smoke {
        assert!(
            geomean >= 1.10,
            "mid tier must be at least 1.10x the baseline tier (geomean, trap); got {geomean:.3}x"
        );
    }

    let json = format!(
        "{{\n  \"description\": \"mid tier (linear-scan register homes + \
         redundant-access elimination) vs the baseline spill-everything tier; \
         wasmtime profile shape, per PolyBench kernel x strategy\",\n  \
         \"iters\": {iters},\n  \"geomean_speedup_trap\": {geomean:.4},\n  \
         \"results\": [\n{rows}\n  ]\n}}\n"
    );
    match (smoke, out_path) {
        (_, Some(p)) => {
            std::fs::write(&p, json).expect("write results");
            println!("wrote {p}");
        }
        (false, None) => {
            std::fs::write("BENCH_midtier.json", json).expect("write results");
            println!("wrote BENCH_midtier.json");
        }
        (true, None) => println!("smoke mode: results not written"),
    }
}
