//! **Figure 6** — Average memory usage by runtime × strategy, measured as
//! `MemTotal − MemAvailable` during the run (the paper's §4.3 metric).
//! The paper's x86-vs-Arm difference came from transparent-huge-page
//! accounting of the 8 GiB reservations; the same effect is visible here
//! by comparing reservation sizes (`--reserve` in bytes, default 8 GiB).
//!
//! ```text
//! cargo run --release -p lb-bench --bin fig6 -- --dataset small
//! ```

use lb_bench::{emit, Args};
use lb_core::BoundsStrategy;
use lb_harness::{run_benchmark, EngineSel, RunSpec, Table};

fn main() {
    let args = Args::parse();
    let bench_name = args.bench.clone().unwrap_or_else(|| "gemm".into());
    let bench = lb_polybench::by_name(&bench_name, args.dataset)
        .or_else(|| lb_spec_proxy::by_name(&bench_name, args.scale()))
        .expect("benchmark");
    let reserve: usize = args
        .flags
        .get("reserve")
        .map(|s| s.parse().expect("reserve bytes"))
        .unwrap_or(lb_core::DEFAULT_RESERVE_BYTES);

    let mut strategies = vec![
        BoundsStrategy::None,
        BoundsStrategy::Clamp,
        BoundsStrategy::Trap,
        BoundsStrategy::Mprotect,
    ];
    if lb_core::uffd::sigbus_mode_available() {
        strategies.push(BoundsStrategy::Uffd);
    }

    let mut table = Table::new(&[
        "engine",
        "strategy",
        "mem_used_mib",
        "rss_peak_mib",
        "vm_mmaps",
        "vm_mprotects",
    ]);
    for engine in [
        EngineSel::Wavm,
        EngineSel::Wasmtime,
        EngineSel::V8,
        EngineSel::Interp,
    ] {
        let engine_strategies: &[BoundsStrategy] = if engine == EngineSel::Interp {
            &[BoundsStrategy::Trap]
        } else {
            &strategies
        };
        for &s in engine_strategies {
            let mut spec = RunSpec::new(engine, s);
            spec.warmup_iters = args.warmup;
            spec.measured_iters = args.iters;
            spec.sample_system = true;
            spec.reserve_bytes = reserve;
            let r = run_benchmark(&bench, &spec);
            assert!(r.checksum_ok);
            let sys = r.sys.expect("sampled");
            table.row(vec![
                engine.name().into(),
                s.name().into(),
                format!("{:.0}", sys.mem_used_bytes as f64 / (1 << 20) as f64),
                format!("{:.0}", sys.rss_peak_bytes as f64 / (1 << 20) as f64),
                r.vm.mmap.to_string(),
                r.vm.mprotect.to_string(),
            ]);
            eprintln!("  measured {} {}", engine.name(), s.name());
        }
    }
    println!(
        "\nFigure 6: average memory usage ({} @ {:?})\n",
        bench.name, args.dataset
    );
    emit(&table, &args.csv);
}
