//! Static bounds-check analysis report over the PolyBench suite, and the
//! CI elision-regression gate.
//!
//! For every kernel this prints the plan's access accounting — elided
//! (statically proven), hoisted (covered by a versioned loop's preheader
//! guard), emitted, and statically OOB — plus the elision ratio. No code
//! runs; the numbers come straight from `lb-analysis`, so the tool is
//! deterministic and fast enough to gate CI on.
//!
//! Usage:
//!   analysis_report                     print the table
//!   analysis_report --check FLOORS      exit nonzero if any kernel's
//!                                       elision ratio fell below its
//!                                       recorded floor
//!   analysis_report --write-floors FLOORS
//!                                       record the current ratios
//!
//! The floors file is TSV: `kernel<TAB>min_elision_ratio`, checked in at
//! `scripts/elision_floors.tsv` and consumed by `scripts/ci.sh`.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::process::ExitCode;

struct Row {
    accesses: u64,
    elided: u64,
    hoisted: u64,
    emitted: u64,
    oob: u64,
}

impl Row {
    fn ratio(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.elided as f64 / self.accesses as f64
        }
    }
}

fn analyze_all() -> BTreeMap<&'static str, Row> {
    let mut rows = BTreeMap::new();
    for name in lb_polybench::NAMES {
        let bench = lb_polybench::by_name(name, lb_polybench::Dataset::Mini).expect("known kernel");
        let meta = lb_wasm::validate(&bench.module).expect("kernel validates");
        let plan = lb_analysis::analyze_module(&bench.module, &meta);
        let (accesses, elided, emitted, oob) = plan.totals();
        rows.insert(
            name,
            Row {
                accesses,
                elided,
                hoisted: plan.total_hoisted(),
                emitted,
                oob,
            },
        );
    }
    rows
}

fn parse_floors(path: &str) -> BTreeMap<String, f64> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read floors file {path}: {e}"));
    let mut floors = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, ratio) = line
            .split_once('\t')
            .unwrap_or_else(|| panic!("malformed floors line: {line:?}"));
        floors.insert(
            name.to_string(),
            ratio
                .trim()
                .parse::<f64>()
                .unwrap_or_else(|e| panic!("bad ratio for {name}: {e}")),
        );
    }
    floors
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rows = analyze_all();

    match args.first().map(String::as_str) {
        Some("--check") => {
            let path = args.get(1).expect("--check needs a floors file");
            let floors = parse_floors(path);
            let mut regressions = Vec::new();
            for (name, floor) in &floors {
                match rows.get(name.as_str()) {
                    Some(row) if row.ratio() + 1e-9 < *floor => regressions.push(format!(
                        "{name}: elision ratio {:.4} fell below recorded floor {floor:.4} \
                         ({} of {} accesses elided, {} hoisted, {} emitted)",
                        row.ratio(),
                        row.elided,
                        row.accesses,
                        row.hoisted,
                        row.emitted
                    )),
                    Some(_) => {}
                    None => regressions.push(format!("{name}: kernel missing from the suite")),
                }
            }
            for name in rows.keys() {
                if !floors.contains_key(*name) {
                    regressions.push(format!(
                        "{name}: no recorded floor — add it to {path} (--write-floors)"
                    ));
                }
            }
            if regressions.is_empty() {
                println!(
                    "analysis_report --check: {} kernels at or above their elision floors",
                    rows.len()
                );
                ExitCode::SUCCESS
            } else {
                for r in &regressions {
                    eprintln!("analysis_report: REGRESSION: {r}");
                }
                ExitCode::FAILURE
            }
        }
        Some("--write-floors") => {
            let path = args.get(1).expect("--write-floors needs a floors file");
            let mut out = String::from(
                "# Per-kernel static elision floors (kernel<TAB>min ratio).\n\
                 # Regenerate with: cargo run -p lb-bench --bin analysis_report -- \
                 --write-floors scripts/elision_floors.tsv\n",
            );
            for (name, row) in &rows {
                writeln!(out, "{name}\t{:.4}", row.ratio()).unwrap();
            }
            std::fs::write(path, out).expect("write floors file");
            println!("wrote {} floors to {path}", rows.len());
            ExitCode::SUCCESS
        }
        _ => {
            println!(
                "{:<16} {:>9} {:>8} {:>8} {:>8} {:>5} {:>8}",
                "kernel", "accesses", "elided", "hoisted", "emitted", "oob", "elide%"
            );
            for (name, r) in &rows {
                println!(
                    "{:<16} {:>9} {:>8} {:>8} {:>8} {:>5} {:>7.1}%",
                    name,
                    r.accesses,
                    r.elided,
                    r.hoisted,
                    r.emitted,
                    r.oob,
                    100.0 * r.ratio()
                );
            }
            ExitCode::SUCCESS
        }
    }
}
