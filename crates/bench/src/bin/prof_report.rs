//! **Profiler report** — per-kernel bounds-check attribution from the
//! lb-prof sampling profiler: the table the paper's bounds-checking
//! analysis is really after. Each row is one PolyBench kernel under one
//! strategy, showing where sampled CPU time landed once every sampled
//! instruction was decoded and classified (guard compares, clamp
//! sequences, trap paths, plain memory accesses, compute, runtime).
//!
//! ```text
//! LB_PROF=sample:997 cargo run --release -p lb-bench --bin prof_report
//! cargo run --release -p lb-bench --bin prof_report -- --smoke
//! ```
//!
//! Sampling is enabled programmatically at the default rate when
//! `LB_PROF` is unset, so the binary is self-contained. `--smoke` is the
//! CI gate: it runs one kernel, writes a chrome trace, re-parses it, and
//! verifies the attribution percentages are self-consistent — exiting
//! nonzero on any violation.

use lb_bench::{emit, Args};
use lb_core::BoundsStrategy;
use lb_harness::{run_benchmark, EngineSel, RunSpec, Table};
use lb_prof::ProfReport;

/// The default kernel set: a spread over linear algebra, solvers and
/// stencils so elision behaves differently across rows (gemm's constant
/// trip counts elide fully; sparse-ish access patterns keep checks).
const KERNELS: [&str; 6] = ["gemm", "atax", "mvt", "trisolv", "jacobi-1d", "2mm"];

fn strategies() -> Vec<BoundsStrategy> {
    let mut v = vec![BoundsStrategy::Trap, BoundsStrategy::Clamp];
    // Always requested; the harness probe degrades it (uffd → mprotect →
    // trap) and the row records what actually ran.
    v.push(BoundsStrategy::Uffd);
    v
}

fn spec(engine: EngineSel, strategy: BoundsStrategy, iters: u32, warmup: u32) -> RunSpec {
    let mut s = RunSpec::new(engine, strategy);
    s.warmup_iters = warmup;
    s.measured_iters = iters;
    s
}

fn pct(report: &ProfReport, n: u64) -> String {
    format!("{:.1}", report.pct(n))
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    // Self-enable sampling when LB_PROF did not.
    if !lb_prof::enabled() {
        lb_prof::set_sampling(lb_prof::DEFAULT_HZ);
    }
    let mut args = Args::parse();
    // Sampling needs hundreds of milliseconds of CPU per row; the shared
    // 5-iteration default is tuned for timing, not profiling.
    if !args.flags.contains_key("iters") {
        args.iters = 200;
    }
    let engine = match args.flags.get("engine").map(String::as_str) {
        None | Some("wasmtime") => EngineSel::Wasmtime,
        Some("wavm") => EngineSel::Wavm,
        Some("v8") => EngineSel::V8,
        Some(other) => panic!("--engine {other}: profiler needs a JIT (wavm|wasmtime|v8)"),
    };

    let mut table = Table::new(&[
        "bench",
        "strategy",
        "samples",
        "guard%",
        "clamp%",
        "trap%",
        "mem%",
        "compute%",
        "runtime%",
        "unresolved",
        "median_us",
    ]);
    for name in KERNELS {
        if args.bench.as_deref().is_some_and(|b| b != name) {
            continue;
        }
        let bench = lb_polybench::by_name(name, args.dataset).expect("kernel");
        for strategy in strategies() {
            let r = run_benchmark(&bench, &spec(engine, strategy, args.iters, args.warmup));
            assert!(r.checksum_ok, "{name} {strategy} checksum");
            let Some(report) = r.prof.as_ref() else {
                eprintln!("  {name} {strategy}: no profile (session busy?) — skipped");
                continue;
            };
            table.row(vec![
                name.into(),
                r.effective_strategy.name().into(),
                report.total.to_string(),
                pct(report, report.guard),
                pct(report, report.clamp),
                pct(report, report.trap_path),
                pct(report, report.mem_access),
                pct(report, report.compute),
                pct(report, report.runtime),
                report.unresolved.to_string(),
                r.median().as_micros().to_string(),
            ]);
            eprintln!(
                "  {name} {} ({} samples)",
                r.effective_strategy.name(),
                report.total
            );
        }
    }
    println!("\nProfiler attribution: self% of CPU samples by instruction class\n");
    emit(&table, &args.csv);
}

/// CI smoke gate: one kernel, then self-validate the profile and the
/// chrome-trace export. Exits nonzero (via panic/process::exit) on any
/// inconsistency.
fn smoke() {
    if !lb_prof::enabled() {
        lb_prof::set_sampling(lb_prof::DEFAULT_HZ);
    }
    // Small (not mini) and a few hundred iterations: at ~1 kHz sampling
    // the run must stay busy for a few hundred milliseconds to collect a
    // statistically meaningful sample count.
    let bench = lb_polybench::by_name("gemm", lb_polybench::common::Dataset::Small).unwrap();
    let r = run_benchmark(
        &bench,
        &spec(EngineSel::Wasmtime, BoundsStrategy::Trap, 300, 5),
    );
    let mut failures: Vec<String> = Vec::new();
    if !r.checksum_ok {
        failures.push("checksum mismatch".into());
    }
    let report = r.prof.as_ref().unwrap_or_else(|| {
        eprintln!("prof_report --smoke: no profile collected (sampling inactive?)");
        std::process::exit(1);
    });
    if report.total == 0 {
        failures.push("zero samples collected".into());
    }
    let class_sum: u64 = report.class_counts().iter().map(|(_, n)| n).sum();
    if class_sum != report.total {
        failures.push(format!(
            "class counts sum to {class_sum}, expected {}",
            report.total
        ));
    }
    let pct_sum: f64 = report
        .class_counts()
        .iter()
        .map(|&(_, n)| report.pct(n))
        .sum();
    if report.total > 0 && (pct_sum - 100.0).abs() > 0.5 {
        failures.push(format!(
            "class percentages sum to {pct_sum:.2}, expected ~100"
        ));
    }

    // Trace round-trip: write, re-parse with the in-tree JSON parser,
    // check the event stream carries every sample.
    let dir = lb_prof::out_dir().unwrap_or_else(|| std::path::PathBuf::from("target/prof-smoke"));
    let path = dir.join("smoke.trace.json");
    if let Err(e) = lb_prof::write_chrome_trace(&path, report, &r.telemetry.spans) {
        failures.push(format!("trace write failed: {e}"));
    } else {
        match std::fs::read_to_string(&path)
            .ok()
            .and_then(|text| lb_telemetry::json::parse(&text).ok())
        {
            None => failures.push("trace JSON does not parse".into()),
            Some(v) => {
                let events = v
                    .get("traceEvents")
                    .and_then(|e| e.as_arr())
                    .map_or(0, |a| a.len());
                let expect = report.samples.len() + r.telemetry.spans.len();
                if events != expect {
                    failures.push(format!("trace has {events} events, expected {expect}"));
                }
                let meta_samples = v
                    .get("metadata")
                    .and_then(|m| m.get("samples"))
                    .and_then(|s| s.as_f64());
                if meta_samples != Some(report.total as f64) {
                    failures.push(format!(
                        "trace metadata.samples {meta_samples:?} != {}",
                        report.total
                    ));
                }
            }
        }
    }

    if failures.is_empty() {
        println!(
            "prof_report --smoke: OK ({} samples, {} unresolved, guard {:.1}%, trace {})",
            report.total,
            report.unresolved,
            report.pct(report.guard),
            path.display()
        );
    } else {
        for f in &failures {
            eprintln!("prof_report --smoke: FAIL: {f}");
        }
        std::process::exit(1);
    }
}
