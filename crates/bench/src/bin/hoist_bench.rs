//! Measure what interprocedural analysis + guard hoisting buy at run
//! time, and write the results to `BENCH_hoist.json`.
//!
//! Two experiments:
//!
//! 1. The four PolyBench kernels whose triangular / data-dependent index
//!    shapes previously kept per-access checks emitted (deriche, durbin,
//!    ludcmp, nussinov): WAVM profile with the analysis plan vs the
//!    legacy peephole. With the plan these kernels are now fully
//!    check-free (`checks_emitted == 0`).
//! 2. A synthetic store loop whose bound is a function parameter — static
//!    analysis can never prove it, so the loop runs check-free only via
//!    the versioned fast body behind a hoisted preheader guard
//!    (`with_hoisting` on vs off).
//!
//! Usage: `hoist_bench [--out PATH]` (default `BENCH_hoist.json`).

use lb_core::exec::{Engine, Linker};
use lb_core::{BoundsStrategy, MemoryConfig};
use lb_jit::{JitEngine, JitProfile};
use lb_polybench::{by_name, common::Dataset};
use lb_wasm::module::{Export, ExportKind, Function};
use lb_wasm::{BlockType, FuncType, Instr, Limits, MemArg, MemoryType, Module, ValType, Value};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// The kernels that emitted per-access checks before the interprocedural
/// precision work landed.
const PREVIOUSLY_PARTIAL: &[&str] = &["deriche", "durbin", "ludcmp", "nussinov"];

const ITERS: u32 = 20;

struct Measurement {
    time: Duration,
    elided: u64,
    hoisted: u64,
    emitted: u64,
}

fn measure_kernel(bench: &lb_polybench::Benchmark, analysis: bool) -> Measurement {
    let before = lb_telemetry::snapshot();
    let engine = JitEngine::new(JitProfile::wavm().with_analysis(analysis));
    let loaded = engine.load(&bench.module).expect("load");
    let config = MemoryConfig::new(BoundsStrategy::Trap, 1, 256);
    let mut inst = loaded
        .instantiate(&config, &Linker::new())
        .expect("instantiate");
    inst.invoke("init", &[]).expect("init");
    inst.invoke("kernel", &[]).expect("kernel"); // warm
    let t = Instant::now();
    for _ in 0..ITERS {
        inst.invoke("kernel", &[]).expect("kernel");
    }
    let time = t.elapsed() / ITERS;
    let delta = lb_telemetry::snapshot().delta_since(&before);
    Measurement {
        time,
        elided: delta.counter("jit.checks.static_elided"),
        hoisted: delta.counter("jit.checks.hoisted"),
        emitted: delta.counter("jit.checks.emitted"),
    }
}

/// `go(n) -> i32`: `for i in 0..n` (unsigned) store `i` at `a[i]`; the
/// bound is a parameter, so only a hoisted guard makes the loop
/// check-free.
fn dynamic_bound_module() -> Module {
    let mut m = Module::new();
    m.types.push(FuncType {
        params: vec![ValType::I32],
        results: vec![ValType::I32],
    });
    m.memory = Some(MemoryType {
        limits: Limits {
            min: 1,
            max: Some(1),
        },
    });
    m.functions.push(Function {
        type_idx: 0,
        locals: vec![ValType::I32, ValType::I32],
        body: vec![
            Instr::I32Const(0),
            Instr::LocalSet(1),
            Instr::LocalGet(0),
            Instr::LocalSet(2),
            Instr::Block(BlockType::Empty),
            Instr::LocalGet(1),
            Instr::LocalGet(2),
            Instr::I32GeU,
            Instr::BrIf(0),
            Instr::Loop(BlockType::Empty),
            Instr::LocalGet(1),
            Instr::I32Const(2),
            Instr::I32Shl,
            Instr::LocalGet(1),
            Instr::I32Store(MemArg::offset(64)),
            Instr::LocalGet(1),
            Instr::I32Const(1),
            Instr::I32Add,
            Instr::LocalTee(1),
            Instr::LocalGet(2),
            Instr::I32LtU,
            Instr::BrIf(0),
            Instr::End,
            Instr::End,
            Instr::I32Const(0),
            Instr::I32Load(MemArg::offset(64)),
            Instr::End,
        ],
        name: Some("go".into()),
    });
    m.exports.push(Export {
        name: "go".into(),
        kind: ExportKind::Func(0),
    });
    lb_wasm::validate(&m).expect("module validates");
    m
}

fn measure_hoist(hoisting: bool) -> Measurement {
    let m = dynamic_bound_module();
    let before = lb_telemetry::snapshot();
    let engine = JitEngine::new(JitProfile::wavm().with_hoisting(hoisting));
    let loaded = engine.load(&m).expect("load");
    let config = MemoryConfig::new(BoundsStrategy::Trap, 1, 1).with_reserve(1 << 22);
    let mut inst = loaded
        .instantiate(&config, &Linker::new())
        .expect("instantiate");
    // Largest in-bounds bound: (n-1)*4 + 64 + 4 <= 65536.
    let n = Value::I32(16368);
    inst.invoke("go", std::slice::from_ref(&n)).expect("warm");
    let calls = 2000u32;
    let t = Instant::now();
    for _ in 0..calls {
        inst.invoke("go", std::slice::from_ref(&n)).expect("go");
    }
    let time = t.elapsed() / calls;
    let delta = lb_telemetry::snapshot().delta_since(&before);
    Measurement {
        time,
        elided: delta.counter("jit.checks.static_elided"),
        hoisted: delta.counter("jit.checks.hoisted"),
        emitted: delta.counter("jit.checks.emitted"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = match args.as_slice() {
        [] => "BENCH_hoist.json".to_string(),
        [flag, path] if flag == "--out" => path.clone(),
        _ => {
            eprintln!("usage: hoist_bench [--out PATH]");
            std::process::exit(2);
        }
    };

    let mut rows = String::new();
    for name in PREVIOUSLY_PARTIAL {
        let bench = by_name(name, Dataset::Small).expect("known kernel");
        let off = measure_kernel(&bench, false);
        let on = measure_kernel(&bench, true);
        assert_eq!(
            on.emitted, 0,
            "{name}: must be fully check-free with the analysis plan"
        );
        let speedup = off.time.as_secs_f64() / on.time.as_secs_f64();
        println!(
            "{name:<12} plan-off {:>10.3?} plan-on {:>10.3?} speedup {speedup:.3}x \
             (elided {}, emitted {})",
            off.time, on.time, on.elided, on.emitted
        );
        writeln!(
            rows,
            "    {{\"bench\": \"{name}\", \"kind\": \"static\", \
             \"time_off_ns\": {}, \"time_on_ns\": {}, \"speedup\": {:.4}, \
             \"checks_elided\": {}, \"checks_hoisted\": {}, \"checks_emitted\": {}, \
             \"check_free\": {}}},",
            off.time.as_nanos(),
            on.time.as_nanos(),
            speedup,
            on.elided,
            on.hoisted,
            on.emitted,
            on.emitted == 0
        )
        .unwrap();
    }

    let off = measure_hoist(false);
    let on = measure_hoist(true);
    // With hoisting the loop body exists twice: the fast copy's store is
    // counted hoisted, the slow copy's keeps an emitted check (so
    // `emitted` is higher than with hoisting off, while the *executed*
    // path is check-free).
    assert!(on.hoisted > 0, "hoisting must version the synthetic loop");
    let speedup = off.time.as_secs_f64() / on.time.as_secs_f64();
    println!(
        "dynamic-loop hoist-off {:>10.3?} hoist-on {:>10.3?} speedup {speedup:.3}x \
         (hoisted {}, emitted {})",
        off.time, on.time, on.hoisted, on.emitted
    );
    writeln!(
        rows,
        "    {{\"bench\": \"dynamic-bound-loop\", \"kind\": \"hoisted\", \
         \"time_off_ns\": {}, \"time_on_ns\": {}, \"speedup\": {:.4}, \
         \"checks_elided\": {}, \"checks_hoisted\": {}, \"checks_emitted\": {}, \
         \"check_free\": {}}}",
        off.time.as_nanos(),
        on.time.as_nanos(),
        speedup,
        on.elided,
        on.hoisted,
        on.emitted,
        on.emitted == 0
    )
    .unwrap();

    let json = format!(
        "{{\n  \"description\": \"bounds-check elision and guard hoisting: \
         wavm profile, trap strategy; time_off is the legacy peephole (static \
         rows) or hoisting disabled (hoisted row)\",\n  \"iters\": {ITERS},\n  \
         \"results\": [\n{rows}  ]\n}}\n"
    );
    std::fs::write(&out_path, json).expect("write results");
    println!("wrote {out_path}");
}
