//! **Figure 2** — Geometric mean of per-benchmark median execution times
//! divided by the native baseline, for every runtime × bounds-checking
//! strategy, PolyBench and SPEC-proxy separated.
//!
//! * `--isa x86_64` (default): real measurements on the host.
//! * `--isa armv8` / `--isa riscv`: the cross-ISA cost model (figures
//!   2b/2c) — per-strategy overhead relative to `none` estimated from the
//!   dynamic instruction mix and the target microarchitecture's costs.
//!   (On RISC-V the paper could only run Native, Wasm3 and V8 — the model
//!   covers the strategy dimension those runtimes shared.)
//!
//! ```text
//! cargo run --release -p lb-bench --bin fig2 -- --dataset small --isa x86_64
//! ```

use lb_bench::{emit, Args};
use lb_core::BoundsStrategy;
use lb_harness::{run_benchmark, stats, EngineSel, RunSpec, Table};
use std::collections::HashMap;

fn main() {
    let args = Args::parse();
    let isa = args
        .flags
        .get("isa")
        .cloned()
        .unwrap_or_else(|| "x86_64".into());
    if isa == "x86_64" {
        measured(&args);
    } else {
        modeled(&args, &isa);
    }
}

fn strategies() -> Vec<BoundsStrategy> {
    let mut v = vec![
        BoundsStrategy::None,
        BoundsStrategy::Clamp,
        BoundsStrategy::Trap,
        BoundsStrategy::Mprotect,
    ];
    if lb_core::uffd::sigbus_mode_available() {
        v.push(BoundsStrategy::Uffd);
    }
    v
}

/// Figure 2a: real measurements, every engine × strategy vs native.
fn measured(args: &Args) {
    let benches = args.benchmarks();
    let strategies = strategies();

    // Native baselines per benchmark.
    let mut native: HashMap<String, std::time::Duration> = HashMap::new();
    for b in &benches {
        let mut spec = RunSpec::new(EngineSel::Native, BoundsStrategy::None);
        spec.warmup_iters = args.warmup;
        spec.measured_iters = args.iters;
        let r = run_benchmark(b, &spec);
        native.insert(b.name.clone(), r.median());
        eprintln!("  native {}", b.name);
    }

    let mut table = Table::new(&["suite", "engine", "strategy", "geomean_vs_native"]);
    for engine in [
        EngineSel::Wavm,
        EngineSel::Wasmtime,
        EngineSel::V8,
        EngineSel::Interp,
    ] {
        let engine_strategies: &[BoundsStrategy] = if engine == EngineSel::Interp {
            // The paper leaves Wasm3 on its built-in (trap-equivalent)
            // checks; we report the same single configuration.
            &[BoundsStrategy::Trap]
        } else {
            &strategies
        };
        for &s in engine_strategies {
            for suite in ["polybench", "spec"] {
                let mut ratios = Vec::new();
                for b in benches.iter().filter(|b| b.suite == suite) {
                    let mut spec = RunSpec::new(engine, s);
                    spec.warmup_iters = args.warmup;
                    spec.measured_iters = args.iters;
                    let r = run_benchmark(b, &spec);
                    assert!(r.checksum_ok, "{} {s} checksum", b.name);
                    ratios.push(stats::ratio(r.median(), native[&b.name]));
                }
                if ratios.is_empty() {
                    continue;
                }
                table.row(vec![
                    suite.into(),
                    engine.name().into(),
                    s.name().into(),
                    format!("{:.3}", stats::geomean_ratios(&ratios)),
                ]);
            }
            eprintln!("  measured {} {}", engine.name(), s);
        }
    }
    println!("\nFigure 2a (x86_64, measured): geomean of medians vs native\n");
    emit(&table, &args.csv);
}

/// Figures 2b/2c: the ISA cost model. Reported relative to `none` per ISA
/// (the strategy dimension; runtime quality is a per-host property).
fn modeled(args: &Args, isa_name: &str) {
    let isa = lb_isa_model::by_name(isa_name)
        .unwrap_or_else(|| panic!("unknown --isa {isa_name} (x86_64|armv8|riscv)"));
    let mut table = Table::new(&["suite", "strategy", "geomean_vs_none", "isa"]);
    let benches = args.benchmarks();
    let mut mixes = Vec::new();
    for b in &benches {
        eprintln!("  profiling {}", b.name);
        mixes.push((b.suite, lb_isa_model::profile_benchmark(b)));
    }
    for s in strategies() {
        for suite in ["polybench", "spec"] {
            let ratios: Vec<f64> = mixes
                .iter()
                .filter(|(su, _)| *su == suite)
                .map(|(_, m)| 1.0 + lb_isa_model::strategy_overhead(m, &isa, s))
                .collect();
            if ratios.is_empty() {
                continue;
            }
            table.row(vec![
                suite.into(),
                s.name().into(),
                format!("{:.3}", stats::geomean_ratios(&ratios)),
                isa.name.into(),
            ]);
        }
    }
    println!(
        "\nFigure 2{} ({}, cost model): strategy cost normalized to `none`\n",
        if isa_name == "armv8" { "b" } else { "c" },
        isa.name
    );
    emit(&table, &args.csv);
}
