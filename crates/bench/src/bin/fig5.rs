//! **Figure 5** — Context switches per second. Reproduces the paper's two
//! observations: mprotect-strategy lock sleeps inflate switches at high
//! thread counts, and the V8 profile's stop-the-world pauses add an order
//! of magnitude more.
//!
//! ```text
//! cargo run --release -p lb-bench --bin fig5 -- --dataset small
//! ```

use lb_bench::{emit, scaling_data, Args};
use lb_harness::Table;

fn main() {
    let args = Args::parse();
    let points = scaling_data(&args);
    let mut table = Table::new(&["engine", "strategy", "threads", "ctxt_per_sec", "mode"]);
    for p in &points {
        table.row(vec![
            p.engine.clone(),
            p.strategy.clone(),
            p.threads.to_string(),
            format!("{:.0}", p.ctxt_per_sec),
            if p.simulated { "sim" } else { "measured" }.into(),
        ]);
    }
    println!("\nFigure 5: context switches per second\n");
    emit(&table, &args.csv);
}
