//! **Figure 3** — Performance scaling with increased number of threads
//! (1/4/16 isolates pinned to cores, as in the paper). Default output is
//! the mm-contention simulator modeling the paper's 16-hardware-thread
//! machines; pass `--measured` on a multicore host for real runs.
//!
//! ```text
//! cargo run --release -p lb-bench --bin fig3 -- --dataset small
//! ```

use lb_bench::{emit, scaling_data, Args};
use lb_harness::Table;

fn main() {
    let args = Args::parse();
    let points = scaling_data(&args);
    let mut table = Table::new(&[
        "engine",
        "strategy",
        "threads",
        "iters_per_sec",
        "speedup_vs_1t",
        "mode",
    ]);
    for p in &points {
        let base = points
            .iter()
            .find(|q| q.engine == p.engine && q.strategy == p.strategy && q.threads == 1)
            .map(|q| q.iters_per_sec)
            .unwrap_or(p.iters_per_sec);
        table.row(vec![
            p.engine.clone(),
            p.strategy.clone(),
            p.threads.to_string(),
            format!("{:.1}", p.iters_per_sec),
            format!("{:.2}", p.iters_per_sec / base),
            if p.simulated { "sim" } else { "measured" }.into(),
        ]);
    }
    println!("\nFigure 3: performance scaling with thread count\n");
    emit(&table, &args.csv);
}
