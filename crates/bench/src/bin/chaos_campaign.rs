//! A fault-injection measurement campaign: every (benchmark × strategy)
//! cell runs through the crash-proof harness while `lb-chaos` perturbs
//! the runtime's OS boundaries, and every run — completed or failed —
//! becomes one JSONL row. The point is the paper-adjacent robustness
//! claim: a bounds-checking runtime that measures guard-page tricks must
//! survive those tricks failing, and the campaign must outlive any
//! single run.
//!
//! Usage:
//!
//! ```text
//! chaos_campaign [--dataset mini|small|medium] [--bench NAME]
//!                [--iters N] [--warmup N]
//!                [--faults SPEC]     # lb-chaos spec, e.g. core.uffd.create:1:EPERM
//!                [--out PATH]        # JSONL report (default chaos_campaign.jsonl)
//! ```
//!
//! Without `--faults`, the `LB_FAULTS` environment variable (if set) still
//! applies — the flag merely installs the spec explicitly and fails fast
//! on a typo instead of warning.

use lb_bench::Args;
use lb_core::BoundsStrategy;
use lb_harness::{report::JsonlReport, run_benchmark_checked, EngineSel, RunOutcome, RunSpec};
use std::path::Path;

fn main() {
    let args = Args::parse();
    let _guard = args
        .flags
        .get("faults")
        .map(|spec| lb_chaos::install(spec).unwrap_or_else(|e| panic!("--faults: {e}")));
    let out = args
        .flags
        .get("out")
        .cloned()
        .unwrap_or_else(|| "chaos_campaign.jsonl".into());
    let out = Path::new(&out);

    let benches = args.benchmarks();
    let mut report = JsonlReport::new();
    let (mut completed, mut failed) = (0u32, 0u32);

    println!(
        "{:<14} {:<10} {:<10} {:<11} {:>10}  outcome",
        "bench", "requested", "effective", "median", "checksum"
    );
    for bench in &benches {
        for strategy in BoundsStrategy::ALL {
            let mut spec = RunSpec::new(EngineSel::Wavm, strategy);
            spec.warmup_iters = args.warmup;
            spec.measured_iters = args.iters;
            spec.reserve_bytes = 256 << 20;
            spec.max_pages = 2048;
            let mut row: Vec<(&str, String)> = vec![
                ("bench", bench.name.to_string()),
                ("engine", spec.engine.name().to_string()),
                ("strategy", strategy.name().to_string()),
            ];
            match run_benchmark_checked(bench, &spec) {
                RunOutcome::Completed(r) => {
                    completed += 1;
                    println!(
                        "{:<14} {:<10} {:<10} {:<11} {:>10}  completed",
                        bench.name,
                        strategy.name(),
                        r.effective_strategy.name(),
                        lb_harness::report::fmt_duration(r.median()),
                        if r.checksum_ok { "ok" } else { "MISMATCH" },
                    );
                    row.push(("outcome", "completed".into()));
                    row.push(("strategy_effective", r.effective_strategy.name().into()));
                    row.push(("median_ns", r.median().as_nanos().to_string()));
                    row.push(("checksum_ok", r.checksum_ok.to_string()));
                    row.push((
                        "fallbacks",
                        r.telemetry.counter("core.strategy.fallback").to_string(),
                    ));
                }
                RunOutcome::Failed(f) => {
                    failed += 1;
                    println!(
                        "{:<14} {:<10} {:<10} {:<11} {:>10}  FAILED at {}: {}",
                        bench.name,
                        strategy.name(),
                        "-",
                        "-",
                        "-",
                        f.stage.name(),
                        f.error,
                    );
                    row.push(("outcome", "failed".into()));
                    row.push(("stage", f.stage.name().into()));
                    row.push(("error", f.error.clone()));
                    row.push(("attempts", f.attempts.to_string()));
                }
            }
            report.row(&row);
            // Flush after every run: atomic rename keeps the file a
            // complete campaign prefix even if the process dies here.
            if let Err(e) = report.flush(out) {
                eprintln!("warning: could not write {}: {e}", out.display());
            }
        }
    }
    println!(
        "\n{} runs: {completed} completed, {failed} failed -> {}",
        completed + failed,
        out.display()
    );
}
