//! **§4.4 replication** — the paper's comparisons to prior work:
//!
//! * Titzer 2022: Wasm3 ≈ 6–11× slower than V8-TurboFan on PolyBench —
//!   here: interp vs the V8-profile JIT;
//! * Rossberg et al. 2017: V8 within 2× of native for most PolyBench;
//! * Jangda et al. 2019: ≈1.55–1.76× geomean SPEC slowdown on V8;
//! * this paper: WAVM within 8–20% of native on x86_64 (our baseline JIT
//!   is farther from native — a documented substitution — but the engine
//!   *ordering* WAVM < Wasmtime < V8 < interp is reproduced).
//!
//! ```text
//! cargo run --release -p lb-bench --bin replication -- --dataset small
//! ```

use lb_bench::{emit, Args};
use lb_core::BoundsStrategy;
use lb_harness::{run_benchmark, stats, EngineSel, RunSpec, Table};
use std::collections::HashMap;

fn main() {
    let args = Args::parse();
    let benches = args.benchmarks();

    let mut medians: HashMap<(String, &'static str), f64> = HashMap::new();
    for engine in [
        EngineSel::Native,
        EngineSel::Wavm,
        EngineSel::Wasmtime,
        EngineSel::V8,
        EngineSel::Interp,
    ] {
        for b in &benches {
            // Skip the interpreter on big SPEC proxies at large datasets.
            let mut spec = RunSpec::new(engine, BoundsStrategy::Mprotect);
            spec.warmup_iters = args.warmup;
            spec.measured_iters = args.iters;
            let r = run_benchmark(b, &spec);
            assert!(r.checksum_ok, "{} on {}", b.name, engine.name());
            medians.insert((b.name.clone(), engine.name()), r.median().as_secs_f64());
        }
        eprintln!("  measured {}", engine.name());
    }

    let geo = |suite: &str, num: &'static str, den: &'static str| -> f64 {
        let ratios: Vec<f64> = benches
            .iter()
            .filter(|b| b.suite == suite)
            .map(|b| medians[&(b.name.clone(), num)] / medians[&(b.name.clone(), den)])
            .collect();
        stats::geomean_ratios(&ratios)
    };

    let mut t = Table::new(&["claim", "paper", "this reproduction"]);
    if benches.iter().any(|b| b.suite == "polybench") {
        t.row(vec![
            "Wasm3 vs V8-TurboFan (PolyBench)".into(),
            "6x-11x slower".into(),
            format!("{:.1}x slower", geo("polybench", "interp", "v8")),
        ]);
        t.row(vec![
            "V8 vs native (PolyBench)".into(),
            "most within 2x (Rossberg'17)".into(),
            format!("{:.2}x geomean", geo("polybench", "v8", "native")),
        ]);
        t.row(vec![
            "WAVM vs native (PolyBench)".into(),
            "1.08x-1.2x geomean".into(),
            format!(
                "{:.2}x geomean (baseline JIT)",
                geo("polybench", "wavm", "native")
            ),
        ]);
        let order_ok = geo("polybench", "wavm", "native") <= geo("polybench", "wasmtime", "native")
            && geo("polybench", "wasmtime", "native") <= geo("polybench", "v8", "native")
            && geo("polybench", "v8", "native") < geo("polybench", "interp", "native");
        t.row(vec![
            "Engine ordering wavm<=wasmtime<=v8<interp".into(),
            "holds".into(),
            if order_ok { "holds" } else { "VIOLATED" }.into(),
        ]);
    }
    if benches.iter().any(|b| b.suite == "spec") {
        t.row(vec![
            "V8 vs native (SPEC)".into(),
            "1.69x geomean (x86_64)".into(),
            format!("{:.2}x geomean (proxies)", geo("spec", "v8", "native")),
        ]);
    }
    println!("\nSection 4.4 replication of prior results\n");
    emit(&t, &args.csv);
}
