//! **Figure 4** — Average CPU load during benchmark execution (the paper's
//! eq. 1, rescaled so 100% = one fully-busy core). Shows mprotect's
//! failure to saturate the CPU at 16 threads and V8's pause-induced dips.
//!
//! ```text
//! cargo run --release -p lb-bench --bin fig4 -- --dataset small
//! ```

use lb_bench::{emit, scaling_data, Args};
use lb_harness::Table;

fn main() {
    let args = Args::parse();
    let points = scaling_data(&args);
    let mut table = Table::new(&["engine", "strategy", "threads", "cpu_util_pct", "mode"]);
    for p in &points {
        table.row(vec![
            p.engine.clone(),
            p.strategy.clone(),
            p.threads.to_string(),
            format!("{:.0}", p.utilization_pct),
            if p.simulated { "sim" } else { "measured" }.into(),
        ]);
    }
    println!("\nFigure 4: average CPU utilisation (100% = one busy core)\n");
    emit(&table, &args.csv);
}
