//! Micro-bench: memory-subsystem ablations behind figures 3-5 and the
//! design choices DESIGN.md calls out:
//!
//! * isolate lifecycle (reserve→commit→teardown) per strategy — the churn
//!   that serializes on mmap_lock;
//! * uffd SIGBUS-mode fault service vs poll-mode (the paper's footnote 2);
//! * the hazard-pointer arena registry vs a mutexed map (paper §4.2.1);
//! * trap machinery: catch_traps entry and a full hardware-trap round trip.

use lb_bench::micro::{black_box, BenchmarkId, Criterion};
use lb_bench::{criterion_group, criterion_main};
use lb_core::registry::{ArenaDesc, HazardRegistry};
use lb_core::signals::catch_traps;
use lb_core::{BoundsStrategy, LinearMemory, MemoryConfig};

fn bench_isolate_lifecycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("isolate_lifecycle");
    group.sample_size(20);
    for s in BoundsStrategy::ALL {
        if s == BoundsStrategy::Uffd && !lb_core::uffd::sigbus_mode_available() {
            continue;
        }
        // 16 committed wasm pages per isolate, 64 MiB reservation.
        let config = MemoryConfig::new(s, 16, 64).with_reserve(64 << 20);
        group.bench_with_input(BenchmarkId::from_parameter(s.name()), &s, |b, _| {
            b.iter(|| {
                let m = LinearMemory::new(&config).unwrap();
                // Touch one page like a warm function would.
                catch_traps(|| m.store::<u64>(128, 0, 42)).unwrap();
                drop(m);
            })
        });
    }
    group.finish();
}

fn bench_uffd_fault_service(c: &mut Criterion) {
    if !lb_core::uffd::sigbus_mode_available() {
        return;
    }
    let mut group = c.benchmark_group("uffd_fault");
    group.sample_size(20);
    // SIGBUS mode: first touch of each page is a signal + UFFDIO_ZEROPAGE.
    group.bench_function("sigbus_first_touch_page", |b| {
        b.iter_with_setup(
            || {
                LinearMemory::new(
                    &MemoryConfig::new(BoundsStrategy::Uffd, 64, 64).with_reserve(8 << 20),
                )
                .unwrap()
            },
            |m| {
                catch_traps(|| {
                    for page in 0..16u32 {
                        m.store::<u8>(page * 65536, 0, 1)?;
                    }
                    Ok(())
                })
                .unwrap();
                drop(m);
            },
        )
    });
    // mprotect-backed minor faults for comparison.
    group.bench_function("mprotect_first_touch_page", |b| {
        b.iter_with_setup(
            || {
                LinearMemory::new(
                    &MemoryConfig::new(BoundsStrategy::Mprotect, 64, 64).with_reserve(8 << 20),
                )
                .unwrap()
            },
            |m| {
                catch_traps(|| {
                    for page in 0..16u32 {
                        m.store::<u8>(page * 65536, 0, 1)?;
                    }
                    Ok(())
                })
                .unwrap();
                drop(m);
            },
        )
    });
    group.finish();
}

fn bench_registry(c: &mut Criterion) {
    let mut group = c.benchmark_group("arena_registry");
    // Hazard-pointer registry (the paper's design).
    let reg: HazardRegistry<ArenaDesc> = HazardRegistry::new();
    let (slot, ptr) = reg.register(Box::new(ArenaDesc::new(
        0x10000,
        0x10000,
        0x10000,
        BoundsStrategy::Uffd,
        -1,
    )));
    let h = reg.claim_hazard();
    group.bench_function("hazard_lookup", |b| {
        b.iter(|| reg.find_with(h, |d| d.contains(0x18000), |d| d.base))
    });
    // The signal handler's cached-slot probe: the win batched fault
    // service leans on when every fault lands in the same arena.
    group.bench_function("hazard_lookup_hinted", |b| {
        b.iter(|| reg.find_with_hint(h, 0, |d| d.contains(0x18000), |d| d.base))
    });
    // Mutexed map for comparison (what a lock-based runtime would do).
    let map = std::sync::Mutex::new(vec![(0x10000usize, 0x20000usize)]);
    group.bench_function("mutex_lookup", |b| {
        b.iter(|| {
            let g = map.lock().unwrap();
            g.iter()
                .find(|(lo, hi)| 0x18000 >= *lo && 0x18000 < *hi)
                .map(|x| x.0)
        })
    });
    reg.release_hazard(h);
    reg.unregister(slot, ptr);
    group.finish();
}

fn bench_trap_machinery(c: &mut Criterion) {
    let mut group = c.benchmark_group("trap_machinery");
    group.bench_function("catch_traps_entry", |b| {
        b.iter(|| catch_traps(|| Ok::<_, lb_core::Trap>(black_box(1) + 1)))
    });
    // A full hardware OOB round trip: SIGSEGV → handler → classified trap.
    let config = MemoryConfig::new(BoundsStrategy::Mprotect, 1, 1).with_reserve(4 << 20);
    let m = LinearMemory::new(&config).unwrap();
    group.bench_function("hardware_oob_roundtrip", |b| {
        b.iter(|| {
            let e = catch_traps(|| m.load::<u8>(2 * 65536, 0)).unwrap_err();
            black_box(e);
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_isolate_lifecycle,
    bench_uffd_fault_service,
    bench_registry,
    bench_trap_machinery
);
criterion_main!(benches);
