//! Micro-bench: per-strategy kernel execution cost on the WAVM-profile
//! engine (the microbenchmark behind figures 1 and 2's strategy axis).

use lb_bench::micro::{BenchmarkId, Criterion};
use lb_bench::{criterion_group, criterion_main};
use lb_core::exec::{Engine, Linker};
use lb_core::{BoundsStrategy, MemoryConfig};
use lb_jit::{JitEngine, JitProfile};
use lb_polybench::{by_name, common::Dataset};

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("strategy_kernel");
    group.sample_size(10);
    for kernel in ["gemm", "jacobi-2d", "atax"] {
        let bench = by_name(kernel, Dataset::Small).unwrap();
        let engine = JitEngine::new(JitProfile::wavm());
        let loaded = engine.load(&bench.module).unwrap();
        for s in BoundsStrategy::ALL {
            if s == BoundsStrategy::Uffd && !lb_core::uffd::sigbus_mode_available() {
                continue;
            }
            let config = MemoryConfig::new(s, 0, 512).with_reserve(256 << 20);
            let mut inst = loaded.instantiate(&config, &Linker::new()).unwrap();
            inst.invoke("init", &[]).unwrap();
            group.bench_with_input(BenchmarkId::new(kernel, s.name()), &s, |b, _| {
                b.iter(|| {
                    inst.invoke("kernel", &[]).unwrap();
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
