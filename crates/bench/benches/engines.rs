//! Micro-bench: the same kernel across all runtimes (figure 2's engine
//! axis) plus the native baseline.

use lb_bench::micro::{BenchmarkId, Criterion};
use lb_bench::{criterion_group, criterion_main};
use lb_core::exec::Linker;
use lb_core::{BoundsStrategy, MemoryConfig};
use lb_harness::EngineSel;
use lb_polybench::{by_name, common::Dataset};

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_kernel");
    group.sample_size(10);
    let bench = by_name("gemm", Dataset::Small).unwrap();

    // Native baseline.
    let mut native = (bench.native)();
    native.init();
    group.bench_function(BenchmarkId::new("gemm", "native"), |b| {
        b.iter(|| native.kernel())
    });

    for sel in EngineSel::WASM_RUNTIMES {
        let engine = sel.engine().unwrap();
        let loaded = engine.load(&bench.module).unwrap();
        let config = MemoryConfig::new(BoundsStrategy::Mprotect, 0, 512).with_reserve(256 << 20);
        let mut inst = loaded.instantiate(&config, &Linker::new()).unwrap();
        inst.invoke("init", &[]).unwrap();
        if sel == EngineSel::Interp {
            // One warm call is enough; the interpreter needs no tiering.
            group.sample_size(10);
        }
        group.bench_function(BenchmarkId::new("gemm", sel.name()), |b| {
            b.iter(|| {
                inst.invoke("kernel", &[]).unwrap();
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
