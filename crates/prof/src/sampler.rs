//! SIGPROF delivery: timer arm/disarm, the signal handler, sessions.
//!
//! # Signal-coexistence rules
//!
//! The runtime already owns SIGSEGV/SIGBUS/SIGILL/SIGFPE (bounds traps,
//! uffd fault service — `lb-core`'s `signals.rs`). SIGPROF is disjoint
//! from all of those, and the kernel may deliver it *while one of them is
//! being handled* (the fault handler does not mask SIGPROF). The handler
//! below is therefore held to the same standard as the trap handler, and
//! checked by the same `repo_lint` ban: no allocation, no formatting, no
//! locks, no lazy TLS init — only loads/stores of pre-registered atomics,
//! plus the async-signal-safe `clock_gettime` vDSO call. `errno` is
//! saved and restored so a sample landing between a syscall and its
//! errno check cannot corrupt the interrupted thread.
//!
//! Instrument handles (`prof.samples.taken` counter,
//! `prof.sample_service_ns` histogram) are interned from normal context
//! in [`Session::start_with_hz`]; the handler reads them through
//! `OnceLock::get`, which is a single atomic load.

use crate::ring::{self, Sample};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Once, OnceLock};

static INSTALL: Once = Once::new();
static ACTIVE: AtomicBool = AtomicBool::new(false);

static SAMPLES_TAKEN: OnceLock<lb_telemetry::Counter> = OnceLock::new();
static SERVICE_HIST: OnceLock<lb_telemetry::Histogram> = OnceLock::new();

static NEXT_THREAD: AtomicU32 = AtomicU32::new(1);

thread_local! {
    // Const-initialized Cell<u32>: reads never allocate or register a
    // destructor, so the handler may load it.
    static THREAD_ID: Cell<u32> = const { Cell::new(0) };
}

/// Assign this thread a stable profiler thread id (shown in traces).
/// Call from normal context, e.g. when a worker starts; without it, the
/// thread's samples carry id 0.
pub fn ensure_thread() {
    THREAD_ID.with(|c| {
        if c.get() == 0 {
            c.set(NEXT_THREAD.fetch_add(1, Ordering::Relaxed));
        }
    });
}

extern "C" fn sigprof_handler(
    _sig: libc::c_int,
    _info: *mut libc::siginfo_t,
    ctx: *mut libc::c_void,
) {
    // SAFETY: __errno_location is async-signal-safe and always valid.
    let errno_p = unsafe { libc::__errno_location() };
    let saved_errno = unsafe { *errno_p };
    sigprof_handler_inner(ctx);
    unsafe { *errno_p = saved_errno };
}

fn sigprof_handler_inner(ctx: *mut libc::c_void) {
    let t0 = lb_telemetry::clock::now_ns();
    let uc = ctx as *const libc::ucontext_t;
    // SAFETY: the kernel hands SA_SIGINFO handlers a valid ucontext_t;
    // REG_RIP indexes within gregs (layout-tested in lb-sys).
    let pc = unsafe { (*uc).uc_mcontext.gregs[libc::REG_RIP as usize] } as u64;
    let thread = THREAD_ID.try_with(Cell::get).unwrap_or(0);
    ring::record(pc, t0, thread);
    if let Some(c) = SAMPLES_TAKEN.get() {
        c.inc();
    }
    if let Some(h) = SERVICE_HIST.get() {
        h.record(lb_telemetry::clock::now_ns().wrapping_sub(t0));
    }
}

fn install_handler() {
    INSTALL.call_once(|| {
        // SAFETY: standard sigaction installation; the handler obeys the
        // async-signal-safety contract documented above. SA_ONSTACK is a
        // no-op on threads without an altstack and keeps SIGPROF off the
        // main stack on threads that service guard faults on one.
        unsafe {
            let mut sa: libc::sigaction = std::mem::zeroed();
            sa.sa_sigaction = sigprof_handler
                as extern "C" fn(libc::c_int, *mut libc::siginfo_t, *mut libc::c_void)
                as usize;
            sa.sa_flags = libc::SA_SIGINFO | libc::SA_RESTART | libc::SA_ONSTACK;
            libc::sigemptyset(&mut sa.sa_mask);
            libc::sigaction(libc::SIGPROF, &sa, std::ptr::null_mut());
        }
    });
}

fn set_timer(interval_us: i64) {
    let tv = libc::timeval {
        tv_sec: interval_us / 1_000_000,
        tv_usec: interval_us % 1_000_000,
    };
    let it = libc::itimerval {
        it_interval: tv,
        it_value: tv,
    };
    // SAFETY: plain syscall with a valid pointer; disarming (zero
    // interval) is the documented behavior for a zeroed itimerval.
    unsafe {
        libc::setitimer(libc::ITIMER_PROF, &it, std::ptr::null_mut());
    }
}

/// Everything a stopped session captured, before resolution.
#[derive(Debug)]
pub struct RawProfile {
    /// Captured samples, oldest first.
    pub samples: Vec<Sample>,
    /// Samples lost to ring overflow (exact count).
    pub dropped: u64,
    /// Slots claimed by a handler that had not finished writing by the
    /// end of the post-disarm quiesce window (counted, never read).
    pub incomplete: u64,
    /// Configured rate.
    pub hz: u32,
    /// Session start / stop, monotonic ns.
    pub started_ns: u64,
    /// See `started_ns`.
    pub stopped_ns: u64,
}

/// An active sampling session. At most one exists process-wide
/// (`ITIMER_PROF` is a process resource); drop or [`Session::stop`]
/// disarms the timer.
pub struct Session {
    gen: u32,
    hz: u32,
    started_ns: u64,
}

impl Session {
    /// Arm the profiler at `hz`. `None` if `hz == 0` or a session is
    /// already active.
    pub fn start_with_hz(hz: u32) -> Option<Session> {
        if hz == 0 || ACTIVE.swap(true, Ordering::SeqCst) {
            return None;
        }
        // All the not-signal-safe setup happens here, before arming.
        lb_telemetry::ensure_thread_ring();
        let _ = SAMPLES_TAKEN.get_or_init(|| lb_telemetry::counter("prof.samples.taken"));
        let _ = SERVICE_HIST.get_or_init(|| lb_telemetry::histogram("prof.sample_service_ns"));
        ring::init();
        ensure_thread();
        install_handler();
        let gen = ring::reset();
        let started_ns = lb_telemetry::clock::now_ns();
        set_timer(i64::from(1_000_000 / hz.clamp(1, 1_000_000)).max(1));
        Some(Session {
            gen,
            hz,
            started_ns,
        })
    }

    /// Disarm the timer and collect the samples.
    pub fn stop(self) -> RawProfile {
        set_timer(0);
        // Quiesce: a handler dispatched just before disarm may still be
        // mid-write on another thread. Its slot write takes nanoseconds;
        // anything still unstamped after this sleep is counted as
        // `incomplete` rather than waited on (no deadlock by design).
        std::thread::sleep(std::time::Duration::from_millis(2));
        let (samples, dropped, incomplete) = ring::drain(self.gen);
        let raw = RawProfile {
            samples,
            dropped,
            incomplete,
            hz: self.hz,
            started_ns: self.started_ns,
            stopped_ns: lb_telemetry::clock::now_ns(),
        };
        ACTIVE.store(false, Ordering::SeqCst);
        std::mem::forget(self);
        raw
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        set_timer(0);
        ACTIVE.store(false, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin_ms(ms: u64) {
        let t0 = std::time::Instant::now();
        let mut x = 1u64;
        while t0.elapsed().as_millis() < u128::from(ms) {
            for _ in 0..10_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            std::hint::black_box(x);
        }
    }

    #[test]
    fn sampling_captures_cpu_bound_work() {
        let _g = crate::test_lock();
        let s = Session::start_with_hz(2000).expect("no other session");
        // Concurrent start attempts must be refused while active.
        assert!(Session::start_with_hz(2000).is_none());
        spin_ms(120);
        let raw = s.stop();
        // 120ms of pure CPU at 2kHz nominal: even heavily loaded
        // machines deliver *some* expiries.
        assert!(!raw.samples.is_empty(), "no samples in 120ms of spinning");
        assert!(raw.stopped_ns > raw.started_ns);
        for smp in &raw.samples {
            assert!(smp.pc != 0, "null pc sampled");
            assert!(
                (raw.started_ns..=raw.stopped_ns).contains(&smp.t_ns),
                "sample outside session window"
            );
        }
        // And a fresh session starts clean.
        let s2 = Session::start_with_hz(500).expect("restart");
        let raw2 = s2.stop();
        assert!(raw2.samples.len() <= 1);
    }

    #[test]
    fn dropped_session_disarms_timer() {
        let _g = crate::test_lock();
        drop(Session::start_with_hz(1000).expect("start"));
        let mut cur = libc::itimerval {
            it_interval: libc::timeval {
                tv_sec: 1,
                tv_usec: 1,
            },
            it_value: libc::timeval {
                tv_sec: 1,
                tv_usec: 1,
            },
        };
        // SAFETY: valid out-pointer.
        unsafe { libc::getitimer(libc::ITIMER_PROF, &mut cur) };
        assert_eq!(cur.it_value.tv_sec, 0);
        assert_eq!(cur.it_value.tv_usec, 0);
        assert!(!ACTIVE.load(Ordering::SeqCst));
    }
}
