//! Offline sample resolution and aggregation.
//!
//! Nothing here runs in signal context: once a session has stopped, the
//! raw `(pc, t_ns, thread)` triples are resolved against the region
//! registry, the sampled instruction is classified via `lb-verify`, and
//! the result is folded into a per-class self-time table. Samples whose
//! PC falls in no registered region (host code, the interpreter, libc)
//! are counted under `unresolved` and `prof.samples.unresolved` — never
//! silently discarded, so attribution percentages always have a visible
//! denominator.

use crate::registry;
use crate::sampler::RawProfile;
use lb_verify::InstClass;

/// What one sample resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleClass {
    /// Inside a registered function and decodable: a bounds-check
    /// attribution bucket.
    Inst(InstClass),
    /// Inside a registered region but outside function bodies
    /// (trampolines, alignment padding) or undecodable.
    Runtime,
    /// No registered region contains the PC (host / runtime-support /
    /// interpreter code).
    Unresolved,
}

impl SampleClass {
    /// Stable label for traces and tables.
    pub fn label(self) -> &'static str {
        match self {
            SampleClass::Inst(c) => c.label(),
            SampleClass::Runtime => "runtime",
            SampleClass::Unresolved => "unresolved",
        }
    }
}

/// One resolved sample.
#[derive(Debug, Clone)]
pub struct ResolvedSample {
    /// Sampled program counter.
    pub pc: u64,
    /// Capture time (monotonic ns).
    pub t_ns: u64,
    /// Profiler thread id.
    pub thread: u32,
    /// Attribution bucket.
    pub class: SampleClass,
    /// Tier label of the containing region, if resolved.
    pub tier: Option<&'static str>,
    /// Strategy label of the containing region, if resolved.
    pub strategy: Option<&'static str>,
    /// Defined-function index, if the PC fell inside a function body.
    pub func_index: Option<u32>,
    /// Wasm instruction index attributed through the side table.
    pub wasm_pc: Option<u32>,
}

/// Aggregated session profile.
#[derive(Debug)]
pub struct ProfReport {
    /// All captured samples, resolved.
    pub samples: Vec<ResolvedSample>,
    /// Total samples captured.
    pub total: u64,
    /// Per-class counts: guard / clamp / trap-path / mem-access /
    /// compute.
    pub guard: u64,
    /// See `guard`.
    pub clamp: u64,
    /// See `guard`.
    pub trap_path: u64,
    /// See `guard`.
    pub mem_access: u64,
    /// See `guard`.
    pub compute: u64,
    /// In-region but unattributable (padding, trampolines).
    pub runtime: u64,
    /// Outside every registered region.
    pub unresolved: u64,
    /// Samples lost to ring overflow.
    pub dropped: u64,
    /// Slots claimed but unstamped at drain time.
    pub incomplete: u64,
    /// Configured rate.
    pub hz: u32,
    /// Session bounds, monotonic ns.
    pub started_ns: u64,
    /// See `started_ns`.
    pub stopped_ns: u64,
}

impl ProfReport {
    /// `n` as a percentage of all captured samples (0 when empty).
    pub fn pct(&self, n: u64) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            n as f64 * 100.0 / self.total as f64
        }
    }

    /// Samples that resolved to a registered region.
    pub fn resolved(&self) -> u64 {
        self.total - self.unresolved
    }

    /// Guard percentage over *resolved* samples only — the number the
    /// acceptance criteria bound, independent of how much host code ran.
    pub fn guard_pct_resolved(&self) -> f64 {
        let r = self.resolved();
        if r == 0 {
            0.0
        } else {
            self.guard as f64 * 100.0 / r as f64
        }
    }

    /// Clamp percentage over resolved samples.
    pub fn clamp_pct_resolved(&self) -> f64 {
        let r = self.resolved();
        if r == 0 {
            0.0
        } else {
            self.clamp as f64 * 100.0 / r as f64
        }
    }

    /// `(label, count)` rows in a fixed order, for tables and JSONL.
    pub fn class_counts(&self) -> [(&'static str, u64); 7] {
        [
            ("guard", self.guard),
            ("clamp", self.clamp),
            ("trap_path", self.trap_path),
            ("mem_access", self.mem_access),
            ("compute", self.compute),
            ("runtime", self.runtime),
            ("unresolved", self.unresolved),
        ]
    }
}

fn resolve_one(pc: u64, t_ns: u64, thread: u32) -> ResolvedSample {
    let Some((region, off)) = registry::lookup(pc, t_ns) else {
        return ResolvedSample {
            pc,
            t_ns,
            thread,
            class: SampleClass::Unresolved,
            tier: None,
            strategy: None,
            func_index: None,
            wasm_pc: None,
        };
    };
    let info = &region.info;
    let fi = info
        .funcs
        .partition_point(|f| f.start <= off)
        .checked_sub(1)
        .filter(|&i| off < info.funcs[i].end);
    let (class, func_index, wasm_pc) = match fi {
        Some(i) => {
            let f = &info.funcs[i];
            let rel = off - f.start;
            let class = region
                .classes(i)
                .and_then(|cl| lb_verify::class_at(cl, rel))
                .map_or(SampleClass::Runtime, SampleClass::Inst);
            let wasm_pc = f
                .pc_map
                .partition_point(|&(c, _)| c <= rel)
                .checked_sub(1)
                .map(|j| f.pc_map[j].1);
            (class, Some(f.func_index), wasm_pc)
        }
        None => (SampleClass::Runtime, None, None),
    };
    ResolvedSample {
        pc,
        t_ns,
        thread,
        class,
        tier: Some(info.tier),
        strategy: Some(info.strategy),
        func_index,
        wasm_pc,
    }
}

/// Resolve and aggregate a stopped session.
pub fn resolve_profile(raw: RawProfile) -> ProfReport {
    let mut report = ProfReport {
        samples: Vec::with_capacity(raw.samples.len()),
        total: raw.samples.len() as u64,
        guard: 0,
        clamp: 0,
        trap_path: 0,
        mem_access: 0,
        compute: 0,
        runtime: 0,
        unresolved: 0,
        dropped: raw.dropped,
        incomplete: raw.incomplete,
        hz: raw.hz,
        started_ns: raw.started_ns,
        stopped_ns: raw.stopped_ns,
    };
    for s in &raw.samples {
        let r = resolve_one(s.pc, s.t_ns, s.thread);
        match r.class {
            SampleClass::Inst(InstClass::GuardCompare) => report.guard += 1,
            SampleClass::Inst(InstClass::Clamp) => report.clamp += 1,
            SampleClass::Inst(InstClass::TrapPath) => report.trap_path += 1,
            SampleClass::Inst(InstClass::MemoryAccess) => report.mem_access += 1,
            SampleClass::Inst(InstClass::Compute) => report.compute += 1,
            SampleClass::Runtime => report.runtime += 1,
            SampleClass::Unresolved => report.unresolved += 1,
        }
        report.samples.push(r);
    }
    if report.unresolved > 0 {
        lb_telemetry::counter("prof.samples.unresolved").add(report.unresolved);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{register_region, FuncRange, RegionInfo};
    use lb_verify::isa::{encode, Cc, Inst, Mem, Reg, W};

    fn guard_body() -> Vec<u8> {
        let mut code = Vec::new();
        for i in &[
            Inst::Lea {
                w: W::W64,
                d: Reg::R11,
                m: Mem::base(Reg::RCX, 4),
            },
            Inst::CmpRm {
                w: W::W64,
                d: Reg::R11,
                m: Mem::base(Reg::R15, 8),
            },
            Inst::Jcc { cc: Cc::A, rel: 2 },
            Inst::MovRm {
                w: W::W32,
                d: Reg::RAX,
                m: Mem {
                    base: Reg::R14,
                    index: Some((Reg::RCX, 1)),
                    disp: 0,
                },
            },
            Inst::Ret,
            Inst::Ud2Trap { code: 1 },
        ] {
            encode(i, &mut code);
        }
        code
    }

    #[test]
    fn classifies_and_counts_through_registry() {
        let _g = crate::test_lock();
        crate::set_sampling(997);
        let code = guard_body();
        let base = 0x6100_0000usize;
        let len = code.len();
        register_region(RegionInfo {
            base,
            len,
            code,
            tier: "baseline",
            strategy: "trap",
            mem_size_disp: 8,
            funcs: vec![FuncRange {
                func_index: 3,
                start: 0,
                end: len as u32,
                pc_map: vec![(0, 0), (4, 17)],
            }],
        });
        let now = lb_telemetry::clock::now_ns();
        // One sample on the guard compare, one on the r14-based load,
        // one outside any region. Offsets come from the decoder so the
        // test does not hardcode encoding lengths.
        let insts = lb_verify::decode::decode_all(&guard_body()).unwrap();
        let cmp_off = insts[1].0;
        let load_off = insts[3].0;
        let raw = RawProfile {
            samples: vec![
                crate::Sample {
                    pc: (base + cmp_off) as u64,
                    t_ns: now,
                    thread: 1,
                },
                crate::Sample {
                    pc: (base + load_off) as u64,
                    t_ns: now,
                    thread: 1,
                },
                crate::Sample {
                    pc: 0x1234,
                    t_ns: now,
                    thread: 1,
                },
            ],
            dropped: 0,
            incomplete: 0,
            hz: 997,
            started_ns: now - 1,
            stopped_ns: now + 1,
        };
        let rep = resolve_profile(raw);
        assert_eq!(rep.total, 3);
        assert_eq!(rep.guard, 1, "samples: {:?}", rep.samples);
        assert_eq!(rep.mem_access, 1);
        assert_eq!(rep.unresolved, 1);
        assert_eq!(
            rep.guard
                + rep.clamp
                + rep.trap_path
                + rep.mem_access
                + rep.compute
                + rep.runtime
                + rep.unresolved,
            rep.total
        );
        let s0 = &rep.samples[0];
        assert_eq!(s0.func_index, Some(3));
        assert_eq!(s0.wasm_pc, Some(17));
        assert_eq!(s0.strategy, Some("trap"));
        crate::set_sampling(0);
    }
}
