//! Hand-rolled chrome://tracing JSON export (no serde in-tree).
//!
//! Output is the "JSON object format" chrome://tracing and Perfetto both
//! load: `{"traceEvents": [...]}`. Telemetry spans become complete
//! events (`"ph":"X"`, microsecond `ts`/`dur`); samples become
//! thread-scoped instant events (`"ph":"i"`) named by their attribution
//! class, carrying pc / function / wasm offset / tier / strategy as
//! args. Timestamps are rebased to the session start so traces open at
//! t≈0.

use crate::report::ProfReport;
use lb_telemetry::json::write_str;
use lb_telemetry::{EventKind, SpanRecord};
use std::io::Write;
use std::path::Path;

fn push_us(out: &mut String, ns: u64, base_ns: u64) {
    let rel = ns.saturating_sub(base_ns);
    out.push_str(&format!("{}.{:03}", rel / 1_000, rel % 1_000));
}

/// Write `report` (plus the run's telemetry spans) as a chrome://tracing
/// JSON file at `path`. Parent directories are created.
pub fn write_chrome_trace(
    path: &Path,
    report: &ProfReport,
    spans: &[SpanRecord],
) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let base = report.started_ns;
    let mut out = String::with_capacity(4096 + 160 * (spans.len() + report.samples.len()));
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":");
        write_str(&mut out, s.name);
        match s.kind {
            EventKind::Span => out.push_str(",\"ph\":\"X\""),
            EventKind::Instant => out.push_str(",\"ph\":\"i\",\"s\":\"t\""),
        }
        out.push_str(",\"pid\":1,\"tid\":");
        out.push_str(&s.thread.to_string());
        out.push_str(",\"ts\":");
        push_us(&mut out, s.start_ns, base);
        if s.kind == EventKind::Span {
            out.push_str(",\"dur\":");
            push_us(&mut out, s.dur_ns, 0);
        }
        out.push_str(",\"args\":{\"arg\":");
        out.push_str(&s.arg.to_string());
        out.push_str("}}");
    }
    for s in &report.samples {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("{\"name\":");
        write_str(&mut out, &format!("sample.{}", s.class.label()));
        out.push_str(",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":");
        out.push_str(&s.thread.to_string());
        out.push_str(",\"ts\":");
        push_us(&mut out, s.t_ns, base);
        out.push_str(",\"args\":{\"pc\":");
        write_str(&mut out, &format!("{:#x}", s.pc));
        if let Some(fi) = s.func_index {
            out.push_str(&format!(",\"func\":{fi}"));
        }
        if let Some(wp) = s.wasm_pc {
            out.push_str(&format!(",\"wasm_pc\":{wp}"));
        }
        if let Some(t) = s.tier {
            out.push_str(",\"tier\":");
            write_str(&mut out, t);
        }
        if let Some(st) = s.strategy {
            out.push_str(",\"strategy\":");
            write_str(&mut out, st);
        }
        out.push_str("}}");
    }
    out.push_str("],\"metadata\":{\"hz\":");
    out.push_str(&report.hz.to_string());
    out.push_str(",\"samples\":");
    out.push_str(&report.total.to_string());
    out.push_str(",\"dropped\":");
    out.push_str(&report.dropped.to_string());
    out.push_str("}}");
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{ResolvedSample, SampleClass};
    use lb_verify::InstClass;

    fn tiny_report() -> ProfReport {
        ProfReport {
            samples: vec![ResolvedSample {
                pc: 0x6100_0004,
                t_ns: 2_000_500,
                thread: 1,
                class: SampleClass::Inst(InstClass::GuardCompare),
                tier: Some("baseline"),
                strategy: Some("trap"),
                func_index: Some(2),
                wasm_pc: Some(9),
            }],
            total: 1,
            guard: 1,
            clamp: 0,
            trap_path: 0,
            mem_access: 0,
            compute: 0,
            runtime: 0,
            unresolved: 0,
            dropped: 0,
            incomplete: 0,
            hz: 997,
            started_ns: 1_000_000,
            stopped_ns: 3_000_000,
        }
    }

    #[test]
    fn trace_json_parses_and_carries_events() {
        let dir = std::env::temp_dir().join("lb-prof-trace-test");
        let path = dir.join("t.trace.json");
        let spans = vec![SpanRecord {
            name: "uffd.fault",
            kind: lb_telemetry::EventKind::Span,
            arg: 42,
            start_ns: 1_500_000,
            dur_ns: 2_000,
            thread: 1,
        }];
        write_chrome_trace(&path, &tiny_report(), &spans).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let v = lb_telemetry::json::parse(&text).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .expect("traceEvents array");
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].get("name").and_then(|n| n.as_str()),
            Some("uffd.fault")
        );
        assert_eq!(
            events[1].get("name").and_then(|n| n.as_str()),
            Some("sample.guard")
        );
        // Span ts is rebased: (1_500_000 - 1_000_000) ns = 500 µs.
        assert_eq!(events[0].get("ts").and_then(|t| t.as_f64()), Some(500.0));
        assert_eq!(events[0].get("dur").and_then(|t| t.as_f64()), Some(2.0));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
