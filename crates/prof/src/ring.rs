//! The global sample ring: SIGPROF handlers produce, `Session::stop`
//! consumes.
//!
//! This is a sibling of `lb-telemetry`'s span rings with one structural
//! difference: span rings are per-thread SPSC because each thread records
//! its own spans, but `ITIMER_PROF` is a *process* timer — the kernel
//! delivers each expiry to whichever thread is currently running, so two
//! threads can be inside the handler at once. The ring is therefore a
//! single global array with a `fetch_add` slot claim (multi-producer) and
//! a per-slot generation stamp marking completed writes.
//!
//! There is no wraparound: a session owns slots `[0, HEAD)` and drains
//! once, after the timer is disarmed. Claims past the end are counted in
//! `DROPPED` ("bounded sample loss": the count is exact, the samples are
//! the oldest-biased prefix). `reset` bumps `GEN`, which invalidates all
//! slots from earlier sessions without touching them.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Sample capacity per session: 65536 ≈ one minute at the default 997 Hz.
pub(crate) const CAPACITY: usize = 1 << 16;

/// One raw sample, as captured in the handler.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Interrupted program counter (`gregs[REG_RIP]`).
    pub pc: u64,
    /// Monotonic capture time.
    pub t_ns: u64,
    /// Profiler thread id (0 = thread never called
    /// [`crate::ensure_thread`]).
    pub thread: u32,
}

struct Slot {
    pc: AtomicU64,
    t_ns: AtomicU64,
    thread: AtomicU32,
    gen: AtomicU32,
}

impl Slot {
    const NEW: Slot = Slot {
        pc: AtomicU64::new(0),
        t_ns: AtomicU64::new(0),
        thread: AtomicU32::new(0),
        gen: AtomicU32::new(0),
    };
}

static SLOTS: OnceLock<Box<[Slot]>> = OnceLock::new();
static HEAD: AtomicUsize = AtomicUsize::new(0);
/// Current session generation; slot writes are stamped with it. Starts
/// at 0 = "no session yet", so stale zero-initialized slots never match
/// a live session.
static GEN: AtomicU32 = AtomicU32::new(0);
static DROPPED: AtomicU64 = AtomicU64::new(0);

/// Allocate the slot array. Normal context only (allocates once).
pub(crate) fn init() {
    SLOTS.get_or_init(|| (0..CAPACITY).map(|_| Slot::NEW).collect());
}

/// Begin a new session: forget all prior samples, return the new
/// generation. Caller must guarantee no handler is concurrently
/// recording (the timer is not armed yet).
pub(crate) fn reset() -> u32 {
    let gen = GEN.fetch_add(1, Ordering::Relaxed) + 1;
    HEAD.store(0, Ordering::Relaxed);
    DROPPED.store(0, Ordering::Relaxed);
    gen
}

/// Producer side. Async-signal-safe: one `fetch_add`, four relaxed
/// stores, one release store. Must not be called before [`init`] — a
/// missing slot array just drops the sample.
pub(crate) fn record(pc: u64, t_ns: u64, thread: u32) {
    let Some(slots) = SLOTS.get() else {
        return;
    };
    let idx = HEAD.fetch_add(1, Ordering::Relaxed);
    if idx >= slots.len() {
        DROPPED.fetch_add(1, Ordering::Relaxed);
        return;
    }
    let slot = &slots[idx];
    slot.pc.store(pc, Ordering::Relaxed);
    slot.t_ns.store(t_ns, Ordering::Relaxed);
    slot.thread.store(thread, Ordering::Relaxed);
    // Publish: a slot counts only once its stamp matches the session.
    slot.gen
        .store(GEN.load(Ordering::Relaxed), Ordering::Release);
}

/// Consumer side: copy out every completed sample of generation `gen`.
/// Returns `(samples, dropped, incomplete)`, where `incomplete` counts
/// slots claimed but not yet stamped (a handler that was still running
/// during the post-disarm quiesce window).
pub(crate) fn drain(gen: u32) -> (Vec<Sample>, u64, u64) {
    let Some(slots) = SLOTS.get() else {
        return (Vec::new(), 0, 0);
    };
    let head = HEAD.load(Ordering::Relaxed).min(slots.len());
    let mut out = Vec::with_capacity(head);
    let mut incomplete = 0u64;
    for slot in &slots[..head] {
        if slot.gen.load(Ordering::Acquire) == gen {
            out.push(Sample {
                pc: slot.pc.load(Ordering::Relaxed),
                t_ns: slot.t_ns.load(Ordering::Relaxed),
                thread: slot.thread.load(Ordering::Relaxed),
            });
        } else {
            incomplete += 1;
        }
    }
    (out, DROPPED.load(Ordering::Relaxed), incomplete)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_is_counted_not_wrapped() {
        let _g = crate::test_lock();
        init();
        let gen = reset();
        for i in 0..(CAPACITY as u64 + 50) {
            record(i, i, 1);
        }
        let (samples, dropped, incomplete) = drain(gen);
        assert_eq!(samples.len(), CAPACITY);
        assert_eq!(dropped, 50);
        assert_eq!(incomplete, 0);
        assert_eq!(samples[0].pc, 0);
        assert_eq!(samples[CAPACITY - 1].pc, CAPACITY as u64 - 1);

        // A new session must see none of this.
        let gen2 = reset();
        record(7, 7, 1);
        let (samples, dropped, _) = drain(gen2);
        assert_eq!(samples.len(), 1);
        assert_eq!(dropped, 0);
    }
}
