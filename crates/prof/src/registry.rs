//! The JIT code-region registry: what address ranges hold which code.
//!
//! The JIT calls [`register_region`] each time it publishes an
//! executable buffer (baseline compile, tier-up recompile, per-strategy
//! recompile). The registry keeps a *private copy* of the bytes: the
//! executable mapping may be unmapped when its engine drops, but samples
//! pointing into it must still decode at report time. For the same
//! reason regions are append-only — an address reused by a later
//! `mmap` is disambiguated by registration time, picking the newest
//! region registered at or before the sample's timestamp.
//!
//! Registration is gated on [`crate::enabled`] so unprofiled runs keep
//! no copies and take no locks here.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Hard cap on retained regions; beyond it registrations are counted in
/// `prof.regions.dropped` and ignored (a profiling session is expected
/// to cover a handful of module loads, not an unbounded campaign).
const MAX_REGIONS: usize = 4096;

/// One function's extent inside a region, plus its code-offset →
/// wasm-offset side table.
#[derive(Debug, Clone)]
pub struct FuncRange {
    /// Defined-function index within the module.
    pub func_index: u32,
    /// Start offset within the region.
    pub start: u32,
    /// One-past-end offset within the region.
    pub end: u32,
    /// `(code_offset, wasm_offset)` pairs, sorted by code offset; code
    /// offsets are relative to `start`. Wasm offsets are instruction
    /// indices into the function body.
    pub pc_map: Vec<(u32, u32)>,
}

/// Everything the JIT knows about one published code buffer.
#[derive(Debug, Clone)]
pub struct RegionInfo {
    /// Executable base address at publication time.
    pub base: usize,
    /// Region length in bytes.
    pub len: usize,
    /// Copy of the emitted bytes (length `len`).
    pub code: Vec<u8>,
    /// Tier label, e.g. `"baseline"` / `"opt"`.
    pub tier: &'static str,
    /// Bounds-check strategy label, e.g. `"trap"`.
    pub strategy: &'static str,
    /// Displacement of the memory-size field in the VM context struct,
    /// passed through to `lb_verify::classify`.
    pub mem_size_disp: i32,
    /// Per-function extents, sorted by `start`.
    pub funcs: Vec<FuncRange>,
}

pub(crate) struct Region {
    pub(crate) info: RegionInfo,
    pub(crate) registered_ns: u64,
    /// Lazily computed classification per function (index-parallel with
    /// `info.funcs`); `None` inside means that function failed to decode.
    classes: Vec<OnceLock<Option<Vec<lb_verify::ClassifiedInst>>>>,
}

impl Region {
    /// Classified instructions for function `fi`, computed on first use.
    pub(crate) fn classes(&self, fi: usize) -> Option<&[lb_verify::ClassifiedInst]> {
        let f = &self.info.funcs[fi];
        self.classes[fi]
            .get_or_init(|| {
                let code = &self.info.code[f.start as usize..f.end as usize];
                lb_verify::classify_function(code, self.info.mem_size_disp).ok()
            })
            .as_deref()
    }
}

static REGIONS: Mutex<Vec<Arc<Region>>> = Mutex::new(Vec::new());
static REGIONS_DROPPED: AtomicU64 = AtomicU64::new(0);

/// Record a published code region. No-op unless profiling is enabled.
pub fn register_region(info: RegionInfo) {
    if !crate::enabled() {
        return;
    }
    let mut regions = REGIONS.lock().unwrap();
    if regions.len() >= MAX_REGIONS {
        REGIONS_DROPPED.fetch_add(1, Ordering::Relaxed);
        lb_telemetry::counter("prof.regions.dropped").inc();
        return;
    }
    let classes = (0..info.funcs.len()).map(|_| OnceLock::new()).collect();
    regions.push(Arc::new(Region {
        info,
        registered_ns: lb_telemetry::clock::now_ns(),
        classes,
    }));
}

/// Find the region containing `pc` as of time `t_ns`: among regions
/// covering the address and registered no later than the sample, the
/// most recently registered wins. Registration happens-before any
/// execution of the registered code (publish precedes the funcptr
/// swap), so the containing region always predates its samples and a
/// strict comparison cannot lose the right one.
pub(crate) fn lookup(pc: u64, t_ns: u64) -> Option<(Arc<Region>, u32)> {
    let regions = REGIONS.lock().unwrap();
    let mut best: Option<&Arc<Region>> = None;
    for r in regions.iter() {
        let base = r.info.base as u64;
        if pc < base || pc >= base + r.info.len as u64 {
            continue;
        }
        if r.registered_ns > t_ns {
            continue;
        }
        match best {
            Some(b) if b.registered_ns >= r.registered_ns => {}
            _ => best = Some(r),
        }
    }
    best.map(|r| (r.clone(), (pc - r.info.base as u64) as u32))
}

/// Number of currently registered regions (report introspection).
pub fn region_count() -> usize {
    REGIONS.lock().unwrap().len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(base: usize, code: Vec<u8>) -> RegionInfo {
        let len = code.len();
        RegionInfo {
            base,
            len,
            code,
            tier: "baseline",
            strategy: "trap",
            mem_size_disp: 8,
            funcs: vec![FuncRange {
                func_index: 0,
                start: 0,
                end: len as u32,
                pc_map: vec![(0, 0)],
            }],
        }
    }

    #[test]
    fn lookup_prefers_latest_predating_region() {
        let _g = crate::test_lock();
        crate::set_sampling(997);
        register_region(region(0x7000_0000, vec![0xC3; 16]));
        // Same address, re-registered later (address reuse after unmap).
        std::thread::sleep(std::time::Duration::from_millis(1));
        register_region(region(0x7000_0000, vec![0x90; 16]));
        let now = lb_telemetry::clock::now_ns();
        let (r, off) = lookup(0x7000_0008, now).expect("resolves");
        assert_eq!(off, 8);
        assert_eq!(r.info.code[0], 0x90, "newest region wins");
        assert!(lookup(0x7100_0000, now).is_none());
        crate::set_sampling(0);
    }
}
