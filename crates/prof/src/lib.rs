//! `lb-prof`: in-process sampling profiler with bounds-check attribution.
//!
//! The paper's central quantity — the time a strategy spends on bounds
//! checking — is elsewhere in this repo *inferred* from strategy-vs-
//! strategy wall-clock deltas. This crate measures it directly:
//!
//! 1. **Sampling.** A process-wide `ITIMER_PROF` interval timer delivers
//!    `SIGPROF` every `1/hz` seconds of consumed CPU time. The handler
//!    reads the interrupted program counter out of the `ucontext` and
//!    pushes `(pc, t_ns, thread)` into a lock-free sample ring
//!    ([`ring`]). Everything the handler touches is pre-registered
//!    atomics — no allocation, no locks, no TLS initialization — so it
//!    can safely interrupt anything, including the runtime's own
//!    SIGSEGV/SIGBUS bounds-trap handler mid-service.
//! 2. **Resolution.** The JIT registers every published code buffer with
//!    [`registry`]: base/length, a private copy of the bytes, per-function
//!    `[start, end)` ranges and code-offset→wasm-offset side tables.
//!    Regions are never unregistered during a session, and re-used
//!    addresses disambiguate by registration time, so samples taken
//!    before a tier-up still resolve against the tier that was live.
//! 3. **Attribution.** Offline, at report time, each in-region sample is
//!    classified by decoding the sampled instruction with `lb-verify`'s
//!    x86-64 decoder ([`lb_verify::classify`]) into guard-compare /
//!    clamp / trap-path / memory-access / compute buckets.
//!
//! Configuration is environment-driven: `LB_PROF=sample` (997 Hz) or
//! `LB_PROF=sample:<hz>` enables sampling; `LB_PROF_OUT=<dir>` selects a
//! directory for chrome://tracing JSON dumps ([`trace`]). Tests and
//! report binaries can instead call [`set_sampling`].
//!
//! A deliberately *prime* default rate (997 Hz) avoids phase-locking with
//! millisecond-periodic behavior in the workload, the classic sampling
//! bias.

mod registry;
mod report;
mod ring;
mod sampler;
mod trace;

pub use registry::{region_count, register_region, FuncRange, RegionInfo};
pub use report::{resolve_profile, ProfReport, ResolvedSample, SampleClass};
pub use ring::Sample;
pub use sampler::{ensure_thread, RawProfile, Session};
pub use trace::write_chrome_trace;

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Once;

/// Default sampling rate (Hz) when `LB_PROF=sample` gives no rate.
pub const DEFAULT_HZ: u32 = 997;

static INIT: Once = Once::new();
static ENABLED: AtomicBool = AtomicBool::new(false);
static HZ: AtomicU32 = AtomicU32::new(DEFAULT_HZ);

/// Parse `LB_PROF` once. Accepted forms: `sample` and `sample:<hz>`;
/// anything else (including unset) leaves profiling off.
pub fn init_from_env() {
    INIT.call_once(|| {
        let Ok(v) = std::env::var("LB_PROF") else {
            return;
        };
        let (mode, rate) = match v.split_once(':') {
            Some((m, r)) => (m, r.parse::<u32>().ok()),
            None => (v.as_str(), None),
        };
        if mode == "sample" {
            HZ.store(
                rate.unwrap_or(DEFAULT_HZ).clamp(1, 10_000),
                Ordering::Relaxed,
            );
            ENABLED.store(true, Ordering::Relaxed);
            // Latency spans (uffd fault service, mprotect grow, pool
            // acquire/release, signal-handler entry/exit) are half of
            // the trace; recording them must not additionally require a
            // telemetry sink.
            lb_telemetry::set_spans_enabled(true);
        }
    });
}

/// Is profiling on (env or programmatic)? Gates region registration, so
/// unprofiled runs pay nothing beyond this load.
pub fn enabled() -> bool {
    init_from_env();
    ENABLED.load(Ordering::Relaxed)
}

/// Configured sampling rate in Hz.
pub fn sample_hz() -> u32 {
    init_from_env();
    HZ.load(Ordering::Relaxed)
}

/// Programmatic override of the `LB_PROF` configuration, for tests and
/// report binaries (env mutation races between test threads; this does
/// not). `hz == 0` turns profiling off.
pub fn set_sampling(hz: u32) {
    init_from_env();
    HZ.store(hz.clamp(0, 10_000), Ordering::Relaxed);
    ENABLED.store(hz > 0, Ordering::Relaxed);
    if hz > 0 {
        lb_telemetry::set_spans_enabled(true);
    }
}

/// The `LB_PROF_OUT` trace directory, if configured.
pub fn out_dir() -> Option<std::path::PathBuf> {
    std::env::var_os("LB_PROF_OUT").map(std::path::PathBuf::from)
}

/// Start a sampling session at the configured rate. Returns `None` when
/// profiling is disabled or another session is already active.
pub fn start() -> Option<Session> {
    if !enabled() {
        return None;
    }
    Session::start_with_hz(sample_hz())
}

/// Serializes tests that touch the global ring/session/registry state.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}
