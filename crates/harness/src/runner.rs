//! The benchmark runner, reproducing the paper's harness (§3.5):
//!
//! * the module is loaded (compiled) once per runtime;
//! * each worker thread, pinned to a CPU, executes *isolate instances* of
//!   the module in a timed loop — one instantiation (fresh linear memory),
//!   `init`, `kernel`, tear-down per iteration, which is exactly the
//!   allocate/run/free churn the paper says "stresses the virtual memory
//!   management subsystem";
//! * warm-up iterations precede the timed window, and threads that finish
//!   keep running cool-down iterations until all threads are done, so the
//!   machine stays uniformly busy throughout every measurement.

use crate::procstat::{pin_to_cpu, Sampler, SysStats};
use lb_core::exec::{Engine, Linker};
use lb_core::stats::{snapshot, VmSnapshot};
use lb_core::{BoundsStrategy, MemoryConfig};
use lb_dsl::{Benchmark, NativeKernel};
use lb_interp::InterpEngine;
use lb_jit::{JitEngine, JitProfile};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Which execution environment to measure (the paper's six environments
/// collapse to five here: one native baseline — rustc — plus four wasm
/// runtimes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineSel {
    /// The native baseline (plain Rust, the "native Clang" stand-in).
    Native,
    /// The Wasm3-style interpreter.
    Interp,
    /// JIT with the WAVM profile.
    Wavm,
    /// JIT with the Wasmtime profile.
    Wasmtime,
    /// JIT with the V8 profile (tiered + GC pauses).
    V8,
}

impl EngineSel {
    /// All wasm runtimes (everything but the native baseline).
    pub const WASM_RUNTIMES: [EngineSel; 4] = [
        EngineSel::Interp,
        EngineSel::Wavm,
        EngineSel::Wasmtime,
        EngineSel::V8,
    ];

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            EngineSel::Native => "native",
            EngineSel::Interp => "interp",
            EngineSel::Wavm => "wavm",
            EngineSel::Wasmtime => "wasmtime",
            EngineSel::V8 => "v8",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<EngineSel> {
        Some(match s {
            "native" => EngineSel::Native,
            "interp" | "wasm3" => EngineSel::Interp,
            "wavm" => EngineSel::Wavm,
            "wasmtime" => EngineSel::Wasmtime,
            "v8" => EngineSel::V8,
            _ => return None,
        })
    }

    /// Build the engine (None for the native baseline).
    pub fn engine(self) -> Option<Arc<dyn Engine>> {
        match self {
            EngineSel::Native => None,
            EngineSel::Interp => Some(Arc::new(InterpEngine::new())),
            EngineSel::Wavm => Some(Arc::new(JitEngine::new(JitProfile::wavm()))),
            EngineSel::Wasmtime => Some(Arc::new(JitEngine::new(JitProfile::wasmtime()))),
            EngineSel::V8 => Some(Arc::new(JitEngine::new(JitProfile::v8()))),
        }
    }
}

/// One measurement configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// Which runtime.
    pub engine: EngineSel,
    /// Bounds-checking strategy (ignored by the native baseline).
    pub strategy: BoundsStrategy,
    /// Worker-thread (isolate) count: the paper uses 1, 4 and 16.
    pub threads: usize,
    /// Untimed warm-up iterations per thread.
    pub warmup_iters: u32,
    /// Timed iterations per thread.
    pub measured_iters: u32,
    /// Virtual reservation per memory (8 GiB default; smaller in tests).
    pub reserve_bytes: usize,
    /// Maximum pages a memory may grow to.
    pub max_pages: u32,
    /// Sample /proc during the run.
    pub sample_system: bool,
}

impl RunSpec {
    /// A reasonable default spec for quick runs.
    pub fn new(engine: EngineSel, strategy: BoundsStrategy) -> RunSpec {
        RunSpec {
            engine,
            strategy,
            threads: 1,
            warmup_iters: 2,
            measured_iters: 10,
            reserve_bytes: lb_core::DEFAULT_RESERVE_BYTES,
            max_pages: 4096,
            sample_system: false,
        }
    }
}

/// The outcome of one (benchmark, spec) measurement.
#[derive(Debug)]
pub struct RunResult {
    /// Timed iteration durations, per worker thread.
    pub iter_times: Vec<Vec<Duration>>,
    /// Whether the wasm checksum matched the native twin.
    pub checksum_ok: bool,
    /// Delta of memory-subsystem counters over the run.
    pub vm: VmSnapshot,
    /// Full telemetry delta over the run (counters, histograms, spans),
    /// pruned to nonzero entries. Exported per-run when `LB_TELEMETRY`
    /// selects a sink.
    pub telemetry: lb_telemetry::TelemetrySnapshot,
    /// System statistics (when `sample_system`).
    pub sys: Option<SysStats>,
    /// Wall-clock time of the whole measured region.
    pub wall: Duration,
}

impl RunResult {
    /// Median over all threads' iterations pooled together.
    pub fn median(&self) -> Duration {
        let all: Vec<Duration> = self.iter_times.iter().flatten().copied().collect();
        crate::stats::median(&all)
    }

    /// Aggregate throughput: total iterations / wall time.
    pub fn iters_per_sec(&self) -> f64 {
        let n: usize = self.iter_times.iter().map(|v| v.len()).sum();
        n as f64 / self.wall.as_secs_f64()
    }
}

/// Run one benchmark under one spec.
///
/// # Panics
/// Panics if the module fails to load — the suites are known-good.
pub fn run_benchmark(bench: &Benchmark, spec: &RunSpec) -> RunResult {
    let expected = bench.native_checksum();
    // Drain spans left over from earlier runs so this run's snapshot only
    // carries its own events; counters/histograms are handled by deltas.
    lb_telemetry::ensure_thread_ring();
    let _ = lb_telemetry::drain_spans();
    let tele_before = lb_telemetry::snapshot();
    let vm_before = snapshot();
    let sampler = spec
        .sample_system
        .then(|| Sampler::start(Duration::from_millis(20)));

    let result = match spec.engine.engine() {
        None => run_native(bench, spec, expected),
        Some(engine) => run_wasm(bench, spec, engine, expected),
    };

    let sys = sampler.map(Sampler::stop);
    let vm = snapshot().delta(&vm_before);
    let mut telemetry = lb_telemetry::snapshot_and_drain().delta_since(&tele_before);
    telemetry.retain_nonzero();
    lb_telemetry::export::emit_run(
        &[
            ("bench", bench.name.to_string()),
            ("engine", spec.engine.name().to_string()),
            ("strategy", spec.strategy.name().to_string()),
            ("threads", spec.threads.to_string()),
            // Static bounds-check decisions for this run (compile-time
            // counters from lb-analysis via the JIT), for the paper-style
            // "checks eliminated" column.
            (
                "checks_static_elided",
                telemetry.counter("jit.checks.static_elided").to_string(),
            ),
            (
                "checks_emitted",
                telemetry.counter("jit.checks.emitted").to_string(),
            ),
        ],
        &telemetry,
    );
    RunResult {
        iter_times: result.0,
        checksum_ok: result.1,
        vm,
        telemetry,
        sys,
        wall: result.2,
    }
}

type ThreadTimes = (Vec<Vec<Duration>>, bool, Duration);

fn run_native(bench: &Benchmark, spec: &RunSpec, expected: f64) -> ThreadTimes {
    let barrier = Arc::new(Barrier::new(spec.threads));
    let remaining = Arc::new(AtomicUsize::new(spec.threads));
    let t0 = Instant::now();
    let times: Vec<(Vec<Duration>, bool)> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for tid in 0..spec.threads {
            let barrier = Arc::clone(&barrier);
            let remaining = Arc::clone(&remaining);
            let native = &bench.native;
            handles.push(s.spawn(move || {
                pin_to_cpu(tid);
                let one_iter = || {
                    let mut k: Box<dyn NativeKernel> = native();
                    k.init();
                    k.kernel();
                    k
                };
                for _ in 0..spec.warmup_iters {
                    one_iter();
                }
                barrier.wait();
                let mut times = Vec::with_capacity(spec.measured_iters as usize);
                let mut last = None;
                for _ in 0..spec.measured_iters {
                    let t = Instant::now();
                    let k = one_iter();
                    times.push(t.elapsed());
                    last = Some(k);
                }
                let ok = last
                    .map(|k| lb_dsl::kernel::checksums_match(k.checksum(), expected))
                    .unwrap_or(true);
                // Cool-down: keep the CPU busy until everyone is done.
                remaining.fetch_sub(1, Ordering::AcqRel);
                while remaining.load(Ordering::Acquire) > 0 {
                    one_iter();
                }
                (times, ok)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    let wall = t0.elapsed();
    let ok = times.iter().all(|(_, ok)| *ok);
    (times.into_iter().map(|(t, _)| t).collect(), ok, wall)
}

fn run_wasm(
    bench: &Benchmark,
    spec: &RunSpec,
    engine: Arc<dyn Engine>,
    expected: f64,
) -> ThreadTimes {
    let loaded = engine.load(&bench.module).expect("benchmark module loads");
    let config = MemoryConfig {
        strategy: spec.strategy,
        initial_pages: 0,
        max_pages: spec.max_pages,
        reserve_bytes: spec.reserve_bytes,
    };
    let linker = Linker::new();
    let barrier = Arc::new(Barrier::new(spec.threads));
    let remaining = Arc::new(AtomicUsize::new(spec.threads));
    let t0 = Instant::now();
    let results: Vec<(Vec<Duration>, bool)> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for tid in 0..spec.threads {
            let loaded = Arc::clone(&loaded);
            let linker = linker.clone();
            let barrier = Arc::clone(&barrier);
            let remaining = Arc::clone(&remaining);
            handles.push(s.spawn(move || {
                pin_to_cpu(tid);
                // One isolate instantiation + run per iteration: the
                // allocate/free churn the paper measures.
                let one_iter = || {
                    let mut inst = loaded
                        .instantiate(&config, &linker)
                        .expect("instantiate isolate");
                    inst.invoke("init", &[]).expect("init");
                    inst.invoke("kernel", &[]).expect("kernel");
                    inst
                };
                for _ in 0..spec.warmup_iters {
                    one_iter();
                }
                barrier.wait();
                let mut times = Vec::with_capacity(spec.measured_iters as usize);
                let mut ok = true;
                for i in 0..spec.measured_iters {
                    let t = Instant::now();
                    let mut inst = one_iter();
                    times.push(t.elapsed());
                    if i == spec.measured_iters - 1 {
                        let cs = inst
                            .invoke("checksum", &[])
                            .expect("checksum")
                            .and_then(|v| v.as_f64())
                            .unwrap_or(f64::NAN);
                        ok = lb_dsl::kernel::checksums_match(cs, expected);
                    }
                }
                remaining.fetch_sub(1, Ordering::AcqRel);
                while remaining.load(Ordering::Acquire) > 0 {
                    one_iter();
                }
                (times, ok)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    let wall = t0.elapsed();
    let ok = results.iter().all(|(_, ok)| *ok);
    (results.into_iter().map(|(t, _)| t).collect(), ok, wall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_polybench::{by_name, common::Dataset};

    fn quick_spec(engine: EngineSel) -> RunSpec {
        RunSpec {
            engine,
            strategy: BoundsStrategy::Mprotect,
            threads: 1,
            warmup_iters: 1,
            measured_iters: 3,
            reserve_bytes: 64 << 20,
            max_pages: 512,
            sample_system: false,
        }
    }

    #[test]
    fn native_run_produces_times() {
        let b = by_name("gemm", Dataset::Mini).unwrap();
        let r = run_benchmark(&b, &quick_spec(EngineSel::Native));
        assert!(r.checksum_ok);
        assert_eq!(r.iter_times.len(), 1);
        assert_eq!(r.iter_times[0].len(), 3);
    }

    #[test]
    fn wasm_run_produces_times_and_validates() {
        let b = by_name("atax", Dataset::Mini).unwrap();
        for e in [EngineSel::Interp, EngineSel::Wavm] {
            let r = run_benchmark(&b, &quick_spec(e));
            assert!(r.checksum_ok, "{}", e.name());
            assert!(r.median() > Duration::ZERO);
            assert!(r.vm.mmap >= 3, "one reservation per isolate iteration");
        }
    }

    #[test]
    fn multithreaded_run_works() {
        let b = by_name("trisolv", Dataset::Mini).unwrap();
        let mut spec = quick_spec(EngineSel::Wasmtime);
        spec.threads = 4;
        let r = run_benchmark(&b, &spec);
        assert!(r.checksum_ok);
        assert_eq!(r.iter_times.len(), 4);
        assert!(r.iters_per_sec() > 0.0);
    }

    #[test]
    fn mprotect_strategy_issues_mprotect_calls() {
        let b = by_name("jacobi-1d", Dataset::Mini).unwrap();
        let mut spec = quick_spec(EngineSel::Wavm);
        spec.strategy = BoundsStrategy::Mprotect;
        let r1 = run_benchmark(&b, &spec);
        spec.strategy = BoundsStrategy::Trap;
        let r2 = run_benchmark(&b, &spec);
        assert!(
            r1.vm.mprotect > r2.vm.mprotect,
            "mprotect strategy must call mprotect more ({} vs {})",
            r1.vm.mprotect,
            r2.vm.mprotect
        );
    }
}
