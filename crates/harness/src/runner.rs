//! The benchmark runner, reproducing the paper's harness (§3.5):
//!
//! * the module is loaded (compiled) once per runtime;
//! * each worker thread, pinned to a CPU, executes *isolate instances* of
//!   the module in a timed loop — one instantiation (fresh linear memory),
//!   `init`, `kernel`, tear-down per iteration, which is exactly the
//!   allocate/run/free churn the paper says "stresses the virtual memory
//!   management subsystem";
//! * warm-up iterations precede the timed window, and threads that finish
//!   keep running cool-down iterations until all threads are done, so the
//!   machine stays uniformly busy throughout every measurement.
//!
//! The runner is crash-proof: a failing run (load error, instantiation
//! failure, trap, worker panic, timeout) becomes a [`RunOutcome::Failed`]
//! record instead of aborting the whole measurement campaign. One retry
//! with backoff absorbs transient failures; what remains is reported with
//! the stage that failed. Strategy degradation in lb-core (uffd → mprotect
//! → trap) is resolved once per run by a probe memory so every isolate in
//! the run uses the same *effective* strategy, which is recorded in the
//! JSONL export next to the requested one.

use crate::procstat::{pin_to_cpu, Sampler, SysStats};
use lb_core::exec::{Engine, Linker};
use lb_core::stats::{snapshot, VmSnapshot};
use lb_core::{BoundsStrategy, LinearMemory, MemoryConfig};
use lb_dsl::{Benchmark, NativeKernel};
use lb_interp::InterpEngine;
use lb_jit::{JitEngine, JitProfile};
use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Which execution environment to measure (the paper's six environments
/// collapse to five here: one native baseline — rustc — plus four wasm
/// runtimes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineSel {
    /// The native baseline (plain Rust, the "native Clang" stand-in).
    Native,
    /// The Wasm3-style interpreter.
    Interp,
    /// JIT with the WAVM profile.
    Wavm,
    /// JIT with the Wasmtime profile.
    Wasmtime,
    /// JIT with the V8 profile (tiered + GC pauses).
    V8,
}

impl EngineSel {
    /// All wasm runtimes (everything but the native baseline).
    pub const WASM_RUNTIMES: [EngineSel; 4] = [
        EngineSel::Interp,
        EngineSel::Wavm,
        EngineSel::Wasmtime,
        EngineSel::V8,
    ];

    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            EngineSel::Native => "native",
            EngineSel::Interp => "interp",
            EngineSel::Wavm => "wavm",
            EngineSel::Wasmtime => "wasmtime",
            EngineSel::V8 => "v8",
        }
    }

    /// Parse a CLI name.
    pub fn parse(s: &str) -> Option<EngineSel> {
        Some(match s {
            "native" => EngineSel::Native,
            "interp" | "wasm3" => EngineSel::Interp,
            "wavm" => EngineSel::Wavm,
            "wasmtime" => EngineSel::Wasmtime,
            "v8" => EngineSel::V8,
            _ => return None,
        })
    }

    /// Build the engine (None for the native baseline).
    pub fn engine(self) -> Option<Arc<dyn Engine>> {
        let mid = midtier_selected();
        match self {
            EngineSel::Native => None,
            EngineSel::Interp => Some(Arc::new(InterpEngine::new())),
            EngineSel::Wavm => Some(Arc::new(JitEngine::new(
                JitProfile::wavm().with_midtier(mid),
            ))),
            EngineSel::Wasmtime => Some(Arc::new(JitEngine::new(
                JitProfile::wasmtime().with_midtier(mid),
            ))),
            EngineSel::V8 => Some(Arc::new(JitEngine::new(JitProfile::v8().with_midtier(mid)))),
        }
    }
}

/// The `LB_TIER` knob, read once per process: `LB_TIER=mid` routes every
/// JIT profile's optimizing tier to `OptLevel::Mid` (linear-scan register
/// homes + redundant-access elimination) instead of `Full`; anything else
/// keeps the default. The choice is recorded per run in the JSONL `tier`
/// column.
pub fn midtier_selected() -> bool {
    static TIER: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *TIER.get_or_init(|| matches!(std::env::var("LB_TIER").as_deref(), Ok("mid")))
}

/// One measurement configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunSpec {
    /// Which runtime.
    pub engine: EngineSel,
    /// Bounds-checking strategy (ignored by the native baseline).
    pub strategy: BoundsStrategy,
    /// Worker-thread (isolate) count: the paper uses 1, 4 and 16.
    pub threads: usize,
    /// Untimed warm-up iterations per thread.
    pub warmup_iters: u32,
    /// Timed iterations per thread.
    pub measured_iters: u32,
    /// Virtual reservation per memory (8 GiB default; smaller in tests).
    pub reserve_bytes: usize,
    /// Maximum pages a memory may grow to.
    pub max_pages: u32,
    /// Sample /proc during the run.
    pub sample_system: bool,
    /// Per-run wall-clock budget; a run that exceeds it fails cleanly
    /// instead of wedging the campaign. `None` disables the deadline.
    pub timeout: Option<Duration>,
    /// Retries after a failed run attempt (with backoff) before the run
    /// is reported as [`RunOutcome::Failed`].
    pub retries: u32,
}

impl RunSpec {
    /// A reasonable default spec for quick runs.
    pub fn new(engine: EngineSel, strategy: BoundsStrategy) -> RunSpec {
        RunSpec {
            engine,
            strategy,
            threads: 1,
            warmup_iters: 2,
            measured_iters: 10,
            reserve_bytes: lb_core::DEFAULT_RESERVE_BYTES,
            max_pages: 4096,
            sample_system: false,
            timeout: Some(Duration::from_secs(600)),
            retries: 1,
        }
    }
}

/// The pipeline stage at which a run failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStage {
    /// Compiling/loading the module into the engine.
    Load,
    /// The pre-run probe resolving the effective memory strategy.
    Probe,
    /// Instantiating an isolate (fresh linear memory).
    Instantiate,
    /// The benchmark's `init` export.
    Init,
    /// The benchmark's `kernel` export.
    Kernel,
    /// The benchmark's `checksum` export.
    Checksum,
    /// A worker thread failed outside a specific call (panic, timeout).
    Worker,
}

impl RunStage {
    /// Report name.
    pub fn name(self) -> &'static str {
        match self {
            RunStage::Load => "load",
            RunStage::Probe => "probe",
            RunStage::Instantiate => "instantiate",
            RunStage::Init => "init",
            RunStage::Kernel => "kernel",
            RunStage::Checksum => "checksum",
            RunStage::Worker => "worker",
        }
    }
}

/// Why a run failed (after retries were exhausted).
#[derive(Debug, Clone)]
pub struct RunFailure {
    /// Where in the pipeline the failure happened.
    pub stage: RunStage,
    /// Human-readable error.
    pub error: String,
    /// Attempts made (1 = failed on the first try with no retry budget).
    pub attempts: u32,
}

impl RunFailure {
    fn new(stage: RunStage, err: &dyn fmt::Display) -> RunFailure {
        RunFailure {
            stage,
            error: err.to_string(),
            attempts: 0,
        }
    }
}

impl fmt::Display for RunFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run failed at {} after {} attempt(s): {}",
            self.stage.name(),
            self.attempts,
            self.error
        )
    }
}

/// Outcome of one (benchmark, spec) measurement: a result, or a recorded
/// failure that lets the campaign continue.
#[derive(Debug)]
pub enum RunOutcome {
    /// The run completed (checksum validity is inside the result).
    Completed(RunResult),
    /// The run failed even after retries.
    Failed(RunFailure),
}

impl RunOutcome {
    /// The completed result, if any.
    pub fn completed(&self) -> Option<&RunResult> {
        match self {
            RunOutcome::Completed(r) => Some(r),
            RunOutcome::Failed(_) => None,
        }
    }
}

/// The outcome of one (benchmark, spec) measurement.
#[derive(Debug)]
pub struct RunResult {
    /// Timed iteration durations, per worker thread.
    pub iter_times: Vec<Vec<Duration>>,
    /// Whether the wasm checksum matched the native twin.
    pub checksum_ok: bool,
    /// Delta of memory-subsystem counters over the run.
    pub vm: VmSnapshot,
    /// Full telemetry delta over the run (counters, histograms, spans),
    /// pruned to nonzero entries. Exported per-run when `LB_TELEMETRY`
    /// selects a sink.
    pub telemetry: lb_telemetry::TelemetrySnapshot,
    /// System statistics (when `sample_system`).
    pub sys: Option<SysStats>,
    /// Wall-clock time of the whole measured region.
    pub wall: Duration,
    /// The strategy the run actually executed with, after any lb-core
    /// fallback (equals the requested strategy when nothing degraded).
    pub effective_strategy: BoundsStrategy,
    /// Resolved sampling profile for the run, when `LB_PROF` selects
    /// sampling (None otherwise, and on runs where the one process-wide
    /// profiler session was already held by a concurrent run).
    pub prof: Option<lb_prof::ProfReport>,
}

impl RunResult {
    /// Median over all threads' iterations pooled together.
    pub fn median(&self) -> Duration {
        let all: Vec<Duration> = self.iter_times.iter().flatten().copied().collect();
        crate::stats::median(&all)
    }

    /// Aggregate throughput: total iterations / wall time.
    pub fn iters_per_sec(&self) -> f64 {
        let n: usize = self.iter_times.iter().map(|v| v.len()).sum();
        n as f64 / self.wall.as_secs_f64()
    }
}

/// Run one benchmark under one spec, panicking on failure.
///
/// Prefer [`run_benchmark_checked`] in campaign loops; this wrapper exists
/// for callers measuring known-good suites where a failure is a bug.
///
/// # Panics
/// Panics if the run fails after retries.
pub fn run_benchmark(bench: &Benchmark, spec: &RunSpec) -> RunResult {
    match run_benchmark_checked(bench, spec) {
        RunOutcome::Completed(r) => r,
        RunOutcome::Failed(f) => panic!("{} under {}: {f}", bench.name, spec.engine.name()),
    }
}

/// Run one benchmark under one spec without ever panicking: failures
/// (including worker panics and timeouts) become [`RunOutcome::Failed`]
/// records — and a JSONL row with `outcome=failed` — after one bounded
/// retry cycle, so a campaign of hundreds of runs survives any single one.
pub fn run_benchmark_checked(bench: &Benchmark, spec: &RunSpec) -> RunOutcome {
    let mut attempt: u32 = 0;
    loop {
        attempt += 1;
        match run_once(bench, spec) {
            Ok(result) => return RunOutcome::Completed(result),
            Err(mut failure) => {
                failure.attempts = attempt;
                if attempt > spec.retries {
                    lb_telemetry::counter("harness.run.failed").inc();
                    emit_failure(bench, spec, &failure);
                    return RunOutcome::Failed(failure);
                }
                lb_telemetry::counter("harness.run.retry").inc();
                // Linear backoff: transient failures (fd pressure, address
                // space churn) usually clear quickly.
                std::thread::sleep(Duration::from_millis(50 * u64::from(attempt)));
            }
        }
    }
}

fn emit_failure(bench: &Benchmark, spec: &RunSpec, failure: &RunFailure) {
    lb_telemetry::export::emit_run(
        &[
            ("bench", bench.name.to_string()),
            ("engine", spec.engine.name().to_string()),
            ("strategy", spec.strategy.name().to_string()),
            ("threads", spec.threads.to_string()),
            ("outcome", "failed".to_string()),
            ("stage", failure.stage.name().to_string()),
            ("error", failure.error.clone()),
            ("attempts", failure.attempts.to_string()),
        ],
        &lb_telemetry::TelemetrySnapshot::default(),
    );
}

/// Sequence number for profiler trace files, so concurrent or repeated
/// runs in one process never clobber each other's export.
static TRACE_SEQ: AtomicU32 = AtomicU32::new(0);

/// Append `<name>.p50` / `<name>.p99` columns for a histogram present in
/// the run's telemetry delta (absent histograms add no columns, keeping
/// interp rows free of jit noise and vice versa).
fn push_percentiles(
    meta: &mut Vec<(&'static str, String)>,
    telemetry: &lb_telemetry::TelemetrySnapshot,
    name: &str,
    p50_key: &'static str,
    p99_key: &'static str,
) {
    if let Some(h) = telemetry.histogram(name) {
        meta.push((p50_key, h.quantile(0.5).to_string()));
        meta.push((p99_key, h.quantile(0.99).to_string()));
    }
}

fn run_once(bench: &Benchmark, spec: &RunSpec) -> Result<RunResult, RunFailure> {
    let expected = bench.native_checksum();
    // Drain spans left over from earlier runs so this run's snapshot only
    // carries its own events; counters/histograms are handled by deltas.
    lb_telemetry::ensure_thread_ring();
    let _ = lb_telemetry::drain_spans();
    let tele_before = lb_telemetry::snapshot();
    let vm_before = snapshot();
    let sampler = spec
        .sample_system
        .then(|| Sampler::start(Duration::from_millis(20)));
    // One profiler session covers the whole run (load + instantiate +
    // kernel loops): ITIMER_PROF is process-wide, so the session is
    // started here rather than per worker.
    let prof_session = lb_prof::start();
    let deadline = spec.timeout.map(|t| Instant::now() + t);

    let raw = match spec.engine.engine() {
        None => run_native(bench, spec, expected, deadline),
        Some(engine) => run_wasm(bench, spec, engine, expected, deadline),
    };

    // Always stop the sampler and profiler and settle telemetry, success
    // or not — a failed run must not leave the SIGPROF timer armed.
    let sys = sampler.map(Sampler::stop);
    let prof = prof_session.map(|s| lb_prof::resolve_profile(s.stop()));
    let vm = snapshot().delta(&vm_before);
    let mut telemetry = lb_telemetry::snapshot_and_drain().delta_since(&tele_before);
    telemetry.retain_nonzero();
    let raw = raw?;

    if let (Some(report), Some(dir)) = (prof.as_ref(), lb_prof::out_dir()) {
        let seq = TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
        let file = format!(
            "{}-{}-{}-{seq:04}.trace.json",
            bench.name,
            spec.engine.name(),
            raw.effective.name()
        );
        if let Err(e) = lb_prof::write_chrome_trace(&dir.join(&file), report, &telemetry.spans) {
            eprintln!("lb-harness: trace export to {file} failed: {e}");
        }
    }

    let mut meta: Vec<(&'static str, String)> = Vec::new();
    if let Some(report) = prof.as_ref() {
        meta.push(("prof.samples", report.total.to_string()));
        meta.push(("prof.unresolved", report.unresolved.to_string()));
        meta.push(("prof.dropped", report.dropped.to_string()));
        for (label, n) in report.class_counts() {
            // Keys are 'static by construction: one per fixed class label.
            let key: &'static str = match label {
                "guard" => "prof.guard_pct",
                "clamp" => "prof.clamp_pct",
                "trap_path" => "prof.trap_pct",
                "mem_access" => "prof.mem_pct",
                "compute" => "prof.compute_pct",
                "runtime" => "prof.runtime_pct",
                _ => "prof.unresolved_pct",
            };
            meta.push((key, format!("{:.2}", report.pct(n))));
        }
    }
    // Satellite percentile columns: instantiation latency per engine tier
    // and the profiler's own handler service time.
    push_percentiles(
        &mut meta,
        &telemetry,
        "jit.instantiate_ns",
        "jit.instantiate_ns.p50",
        "jit.instantiate_ns.p99",
    );
    push_percentiles(
        &mut meta,
        &telemetry,
        "interp.instantiate_ns",
        "interp.instantiate_ns.p50",
        "interp.instantiate_ns.p99",
    );
    push_percentiles(
        &mut meta,
        &telemetry,
        "prof.sample_service_ns",
        "prof.sample_service_ns.p50",
        "prof.sample_service_ns.p99",
    );

    let mut row: Vec<(&str, String)> = vec![
        ("bench", bench.name.to_string()),
        ("engine", spec.engine.name().to_string()),
        ("strategy", spec.strategy.name().to_string()),
        ("strategy_effective", raw.effective.name().to_string()),
        ("threads", spec.threads.to_string()),
        // Which optimizing JIT tier the run used (`LB_TIER`): "mid" for
        // the linear-scan mid tier, "baseline" for the default `Full`.
        (
            "tier",
            if midtier_selected() {
                "mid"
            } else {
                "baseline"
            }
            .to_string(),
        ),
        ("outcome", "completed".to_string()),
        // Static bounds-check decisions for this run (compile-time
        // counters from lb-analysis via the JIT), for the paper-style
        // "checks eliminated" column.
        (
            "checks_static_elided",
            telemetry.counter("jit.checks.static_elided").to_string(),
        ),
        (
            "checks_emitted",
            telemetry.counter("jit.checks.emitted").to_string(),
        ),
        // Fast-loop-body sites covered by a hoisted preheader guard
        // (check-free in the versioned fast copy).
        (
            "checks_hoisted",
            telemetry.counter("jit.checks.hoisted").to_string(),
        ),
        // The mid tier's IR dataflow pass: sites elided because a
        // dominating guard already covers them, and sites whose guard
        // was fused into a single compare-against-limit.
        (
            "checks_gvn_elided",
            telemetry.counter("jit.checks.gvn_elided").to_string(),
        ),
        (
            "checks_fused",
            telemetry.counter("jit.checks.fused").to_string(),
        ),
        // Translation validation (only nonzero when LB_VERIFY is set):
        // sites the validator proved and anything it could not.
        (
            "verify_sites",
            telemetry.counter("verify.sites_checked").to_string(),
        ),
        (
            "verify_findings",
            telemetry.counter("verify.findings").to_string(),
        ),
        // Memory-lifecycle fast path: pool effectiveness and batched
        // uffd fault service over the run (pool.reset_us is the mean
        // reset latency in microseconds; 0 when nothing was recycled).
        ("pool.hit", telemetry.counter("pool.hit").to_string()),
        ("pool.miss", telemetry.counter("pool.miss").to_string()),
        (
            "pool.reset_us",
            format!(
                "{:.1}",
                telemetry
                    .histogram("pool.reset_us")
                    .map_or(0.0, |h| h.mean())
            ),
        ),
        (
            "uffd.batch_pages",
            telemetry.counter("uffd.batch_pages").to_string(),
        ),
        (
            "uffd.prefetch_streak",
            telemetry.counter("uffd.prefetch_streak").to_string(),
        ),
        // Mid-tier register-allocation work over the run (all zero when
        // the mid tier never compiled anything).
        (
            "jit.midtier.spills",
            telemetry.counter("jit.midtier.spills").to_string(),
        ),
        (
            "jit.midtier.reloads_elided",
            telemetry.counter("jit.midtier.reloads_elided").to_string(),
        ),
        (
            "jit.midtier.dead_stores_elided",
            telemetry
                .counter("jit.midtier.dead_stores_elided")
                .to_string(),
        ),
    ];
    row.extend(meta.into_iter().map(|(k, v)| (k as &str, v)));
    lb_telemetry::export::emit_run(&row, &telemetry);
    Ok(RunResult {
        iter_times: raw.times,
        checksum_ok: raw.checksum_ok,
        vm,
        telemetry,
        sys,
        wall: raw.wall,
        effective_strategy: raw.effective,
        prof,
    })
}

struct RawRun {
    times: Vec<Vec<Duration>>,
    checksum_ok: bool,
    wall: Duration,
    effective: BoundsStrategy,
}

fn timed_out(deadline: Option<Instant>) -> bool {
    deadline.is_some_and(|d| Instant::now() >= d)
}

fn timeout_failure() -> RunFailure {
    RunFailure::new(RunStage::Worker, &"per-run timeout exceeded")
}

/// Fold joined worker results: a panicking worker becomes a
/// [`RunStage::Worker`] failure instead of poisoning the campaign.
fn collect_workers(
    handles: Vec<std::thread::ScopedJoinHandle<'_, Result<(Vec<Duration>, bool), RunFailure>>>,
) -> Result<Vec<(Vec<Duration>, bool)>, RunFailure> {
    let mut out = Vec::with_capacity(handles.len());
    let mut first_err: Option<RunFailure> = None;
    for h in handles {
        match h.join() {
            Ok(Ok(r)) => out.push(r),
            Ok(Err(f)) => first_err = first_err.or(Some(f)),
            Err(p) => {
                let msg = p
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| p.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "worker panicked".to_string());
                let f = RunFailure::new(RunStage::Worker, &format!("worker panicked: {msg}"));
                first_err = first_err.or(Some(f));
            }
        }
    }
    match first_err {
        None => Ok(out),
        Some(f) => Err(f),
    }
}

fn run_native(
    bench: &Benchmark,
    spec: &RunSpec,
    expected: f64,
    deadline: Option<Instant>,
) -> Result<RawRun, RunFailure> {
    let barrier = Arc::new(Barrier::new(spec.threads));
    let remaining = Arc::new(AtomicUsize::new(spec.threads));
    let t0 = Instant::now();
    let joined = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for tid in 0..spec.threads {
            let barrier = Arc::clone(&barrier);
            let remaining = Arc::clone(&remaining);
            let native = &bench.native;
            handles.push(s.spawn(move || {
                pin_to_cpu(tid);
                lb_prof::ensure_thread();
                let one_iter = || {
                    let mut k: Box<dyn NativeKernel> = native();
                    k.init();
                    k.kernel();
                    k
                };
                for _ in 0..spec.warmup_iters {
                    if timed_out(deadline) {
                        break;
                    }
                    one_iter();
                }
                // Every worker reaches the barrier exactly once, even on
                // the failure paths below — otherwise siblings deadlock.
                barrier.wait();
                let mut times = Vec::with_capacity(spec.measured_iters as usize);
                let mut last = None;
                for _ in 0..spec.measured_iters {
                    if timed_out(deadline) {
                        remaining.fetch_sub(1, Ordering::AcqRel);
                        return Err(timeout_failure());
                    }
                    let t = Instant::now();
                    let k = one_iter();
                    times.push(t.elapsed());
                    last = Some(k);
                }
                let ok = last
                    .map(|k| lb_dsl::kernel::checksums_match(k.checksum(), expected))
                    .unwrap_or(true);
                // Cool-down: keep the CPU busy until everyone is done.
                remaining.fetch_sub(1, Ordering::AcqRel);
                while remaining.load(Ordering::Acquire) > 0 && !timed_out(deadline) {
                    one_iter();
                }
                Ok((times, ok))
            }));
        }
        collect_workers(handles)
    })?;
    let wall = t0.elapsed();
    let ok = joined.iter().all(|(_, ok)| *ok);
    Ok(RawRun {
        times: joined.into_iter().map(|(t, _)| t).collect(),
        checksum_ok: ok,
        wall,
        effective: spec.strategy,
    })
}

fn run_wasm(
    bench: &Benchmark,
    spec: &RunSpec,
    engine: Arc<dyn Engine>,
    expected: f64,
    deadline: Option<Instant>,
) -> Result<RawRun, RunFailure> {
    let loaded = engine
        .load(&bench.module)
        .map_err(|e| RunFailure::new(RunStage::Load, &e))?;
    let requested = MemoryConfig {
        strategy: spec.strategy,
        initial_pages: 0,
        max_pages: spec.max_pages,
        reserve_bytes: spec.reserve_bytes,
    };
    // Resolve the effective strategy once per run with a throwaway probe
    // memory. If lb-core degrades (e.g. uffd setup fails in a container),
    // every isolate of this run then uses the *same* fallen-back strategy
    // instead of each iteration renegotiating — keeping per-iteration
    // timings comparable and the JSONL row honest about what actually ran.
    let probe = LinearMemory::new(&requested).map_err(|e| RunFailure::new(RunStage::Probe, &e))?;
    let effective = probe.strategy();
    drop(probe);
    let config = MemoryConfig {
        strategy: effective,
        ..requested
    };

    let linker = Linker::new();
    let barrier = Arc::new(Barrier::new(spec.threads));
    let remaining = Arc::new(AtomicUsize::new(spec.threads));
    let t0 = Instant::now();
    let joined = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for tid in 0..spec.threads {
            let loaded = Arc::clone(&loaded);
            let linker = linker.clone();
            let barrier = Arc::clone(&barrier);
            let remaining = Arc::clone(&remaining);
            handles.push(s.spawn(move || {
                pin_to_cpu(tid);
                lb_prof::ensure_thread();
                // One isolate instantiation + run per iteration: the
                // allocate/free churn the paper measures.
                let one_iter = || -> Result<Box<dyn lb_core::Instance>, RunFailure> {
                    let mut inst = loaded
                        .instantiate(&config, &linker)
                        .map_err(|e| RunFailure::new(RunStage::Instantiate, &e))?;
                    inst.invoke("init", &[])
                        .map_err(|e| RunFailure::new(RunStage::Init, &e))?;
                    inst.invoke("kernel", &[])
                        .map_err(|e| RunFailure::new(RunStage::Kernel, &e))?;
                    Ok(inst)
                };
                let mut warm_err = None;
                for _ in 0..spec.warmup_iters {
                    if timed_out(deadline) {
                        warm_err = Some(timeout_failure());
                        break;
                    }
                    if let Err(f) = one_iter() {
                        warm_err = Some(f);
                        break;
                    }
                }
                // Every worker reaches the barrier exactly once, even when
                // warm-up failed — otherwise the siblings deadlock.
                barrier.wait();
                if let Some(f) = warm_err {
                    remaining.fetch_sub(1, Ordering::AcqRel);
                    return Err(f);
                }
                let mut times = Vec::with_capacity(spec.measured_iters as usize);
                let mut ok = true;
                for i in 0..spec.measured_iters {
                    if timed_out(deadline) {
                        remaining.fetch_sub(1, Ordering::AcqRel);
                        return Err(timeout_failure());
                    }
                    let t = Instant::now();
                    let mut inst = match one_iter() {
                        Ok(inst) => inst,
                        Err(f) => {
                            remaining.fetch_sub(1, Ordering::AcqRel);
                            return Err(f);
                        }
                    };
                    times.push(t.elapsed());
                    if i == spec.measured_iters - 1 {
                        let cs = match inst.invoke("checksum", &[]) {
                            Ok(v) => v.and_then(|v| v.as_f64()).unwrap_or(f64::NAN),
                            Err(e) => {
                                remaining.fetch_sub(1, Ordering::AcqRel);
                                return Err(RunFailure::new(RunStage::Checksum, &e));
                            }
                        };
                        ok = lb_dsl::kernel::checksums_match(cs, expected);
                    }
                }
                remaining.fetch_sub(1, Ordering::AcqRel);
                while remaining.load(Ordering::Acquire) > 0 && !timed_out(deadline) {
                    if one_iter().is_err() {
                        break;
                    }
                }
                Ok((times, ok))
            }));
        }
        collect_workers(handles)
    })?;
    let wall = t0.elapsed();
    let ok = joined.iter().all(|(_, ok)| *ok);
    Ok(RawRun {
        times: joined.into_iter().map(|(t, _)| t).collect(),
        checksum_ok: ok,
        wall,
        effective,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lb_polybench::{by_name, common::Dataset};

    fn quick_spec(engine: EngineSel) -> RunSpec {
        RunSpec {
            engine,
            strategy: BoundsStrategy::Mprotect,
            threads: 1,
            warmup_iters: 1,
            measured_iters: 3,
            reserve_bytes: 64 << 20,
            max_pages: 512,
            sample_system: false,
            timeout: Some(Duration::from_secs(120)),
            retries: 1,
        }
    }

    #[test]
    fn native_run_produces_times() {
        let b = by_name("gemm", Dataset::Mini).unwrap();
        let r = run_benchmark(&b, &quick_spec(EngineSel::Native));
        assert!(r.checksum_ok);
        assert_eq!(r.iter_times.len(), 1);
        assert_eq!(r.iter_times[0].len(), 3);
    }

    #[test]
    fn wasm_run_produces_times_and_validates() {
        let b = by_name("atax", Dataset::Mini).unwrap();
        for e in [EngineSel::Interp, EngineSel::Wavm] {
            let r = run_benchmark(&b, &quick_spec(e));
            assert!(r.checksum_ok, "{}", e.name());
            assert!(r.median() > Duration::ZERO);
            assert!(r.vm.mmap >= 3, "one reservation per isolate iteration");
            assert_eq!(r.effective_strategy, BoundsStrategy::Mprotect);
        }
    }

    #[test]
    fn multithreaded_run_works() {
        let b = by_name("trisolv", Dataset::Mini).unwrap();
        let mut spec = quick_spec(EngineSel::Wasmtime);
        spec.threads = 4;
        let r = run_benchmark(&b, &spec);
        assert!(r.checksum_ok);
        assert_eq!(r.iter_times.len(), 4);
        assert!(r.iters_per_sec() > 0.0);
    }

    #[test]
    fn mprotect_strategy_issues_mprotect_calls() {
        let b = by_name("jacobi-1d", Dataset::Mini).unwrap();
        let mut spec = quick_spec(EngineSel::Wavm);
        spec.strategy = BoundsStrategy::Mprotect;
        let r1 = run_benchmark(&b, &spec);
        spec.strategy = BoundsStrategy::Trap;
        let r2 = run_benchmark(&b, &spec);
        assert!(
            r1.vm.mprotect > r2.vm.mprotect,
            "mprotect strategy must call mprotect more ({} vs {})",
            r1.vm.mprotect,
            r2.vm.mprotect
        );
    }

    #[test]
    fn tiny_timeout_fails_cleanly() {
        let b = by_name("gemm", Dataset::Mini).unwrap();
        let mut spec = quick_spec(EngineSel::Interp);
        spec.timeout = Some(Duration::ZERO);
        spec.retries = 0;
        match run_benchmark_checked(&b, &spec) {
            RunOutcome::Failed(f) => {
                assert_eq!(f.stage, RunStage::Worker);
                assert!(f.error.contains("timeout"), "{}", f.error);
            }
            RunOutcome::Completed(_) => panic!("zero timeout must fail"),
        }
    }
}
