//! Plain-text tables, CSV and JSONL output for the figure-regeneration
//! binaries.
//!
//! All file emission here is *atomic*: content is written to a sibling
//! temporary file and `rename(2)`d into place, so a campaign killed (or a
//! run crashing) mid-write never leaves a truncated report behind.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Atomically replace `path` with `content` (write temp + rename).
///
/// # Errors
/// Propagates I/O failures; on error the destination is untouched.
pub fn atomic_write(path: &Path, content: &[u8]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let tmp = path.with_extension(format!(
        "{}.tmp.{}",
        path.extension()
            .and_then(|e| e.to_str())
            .unwrap_or("partial"),
        std::process::id()
    ));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(content)?;
    f.sync_all()?;
    drop(f);
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// A simple column-aligned table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Write as CSV (atomically: temp file + rename).
    ///
    /// # Errors
    /// Propagates I/O failures; a failed write leaves any previous file
    /// at `path` intact.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        atomic_write(path, out.as_bytes())
    }
}

/// An accumulating JSONL report: one flat string-keyed object per row,
/// rewritten atomically on every [`JsonlReport::flush`] so the on-disk
/// file is always a complete, parseable prefix of the campaign — even if
/// the process dies between runs.
#[derive(Debug, Default)]
pub struct JsonlReport {
    lines: Vec<String>,
}

impl JsonlReport {
    /// An empty report.
    pub fn new() -> JsonlReport {
        JsonlReport::default()
    }

    /// Append one row of key/value pairs (values emitted as JSON strings,
    /// with the minimal escaping JSONL needs).
    pub fn row(&mut self, fields: &[(&str, String)]) -> &mut Self {
        let mut line = String::from("{");
        for (i, (k, v)) in fields.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            let _ = write!(line, "\"{}\":\"{}\"", escape(k), escape(v));
        }
        line.push('}');
        self.lines.push(line);
        self
    }

    /// Number of rows accumulated.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether no rows have been accumulated.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Atomically (re)write all rows to `path`.
    ///
    /// # Errors
    /// Propagates I/O failures; a failed flush leaves any previous file
    /// at `path` intact.
    pub fn flush(&self, path: &Path) -> std::io::Result<()> {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        atomic_write(path, out.as_bytes())
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format a ratio with 3 decimals.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.3}")
}

/// Format a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1}us")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.3}s", us / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["gemm".into(), "1.234".into()]);
        t.row(vec!["jacobi-2d".into(), "0.9".into()]);
        let s = t.render();
        assert!(s.contains("gemm"));
        assert!(s.contains("jacobi-2d"));
        assert!(s.lines().count() == 4);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let p = std::env::temp_dir().join(format!("lb-csv-{}.csv", std::process::id()));
        t.write_csv(&p).unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert_eq!(s, "a,b\n1,2\n");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn atomic_write_replaces_and_never_truncates() {
        let p = std::env::temp_dir().join(format!("lb-atomic-{}.txt", std::process::id()));
        atomic_write(&p, b"first").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "first");
        atomic_write(&p, b"second version").unwrap();
        assert_eq!(std::fs::read_to_string(&p).unwrap(), "second version");
        // No stray temp files left behind.
        let dir = p.parent().unwrap();
        let strays = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                e.file_name().to_string_lossy().contains("lb-atomic")
                    && e.file_name().to_string_lossy().contains(".tmp.")
            })
            .count();
        assert_eq!(strays, 0);
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn jsonl_report_escapes_and_flushes() {
        let mut r = JsonlReport::new();
        r.row(&[
            ("bench", "gemm".into()),
            ("error", "he said \"no\"\n".into()),
        ]);
        r.row(&[("bench", "atax".into())]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        let p = std::env::temp_dir().join(format!("lb-jsonl-{}.jsonl", std::process::id()));
        r.flush(&p).unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("\\\"no\\\"\\n"));
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500.0us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
    }
}
