//! Plain-text tables and CSV output for the figure-regeneration binaries.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A simple column-aligned table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header length).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{c:>width$}", width = widths[i]);
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(row, &mut out);
        }
        out
    }

    /// Write as CSV.
    ///
    /// # Errors
    /// Propagates I/O failures.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Format a ratio with 3 decimals.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.3}")
}

/// Format a duration in adaptive units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1}us")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.3}s", us / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["gemm".into(), "1.234".into()]);
        t.row(vec!["jacobi-2d".into(), "0.9".into()]);
        let s = t.render();
        assert!(s.contains("gemm"));
        assert!(s.contains("jacobi-2d"));
        assert!(s.lines().count() == 4);
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_roundtrip() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let p = std::env::temp_dir().join(format!("lb-csv-{}.csv", std::process::id()));
        t.write_csv(&p).unwrap();
        let s = std::fs::read_to_string(&p).unwrap();
        assert_eq!(s, "a,b\n1,2\n");
        let _ = std::fs::remove_file(&p);
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500.0us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000s");
    }
}
