//! `/proc` samplers reproducing the paper's system metrics:
//!
//! * CPU utilisation per eq. (1): `(us+sys+hi+si) / (us+sys+hi+si+id)`,
//!   rescaled so 100% = one fully-busy core (§4.2.1);
//! * context switches per second from `/proc/stat`'s `ctxt` line (§4.2.2);
//! * memory usage as `MemTotal − MemAvailable` from `/proc/meminfo` (§4.3).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One parse of `/proc/stat`'s aggregate cpu line plus the ctxt counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CpuTimes {
    /// user + nice (jiffies).
    pub user: u64,
    /// kernel time.
    pub system: u64,
    /// hard irq time.
    pub irq: u64,
    /// soft irq time.
    pub softirq: u64,
    /// idle + iowait.
    pub idle: u64,
    /// Total context switches since boot.
    pub ctxt: u64,
}

impl CpuTimes {
    /// Busy jiffies per the paper's formula.
    pub fn busy(&self) -> u64 {
        self.user + self.system + self.irq + self.softirq
    }

    /// All accounted jiffies.
    pub fn total(&self) -> u64 {
        self.busy() + self.idle
    }
}

/// Read `/proc/stat`.
pub fn read_cpu_times() -> CpuTimes {
    let s = std::fs::read_to_string("/proc/stat").unwrap_or_default();
    parse_cpu_times(&s)
}

fn parse_cpu_times(s: &str) -> CpuTimes {
    let mut t = CpuTimes::default();
    for line in s.lines() {
        if let Some(rest) = line.strip_prefix("cpu ") {
            let f: Vec<u64> = rest
                .split_whitespace()
                .map(|x| x.parse().unwrap_or(0))
                .collect();
            // user nice system idle iowait irq softirq steal ...
            t.user = f.first().copied().unwrap_or(0) + f.get(1).copied().unwrap_or(0);
            t.system = f.get(2).copied().unwrap_or(0);
            t.idle = f.get(3).copied().unwrap_or(0) + f.get(4).copied().unwrap_or(0);
            t.irq = f.get(5).copied().unwrap_or(0);
            t.softirq = f.get(6).copied().unwrap_or(0);
        } else if let Some(rest) = line.strip_prefix("ctxt ") {
            t.ctxt = rest.trim().parse().unwrap_or(0);
        }
    }
    t
}

/// This process's resident set size in bytes (`VmRSS` in
/// `/proc/self/status`) — a per-process complement to the system-wide
/// metric, useful inside containers where `MemAvailable` is noisy.
pub fn read_self_rss() -> u64 {
    let s = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    for line in s.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            return rest
                .split_whitespace()
                .next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0)
                * 1024;
        }
    }
    0
}

/// Used memory in bytes: `MemTotal − MemAvailable`.
pub fn read_mem_used() -> u64 {
    let s = std::fs::read_to_string("/proc/meminfo").unwrap_or_default();
    parse_mem_used(&s)
}

fn parse_mem_used(s: &str) -> u64 {
    let mut total = 0u64;
    let mut avail = 0u64;
    for line in s.lines() {
        let grab = |l: &str| -> u64 {
            l.split_whitespace()
                .nth(1)
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(0)
                * 1024
        };
        if line.starts_with("MemTotal:") {
            total = grab(line);
        } else if line.starts_with("MemAvailable:") {
            avail = grab(line);
        }
    }
    total.saturating_sub(avail)
}

/// Aggregated system statistics over a measurement window.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SysStats {
    /// CPU utilisation in percent of one core (100 = one busy core,
    /// 1600 = sixteen, as the paper rescales).
    pub cpu_util_pct: f64,
    /// Context switches per second.
    pub ctxt_per_sec: f64,
    /// Mean used memory in bytes during the window.
    pub mem_used_bytes: u64,
    /// Peak process resident set size during the window, bytes.
    pub rss_peak_bytes: u64,
    /// Window length.
    pub wall: Duration,
}

/// A background sampler; start before the workload, stop after.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<(Vec<u64>, u64, CpuTimes, CpuTimes)>>,
    started: Instant,
    ncpu: usize,
}

impl Sampler {
    /// Start sampling `/proc` every `interval`.
    pub fn start(interval: Duration) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("lb-sampler".into())
            .spawn(move || {
                let first = read_cpu_times();
                let mut mems = Vec::new();
                let mut rss_peak = 0u64;
                while !stop2.load(Ordering::Relaxed) {
                    mems.push(read_mem_used());
                    rss_peak = rss_peak.max(read_self_rss());
                    std::thread::sleep(interval);
                }
                let last = read_cpu_times();
                (mems, rss_peak, first, last)
            })
            .expect("spawn sampler");
        Sampler {
            stop,
            handle: Some(handle),
            started: Instant::now(),
            ncpu: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }

    /// Stop and aggregate.
    pub fn stop(mut self) -> SysStats {
        let wall = self.started.elapsed();
        self.stop.store(true, Ordering::Relaxed);
        let (mems, rss_peak, first, last) = self
            .handle
            .take()
            .expect("sampler running")
            .join()
            .expect("sampler joins");
        let busy = last.busy().saturating_sub(first.busy()) as f64;
        let total = last.total().saturating_sub(first.total()) as f64;
        let util_frac = if total > 0.0 { busy / total } else { 0.0 };
        let ctxt = last.ctxt.saturating_sub(first.ctxt) as f64;
        SysStats {
            // Paper's rescale: 100% per core.
            cpu_util_pct: util_frac * 100.0 * self.ncpu as f64,
            ctxt_per_sec: if wall.as_secs_f64() > 0.0 {
                ctxt / wall.as_secs_f64()
            } else {
                0.0
            },
            mem_used_bytes: if mems.is_empty() {
                0
            } else {
                mems.iter().sum::<u64>() / mems.len() as u64
            },
            rss_peak_bytes: rss_peak,
            wall,
        }
    }
}

/// Pin the calling thread to `cpu` (modulo available CPUs), as the paper
/// pins worker threads "to reduce the impact of scheduling decisions about
/// CPU migrations".
pub fn pin_to_cpu(cpu: usize) {
    let n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let target = cpu % n;
    // SAFETY: standard affinity call with a properly zeroed set.
    unsafe {
        let mut set: libc::cpu_set_t = std::mem::zeroed();
        libc::CPU_SET(target, &mut set);
        libc::sched_setaffinity(0, std::mem::size_of::<libc::cpu_set_t>(), &set);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_proc_stat_format() {
        let s = "cpu  100 20 50 800 30 5 5 0 0 0\ncpu0 ...\nctxt 123456\n";
        let t = parse_cpu_times(s);
        assert_eq!(t.user, 120);
        assert_eq!(t.system, 50);
        assert_eq!(t.idle, 830);
        assert_eq!(t.irq, 5);
        assert_eq!(t.softirq, 5);
        assert_eq!(t.ctxt, 123456);
        assert_eq!(t.busy(), 180);
    }

    #[test]
    fn parses_meminfo() {
        let s = "MemTotal:       16384 kB\nMemFree:        1024 kB\nMemAvailable:   8192 kB\n";
        assert_eq!(parse_mem_used(s), (16384 - 8192) * 1024);
    }

    #[test]
    fn live_reads_work() {
        let t = read_cpu_times();
        assert!(t.total() > 0);
        assert!(read_mem_used() > 0);
    }

    #[test]
    fn sampler_produces_stats() {
        let s = Sampler::start(Duration::from_millis(5));
        // Burn a little CPU so utilisation is nonzero.
        let t = Instant::now();
        let mut x = 0u64;
        while t.elapsed() < Duration::from_millis(30) {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        std::hint::black_box(x);
        let st = s.stop();
        assert!(st.wall >= Duration::from_millis(30));
        assert!(st.mem_used_bytes > 0);
        assert!(st.cpu_util_pct >= 0.0);
    }

    #[test]
    fn pinning_does_not_crash() {
        pin_to_cpu(0);
        pin_to_cpu(999); // wraps modulo cpu count
    }
}
