//! # lb-harness — the measurement harness
//!
//! Reproduces the paper's custom benchmarking harness (§3.5): per-thread
//! pinned isolates executed in timed loops with warm-up and cool-down
//! phases, `/proc`-based CPU/context-switch/memory sampling (§4.2–4.3),
//! median/geomean-of-ratios statistics, and plain-text/CSV reporting used
//! by the figure-regeneration binaries in `lb-bench`.

#![warn(missing_docs)]

pub mod procstat;
pub mod report;
pub mod runner;
pub mod stats;

pub use procstat::{Sampler, SysStats};
pub use report::{atomic_write, JsonlReport, Table};
pub use runner::{
    run_benchmark, run_benchmark_checked, EngineSel, RunFailure, RunOutcome, RunResult, RunSpec,
    RunStage,
};
