//! Statistics used by the paper's evaluation: per-benchmark medians and
//! the Fleming–Wallace geometric mean of ratios (the paper cites [4],
//! "How Not To Lie With Statistics", for exactly this aggregation).

use std::time::Duration;

/// Median of a sample (averaging the middle pair for even sizes).
pub fn median(samples: &[Duration]) -> Duration {
    assert!(!samples.is_empty(), "median of empty sample");
    let mut v: Vec<Duration> = samples.to_vec();
    v.sort_unstable();
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2
    }
}

/// Arithmetic mean.
pub fn mean(samples: &[Duration]) -> Duration {
    assert!(!samples.is_empty(), "mean of empty sample");
    let total: Duration = samples.iter().sum();
    total / samples.len() as u32
}

/// The p-th percentile (nearest-rank), p in [0, 100].
pub fn percentile(samples: &[Duration], p: f64) -> Duration {
    assert!(!samples.is_empty(), "percentile of empty sample");
    let mut v: Vec<Duration> = samples.to_vec();
    v.sort_unstable();
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

/// Geometric mean of ratios (Fleming–Wallace): the correct way to average
/// normalized execution times across benchmarks.
pub fn geomean_ratios(ratios: &[f64]) -> f64 {
    assert!(!ratios.is_empty(), "geomean of empty sample");
    let log_sum: f64 = ratios.iter().map(|r| r.ln()).sum();
    (log_sum / ratios.len() as f64).exp()
}

/// Ratio of two durations as f64.
pub fn ratio(a: Duration, b: Duration) -> f64 {
    a.as_secs_f64() / b.as_secs_f64()
}

/// Coefficient of variation (stddev/mean) — used to report run stability.
pub fn cv(samples: &[Duration]) -> f64 {
    if samples.len() < 2 {
        return 0.0;
    }
    let m = mean(samples).as_secs_f64();
    let var: f64 = samples
        .iter()
        .map(|s| {
            let d = s.as_secs_f64() - m;
            d * d
        })
        .sum::<f64>()
        / (samples.len() - 1) as f64;
    var.sqrt() / m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[ms(3), ms(1), ms(2)]), ms(2));
        assert_eq!(median(&[ms(1), ms(2), ms(3), ms(4)]), ms(2) + ms(1) / 2);
    }

    #[test]
    fn geomean_is_fleming_wallace() {
        // geomean(2, 0.5) == 1 — a speedup and equal slowdown cancel.
        let g = geomean_ratios(&[2.0, 0.5]);
        assert!((g - 1.0).abs() < 1e-12);
        let g = geomean_ratios(&[1.0, 8.0]);
        assert!((g - 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentile_bounds() {
        let s = [ms(1), ms(2), ms(3), ms(4), ms(5)];
        assert_eq!(percentile(&s, 0.0), ms(1));
        assert_eq!(percentile(&s, 100.0), ms(5));
        assert_eq!(percentile(&s, 50.0), ms(3));
    }

    #[test]
    fn cv_zero_for_constant() {
        assert_eq!(cv(&[ms(5), ms(5), ms(5)]), 0.0);
        assert!(cv(&[ms(1), ms(9)]) > 0.5);
    }
}
