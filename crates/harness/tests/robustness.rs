//! Crash-proof-harness integration tests: injected OS-boundary failures
//! must become per-run `RunOutcome::Failed` records (or be absorbed by
//! fallback/retry) — never panics, aborts, or deadlocks.
//!
//! These live in their own integration binary (separate process) so the
//! process-global chaos plan cannot interfere with unrelated unit tests;
//! within the binary, every test holding a `ChaosGuard` is serialized by
//! the guard's install lock.

use lb_core::BoundsStrategy;
use lb_harness::{run_benchmark_checked, EngineSel, RunOutcome, RunSpec, RunStage};
use lb_polybench::{by_name, common::Dataset};
use std::time::Duration;

fn quick_spec(engine: EngineSel, strategy: BoundsStrategy) -> RunSpec {
    RunSpec {
        engine,
        strategy,
        threads: 1,
        warmup_iters: 1,
        measured_iters: 2,
        reserve_bytes: 64 << 20,
        max_pages: 512,
        sample_system: false,
        timeout: Some(Duration::from_secs(120)),
        retries: 0,
    }
}

#[test]
fn injected_failure_becomes_failed_record_and_campaign_continues() {
    let guard = lb_chaos::install("core.mmap.reserve:EPERM").unwrap();
    // A whole mini-campaign under a persistent fault: every run fails
    // cleanly at the probe stage, none panics, the loop reaches the end.
    for name in ["gemm", "atax", "trisolv"] {
        let b = by_name(name, Dataset::Mini).unwrap();
        let spec = quick_spec(EngineSel::Interp, BoundsStrategy::Mprotect);
        match run_benchmark_checked(&b, &spec) {
            RunOutcome::Failed(f) => {
                assert_eq!(f.stage, RunStage::Probe, "{name}: {f}");
                assert!(f.error.contains("reservation"), "{name}: {}", f.error);
            }
            RunOutcome::Completed(_) => panic!("{name}: must fail under injected EPERM"),
        }
    }
    drop(guard);
    // With the fault gone the same spec completes.
    let b = by_name("gemm", Dataset::Mini).unwrap();
    let spec = quick_spec(EngineSel::Interp, BoundsStrategy::Mprotect);
    let r = run_benchmark_checked(&b, &spec);
    assert!(r.completed().is_some_and(|r| r.checksum_ok));
}

#[test]
fn one_shot_injection_is_absorbed_by_retry() {
    let _guard = lb_chaos::install("core.mmap.reserve:1:EIO").unwrap();
    let before = lb_telemetry::snapshot();
    let b = by_name("atax", Dataset::Mini).unwrap();
    let mut spec = quick_spec(EngineSel::Interp, BoundsStrategy::Trap);
    spec.retries = 1;
    match run_benchmark_checked(&b, &spec) {
        RunOutcome::Completed(r) => assert!(r.checksum_ok),
        RunOutcome::Failed(f) => panic!("retry must absorb a one-shot fault: {f}"),
    }
    let delta = lb_telemetry::snapshot().delta_since(&before);
    assert_eq!(delta.counter("harness.run.retry"), 1);
}

#[test]
fn worker_stage_failure_does_not_deadlock_multithreaded_run() {
    // The probe consumes check #1; check #2 fires in one worker's warm-up
    // instantiation. The failed worker must still reach the barrier and
    // decrement the cool-down count, or this test hangs.
    let _guard = lb_chaos::install("core.mmap.reserve:2:ENOMEM").unwrap();
    let b = by_name("trisolv", Dataset::Mini).unwrap();
    let mut spec = quick_spec(EngineSel::Wavm, BoundsStrategy::Trap);
    spec.threads = 2;
    match run_benchmark_checked(&b, &spec) {
        RunOutcome::Failed(f) => assert_eq!(f.stage, RunStage::Instantiate, "{f}"),
        RunOutcome::Completed(_) => panic!("injected instantiate fault must surface"),
    }
}

#[test]
fn uffd_setup_failure_falls_back_to_mprotect_end_to_end() {
    // The acceptance scenario: a Uffd-configured run in an environment
    // where userfaultfd creation fails (here, forced by injection; in a
    // locked-down container, for real) completes via the Mprotect
    // fallback with validating checksums and the degradation on record.
    let _guard = lb_chaos::install("core.uffd.create:1:EPERM").unwrap();
    let b = by_name("gemm", Dataset::Mini).unwrap();
    let spec = quick_spec(EngineSel::Wavm, BoundsStrategy::Uffd);
    match run_benchmark_checked(&b, &spec) {
        RunOutcome::Completed(r) => {
            assert_eq!(r.effective_strategy, BoundsStrategy::Mprotect);
            assert!(r.checksum_ok, "fallback run must still validate");
            assert_eq!(
                r.telemetry.counter("core.strategy.fallback"),
                1,
                "exactly one degradation: the run-level probe"
            );
            assert!(r.vm.mprotect > 0, "mprotect fallback must issue mprotect");
        }
        RunOutcome::Failed(f) => panic!("fallback chain must rescue the run: {f}"),
    }
}
