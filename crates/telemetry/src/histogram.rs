//! Power-of-two-bucket histograms.
//!
//! Bucket 0 counts zero values; bucket `b ≥ 1` counts values in
//! `[2^(b-1), 2^b)`. Recording is three relaxed `fetch_add`s on
//! pre-registered static slots: no allocation, wait-free,
//! async-signal-safe. Good enough resolution for latency attribution
//! (every bucket is a 2× band) at a fixed 65-slot cost.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum number of distinct histograms.
pub const MAX_HISTOGRAMS: usize = 64;
/// Buckets per histogram: one zero bucket + 64 power-of-two bands.
pub const BUCKETS: usize = 65;

struct Slot {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Slot {
    const NEW: Slot = Slot {
        buckets: [const { AtomicU64::new(0) }; BUCKETS],
        count: AtomicU64::new(0),
        sum: AtomicU64::new(0),
    };
}

static SLOTS: [Slot; MAX_HISTOGRAMS] = [const { Slot::NEW }; MAX_HISTOGRAMS];
static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    idx: u32,
}

/// Register (or look up) the histogram named `name`. Takes a mutex; call
/// from normal context and cache the handle (signal handlers must only
/// use pre-registered handles).
pub fn histogram(name: &'static str) -> Histogram {
    let mut names = NAMES.lock().unwrap();
    if let Some(i) = names.iter().position(|n| *n == name) {
        return Histogram { idx: i as u32 };
    }
    assert!(
        names.len() < MAX_HISTOGRAMS,
        "histogram table full ({MAX_HISTOGRAMS})"
    );
    names.push(name);
    Histogram {
        idx: (names.len() - 1) as u32,
    }
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Exclusive upper bound of bucket `b` (`1` for the zero bucket).
#[inline]
pub fn bucket_bound(b: usize) -> u64 {
    if b >= 64 {
        u64::MAX
    } else {
        1u64 << b
    }
}

impl Histogram {
    /// Record one value. Wait-free, async-signal-safe.
    #[inline]
    pub fn record(self, v: u64) {
        let slot = &SLOTS[self.idx as usize];
        slot.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        slot.count.fetch_add(1, Ordering::Relaxed);
        slot.sum.fetch_add(v, Ordering::Relaxed);
    }
}

/// A histogram's state at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registered name.
    pub name: &'static str,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Per-bucket counts (see [`bucket_bound`] for bucket meanings).
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` in `[0, 1]`.
    /// Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_bound(b);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// Bucket-wise saturating difference `self - earlier` (matched by
    /// name by the snapshot layer).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        HistogramSnapshot {
            name: self.name,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            buckets,
        }
    }
}

/// All registered histograms with their current state, in registration
/// order. Not an atomic cut (see `counters` module docs — same caveat).
pub fn snapshot_histograms() -> Vec<HistogramSnapshot> {
    let names = NAMES.lock().unwrap();
    names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let slot = &SLOTS[i];
            let mut buckets = [0u64; BUCKETS];
            for (b, out) in buckets.iter_mut().enumerate() {
                *out = slot.buckets[b].load(Ordering::Relaxed);
            }
            HistogramSnapshot {
                name,
                count: slot.count.load(Ordering::Relaxed),
                sum: slot.sum.load(Ordering::Relaxed),
                buckets,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 1);
        assert_eq!(bucket_bound(10), 1024);
        assert_eq!(bucket_bound(64), u64::MAX);
    }

    #[test]
    fn record_and_quantiles() {
        let h = histogram("test.hist.basic");
        for v in [0u64, 1, 3, 100, 100, 100, 5000] {
            h.record(v);
        }
        let snap = snapshot_histograms()
            .into_iter()
            .find(|s| s.name == "test.hist.basic")
            .unwrap();
        assert_eq!(snap.count, 7);
        assert_eq!(snap.sum, 5304);
        assert_eq!(snap.buckets[0], 1); // the zero
        assert_eq!(snap.buckets[bucket_index(100)], 3);
        // p50 falls in the bucket holding the three 100s: [64, 128).
        assert_eq!(snap.quantile(0.5), 128);
        assert!(snap.quantile(1.0) >= 8192);
        assert!((snap.mean() - 5304.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn delta_subtracts() {
        let h = histogram("test.hist.delta");
        h.record(10);
        let before = snapshot_histograms()
            .into_iter()
            .find(|s| s.name == "test.hist.delta")
            .unwrap();
        h.record(10);
        h.record(20);
        let after = snapshot_histograms()
            .into_iter()
            .find(|s| s.name == "test.hist.delta")
            .unwrap();
        let d = after.delta(&before);
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 30);
        assert_eq!(d.buckets[bucket_index(10)], 1);
        assert_eq!(d.buckets[bucket_index(20)], 1);
    }

    #[test]
    fn empty_histogram_stats() {
        let h = HistogramSnapshot {
            name: "empty",
            count: 0,
            sum: 0,
            buckets: [0; BUCKETS],
        };
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
    }
}
