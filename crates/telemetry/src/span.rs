//! Spans (RAII timers) and instant events.
//!
//! A [`crate::span!`] expands to [`SpanGuard::enter`]: when spans are
//! disabled this is one relaxed atomic load and nothing else; when
//! enabled it takes a timestamp and, on drop, pushes one fixed-size
//! record into the calling thread's ring.
//!
//! Span *names* are interned into a small registry so ring records stay
//! fixed-size. Interning takes a mutex; signal handlers must use a name
//! pre-registered with [`register_span_name`] and push through
//! [`record_span_raw`].

use crate::clock::now_ns;
use crate::ring::{self, EventKind};
use std::sync::Mutex;

/// Maximum number of distinct span/instant names.
pub const MAX_SPAN_NAMES: usize = 256;

static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// A pre-interned span name, safe to use from signal handlers via
/// [`record_span_raw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(u16);

/// Intern `name`, returning its id. Takes a mutex — normal context only.
pub fn register_span_name(name: &'static str) -> SpanId {
    let mut names = NAMES.lock().unwrap();
    if let Some(i) = names.iter().position(|n| *n == name) {
        return SpanId(i as u16);
    }
    assert!(
        names.len() < MAX_SPAN_NAMES,
        "span name table full ({MAX_SPAN_NAMES})"
    );
    names.push(name);
    SpanId((names.len() - 1) as u16)
}

/// The name behind an interned id (`"?"` for an unknown id).
pub(crate) fn name_of(id: u16) -> &'static str {
    NAMES
        .lock()
        .unwrap()
        .get(id as usize)
        .copied()
        .unwrap_or("?")
}

/// One drained event record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Interned span name.
    pub name: &'static str,
    /// Span (timed region) or instant (point event).
    pub kind: EventKind,
    /// Caller-supplied argument (e.g. a function index).
    pub arg: u64,
    /// Monotonic start time in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Id of the thread whose ring held the record.
    pub thread: u32,
}

/// RAII timer created by [`crate::span!`]; records a span on drop.
#[must_use = "a span measures the scope it is bound to — bind it to a variable"]
pub struct SpanGuard {
    id: SpanId,
    arg: u64,
    start_ns: u64,
    active: bool,
}

impl SpanGuard {
    /// Start a span if spans are enabled; otherwise return an inert
    /// guard whose total cost was one atomic load.
    #[inline]
    pub fn enter(name: &'static str, arg: u64) -> SpanGuard {
        if !crate::spans_enabled() {
            return SpanGuard {
                id: SpanId(0),
                arg: 0,
                start_ns: 0,
                active: false,
            };
        }
        SpanGuard {
            id: register_span_name(name),
            arg,
            start_ns: now_ns(),
            active: true,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            let dur = now_ns().saturating_sub(self.start_ns);
            let (id, arg, start) = (self.id, self.arg, self.start_ns);
            ring::with_ring(|r| r.push(id.0, EventKind::Span, arg, start, dur));
        }
    }
}

/// Record a point event (no duration) if spans are enabled.
#[inline]
pub fn instant(name: &'static str, arg: u64) {
    if !crate::spans_enabled() {
        return;
    }
    let id = register_span_name(name);
    let t = now_ns();
    ring::with_ring(|r| r.push(id.0, EventKind::Instant, arg, t, 0));
}

/// Push a span record with explicit timing, using a pre-interned name.
///
/// Async-signal-safe *provided* the calling thread already ran
/// [`crate::ensure_thread_ring`] in normal context: the push touches only
/// the existing ring. No-op when spans are disabled or the ring was
/// never created.
#[inline]
pub fn record_span_raw(id: SpanId, arg: u64, start_ns: u64, dur_ns: u64) {
    if !crate::spans_enabled() {
        return;
    }
    ring::with_ring_signal_safe(|r| r.push(id.0, EventKind::Span, arg, start_ns, dur_ns));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_records_nothing() {
        let _g = crate::test_drain_lock();
        crate::set_spans_enabled(false);
        ring::drain_spans();
        {
            let _s = crate::span!("test.span.disabled", 1);
        }
        assert!(ring::drain_spans()
            .iter()
            .all(|r| r.name != "test.span.disabled"));
    }

    #[test]
    fn enabled_span_measures_scope() {
        let _g = crate::test_drain_lock();
        crate::set_spans_enabled(true);
        ring::drain_spans();
        {
            let _s = crate::span!("test.span.enabled", 42);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        instant("test.span.point", 7);
        crate::set_spans_enabled(false);
        let drained = ring::drain_spans();
        let span = drained
            .iter()
            .find(|r| r.name == "test.span.enabled")
            .expect("span recorded");
        assert_eq!(span.arg, 42);
        assert_eq!(span.kind, EventKind::Span);
        assert!(span.dur_ns >= 1_000_000, "dur {}", span.dur_ns);
        let point = drained
            .iter()
            .find(|r| r.name == "test.span.point")
            .expect("instant recorded");
        assert_eq!(point.kind, EventKind::Instant);
        assert_eq!(point.dur_ns, 0);
        assert_eq!(point.arg, 7);
    }

    #[test]
    fn names_dedupe() {
        let a = register_span_name("test.span.name");
        let b = register_span_name("test.span.name");
        assert_eq!(a, b);
        assert_eq!(name_of(a.0), "test.span.name");
    }
}
