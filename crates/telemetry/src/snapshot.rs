//! Whole-process telemetry snapshots and deltas.

use crate::counters::{snapshot_counters, CounterValue};
use crate::histogram::{snapshot_histograms, HistogramSnapshot};
use crate::ring::{drain_spans, dropped_events};
use crate::span::SpanRecord;

/// Counters, histograms, and (optionally) drained spans at a point in
/// time. Not an atomic cut across instruments — see the `counters`
/// module docs — but exact for any instrument quiesced by thread joins.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// All registered counters, in registration order.
    pub counters: Vec<CounterValue>,
    /// All registered histograms, in registration order.
    pub histograms: Vec<HistogramSnapshot>,
    /// Spans drained into this snapshot (empty for [`snapshot`]).
    pub spans: Vec<SpanRecord>,
    /// Ring events dropped process-wide at snapshot time.
    pub dropped_events: u64,
}

/// Snapshot counters and histograms without draining span rings.
pub fn snapshot() -> TelemetrySnapshot {
    TelemetrySnapshot {
        counters: snapshot_counters(),
        histograms: snapshot_histograms(),
        spans: Vec::new(),
        dropped_events: dropped_events(),
    }
}

/// Snapshot counters and histograms and drain all span rings.
pub fn snapshot_and_drain() -> TelemetrySnapshot {
    TelemetrySnapshot {
        counters: snapshot_counters(),
        histograms: snapshot_histograms(),
        spans: drain_spans(),
        dropped_events: dropped_events(),
    }
}

impl TelemetrySnapshot {
    /// Value of the counter named `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// The histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Spans named `name`.
    pub fn spans_named<'a>(&'a self, name: &str) -> Vec<&'a SpanRecord> {
        let name = name.to_string();
        self.spans.iter().filter(|s| s.name == name).collect()
    }

    /// Difference `self - earlier`, matching counters and histograms by
    /// name (instruments registered after `earlier` keep their full
    /// value). Spans and `dropped_events` are taken from `self` as-is:
    /// drained spans are already interval-scoped.
    pub fn delta_since(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        let counters = self
            .counters
            .iter()
            .map(|c| CounterValue {
                name: c.name,
                value: c.value.saturating_sub(
                    earlier
                        .counters
                        .iter()
                        .find(|e| e.name == c.name)
                        .map_or(0, |e| e.value),
                ),
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(
                |h| match earlier.histograms.iter().find(|e| e.name == h.name) {
                    Some(e) => h.delta(e),
                    None => h.clone(),
                },
            )
            .collect();
        TelemetrySnapshot {
            counters,
            histograms,
            spans: self.spans.clone(),
            dropped_events: self.dropped_events,
        }
    }

    /// Drop zero counters and empty histograms (export hygiene).
    pub fn retain_nonzero(&mut self) {
        self.counters.retain(|c| c.value != 0);
        self.histograms.retain(|h| h.count != 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counter, histogram};

    #[test]
    fn delta_matches_by_name() {
        let c = counter("test.snap.counter");
        let h = histogram("test.snap.hist");
        c.add(3);
        h.record(8);
        let before = snapshot();
        c.add(2);
        h.record(16);
        let after = snapshot();
        let d = after.delta_since(&before);
        assert_eq!(d.counter("test.snap.counter"), 2);
        let dh = d.histogram("test.snap.hist").unwrap();
        assert_eq!(dh.count, 1);
        assert_eq!(dh.sum, 16);
        assert_eq!(d.counter("test.snap.missing"), 0);
    }

    #[test]
    fn retain_nonzero_prunes() {
        let mut s = snapshot();
        s.retain_nonzero();
        assert!(s.counters.iter().all(|c| c.value != 0));
        assert!(s.histograms.iter().all(|h| h.count != 0));
    }
}
