//! Named monotonic counters.
//!
//! Values live in a fixed static table of atomics; names live in a
//! mutex-guarded registry consulted only at registration and snapshot
//! time. Incrementing a registered [`Counter`] is a single
//! `fetch_add(Relaxed)` — async-signal-safe and wait-free.
//!
//! # Ordering
//!
//! All accesses are `Relaxed`. That is deliberate and safe here: each
//! counter is an independent monotonic event count, never used to
//! establish happens-before edges with other data. A [`snapshot`]
//! (`crate::snapshot`) is therefore *not* an atomic cut across counters —
//! concurrent increments may land on one counter but not another within
//! the same snapshot. Consumers (the harness) only compare before/after
//! deltas around a run on the same thread, where every increment of
//! interest is already ordered by the thread joins that end the run.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Maximum number of distinct counters.
pub const MAX_COUNTERS: usize = 256;

static VALUES: [AtomicU64; MAX_COUNTERS] = [const { AtomicU64::new(0) }; MAX_COUNTERS];
static NAMES: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Handle to a registered counter. Copy it into a static and increment
/// freely, including from signal handlers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter {
    idx: u32,
}

/// Register (or look up) the counter named `name`.
///
/// Takes a mutex: call from normal context only, ideally once, caching
/// the returned handle. Panics if [`MAX_COUNTERS`] distinct names are
/// exceeded — a static budget overrun, not a runtime condition.
pub fn counter(name: &'static str) -> Counter {
    let mut names = NAMES.lock().unwrap();
    if let Some(i) = names.iter().position(|n| *n == name) {
        return Counter { idx: i as u32 };
    }
    assert!(
        names.len() < MAX_COUNTERS,
        "counter table full ({MAX_COUNTERS})"
    );
    names.push(name);
    Counter {
        idx: (names.len() - 1) as u32,
    }
}

impl Counter {
    /// Add `n`. Wait-free, async-signal-safe.
    #[inline]
    pub fn add(self, n: u64) {
        VALUES[self.idx as usize].fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1. Wait-free, async-signal-safe.
    #[inline]
    pub fn inc(self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        VALUES[self.idx as usize].load(Ordering::Relaxed)
    }
}

/// A counter's name and value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterValue {
    /// Registered name.
    pub name: &'static str,
    /// Value at snapshot time.
    pub value: u64,
}

/// All registered counters with their current values, in registration
/// order. Not an atomic cut (see module docs).
pub fn snapshot_counters() -> Vec<CounterValue> {
    let names = NAMES.lock().unwrap();
    names
        .iter()
        .enumerate()
        .map(|(i, name)| CounterValue {
            name,
            value: VALUES[i].load(Ordering::Relaxed),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_dedupes_and_counts() {
        let a = counter("test.counters.a");
        let b = counter("test.counters.a");
        assert_eq!(a, b);
        let before = a.get();
        a.inc();
        a.add(4);
        assert_eq!(a.get(), before + 5);
        let snap = snapshot_counters();
        let got = snap.iter().find(|c| c.name == "test.counters.a").unwrap();
        assert_eq!(got.value, before + 5);
    }

    #[test]
    fn concurrent_increments_sum() {
        let c = counter("test.counters.concurrent");
        let before = c.get();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), before + 40_000);
    }
}
