//! Lock-free per-thread ring buffers of fixed-size span/event records.
//!
//! Each thread owns one single-producer ring; a global registry lets a
//! drainer walk all rings. The producer never blocks and never
//! allocates: when the ring is full (or a push is interrupted by a
//! signal that itself pushes), the event is dropped and counted.
//!
//! # Concurrency protocol
//!
//! `head` is written only by the owning thread, `tail` only by a drainer
//! holding the registry lock (so there is exactly one consumer at a
//! time). The producer checks `head - tail < capacity`, fills the slot,
//! then publishes with `head.store(Release)`; the consumer reads
//! `head.load(Acquire)`, copies slots in `[tail, head)` — which the
//! producer cannot touch, since it only writes at `head` — then
//! publishes consumption with `tail.store(Release)`.
//!
//! # Signal reentrancy
//!
//! A slot write is several stores; a signal arriving mid-push whose
//! handler also pushes would interleave writes to the same slot. The
//! `busy` flag (only ever contended by the owning thread against its own
//! signal handler) makes the inner push drop its event instead.

use crate::span::SpanRecord;
use std::cell::OnceCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Counter mirroring per-ring drop totals into the snapshot, so a
/// truncated profile is visible in the JSONL a run emits rather than
/// only through [`dropped_events`]. Interned from normal context in
/// [`ensure_thread_ring`]; [`SpanRing::push`] (which may run in a
/// signal handler) only does an `OnceLock::get` plus a relaxed
/// `fetch_add` on the pre-registered cell.
static DROPPED_COUNTER: OnceLock<crate::Counter> = OnceLock::new();

/// Events each per-thread ring can hold before dropping (power of two).
pub const RING_CAPACITY: usize = 4096;

/// What a ring record represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A timed region: `start_ns` .. `start_ns + dur_ns`.
    Span,
    /// A point event; `dur_ns` is zero.
    Instant,
}

struct RingSlot {
    name_id: AtomicU32,
    kind: AtomicU32,
    arg: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
}

impl RingSlot {
    const NEW: RingSlot = RingSlot {
        name_id: AtomicU32::new(0),
        kind: AtomicU32::new(0),
        arg: AtomicU64::new(0),
        start_ns: AtomicU64::new(0),
        dur_ns: AtomicU64::new(0),
    };
}

/// One thread's event ring. Created lazily per thread; see
/// [`ensure_thread_ring`].
pub struct SpanRing {
    slots: Box<[RingSlot]>,
    head: AtomicUsize,
    tail: AtomicUsize,
    dropped: AtomicU64,
    busy: AtomicBool,
    thread: u32,
}

impl SpanRing {
    fn new(thread: u32) -> SpanRing {
        let slots: Vec<RingSlot> = (0..RING_CAPACITY).map(|_| RingSlot::NEW).collect();
        SpanRing {
            slots: slots.into_boxed_slice(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            busy: AtomicBool::new(false),
            thread,
        }
    }

    /// Producer-side push. Must only be called from the owning thread
    /// (or its signal handlers). Wait-free; drops on overflow or
    /// reentrancy.
    pub(crate) fn push(&self, name_id: u16, kind: EventKind, arg: u64, start_ns: u64, dur_ns: u64) {
        if self.busy.swap(true, Ordering::Acquire) {
            // A signal interrupted this thread mid-push and the handler
            // is pushing too: drop rather than corrupt the open slot.
            self.count_drop();
            return;
        }
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= RING_CAPACITY {
            self.count_drop();
        } else {
            let slot = &self.slots[head & (RING_CAPACITY - 1)];
            slot.name_id.store(u32::from(name_id), Ordering::Relaxed);
            slot.kind.store(
                match kind {
                    EventKind::Span => 0,
                    EventKind::Instant => 1,
                },
                Ordering::Relaxed,
            );
            slot.arg.store(arg, Ordering::Relaxed);
            slot.start_ns.store(start_ns, Ordering::Relaxed);
            slot.dur_ns.store(dur_ns, Ordering::Relaxed);
            self.head.store(head.wrapping_add(1), Ordering::Release);
        }
        self.busy.store(false, Ordering::Release);
    }

    /// Consumer-side drain. Caller must hold the registry lock (single
    /// consumer).
    fn drain_into(&self, out: &mut Vec<SpanRecord>) {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        for i in tail..head {
            let slot = &self.slots[i & (RING_CAPACITY - 1)];
            out.push(SpanRecord {
                name: crate::span::name_of(slot.name_id.load(Ordering::Relaxed) as u16),
                kind: if slot.kind.load(Ordering::Relaxed) == 0 {
                    EventKind::Span
                } else {
                    EventKind::Instant
                },
                arg: slot.arg.load(Ordering::Relaxed),
                start_ns: slot.start_ns.load(Ordering::Relaxed),
                dur_ns: slot.dur_ns.load(Ordering::Relaxed),
                thread: self.thread,
            });
        }
        self.tail.store(head, Ordering::Release);
    }

    /// Events dropped on this ring (overflow + reentrancy).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Account one dropped event on this ring and in the global
    /// `telemetry.ring.dropped` counter. Async-signal-safe.
    fn count_drop(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
        if let Some(c) = DROPPED_COUNTER.get() {
            c.inc();
        }
    }
}

static REGISTRY: Mutex<Vec<Arc<SpanRing>>> = Mutex::new(Vec::new());
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static RING: OnceCell<Arc<SpanRing>> = const { OnceCell::new() };
}

/// Create and register this thread's ring if it does not exist yet, and
/// run [`crate::init_from_env`]. Call from normal context before any
/// code that may record spans from a signal handler on this thread —
/// TLS first-touch and registration are not async-signal-safe.
pub fn ensure_thread_ring() {
    crate::init_from_env();
    let _ = DROPPED_COUNTER.get_or_init(|| crate::counter("telemetry.ring.dropped"));
    RING.with(|cell| {
        cell.get_or_init(|| {
            let ring = Arc::new(SpanRing::new(NEXT_THREAD.fetch_add(1, Ordering::Relaxed)));
            REGISTRY.lock().unwrap().push(ring.clone());
            ring
        });
    });
}

/// Run `f` against this thread's ring, creating it if needed. Normal
/// context only.
pub(crate) fn with_ring<F: FnOnce(&SpanRing)>(f: F) {
    ensure_thread_ring();
    RING.with(|cell| {
        if let Some(ring) = cell.get() {
            f(ring);
        }
    });
}

/// Run `f` against this thread's ring only if it already exists; never
/// initializes TLS. Safe to call from a signal handler *if* the thread
/// called [`ensure_thread_ring`] earlier.
pub(crate) fn with_ring_signal_safe<F: FnOnce(&SpanRing)>(f: F) {
    let _ = RING.try_with(|cell| {
        if let Some(ring) = cell.get() {
            f(ring);
        }
    });
}

/// Drain every thread's ring into one vector (arbitrary inter-thread
/// order; per-thread order is push order).
pub fn drain_spans() -> Vec<SpanRecord> {
    let registry = REGISTRY.lock().unwrap();
    let mut out = Vec::new();
    for ring in registry.iter() {
        ring.drain_into(&mut out);
    }
    out
}

/// Total events dropped across all rings since process start.
pub fn dropped_events() -> u64 {
    let registry = REGISTRY.lock().unwrap();
    registry.iter().map(|r| r.dropped()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::register_span_name;

    #[test]
    fn push_then_drain_roundtrips() {
        let _g = crate::test_drain_lock();
        let name = register_span_name("test.ring.basic");
        // `record_span_raw` never initializes TLS (signal-safety
        // contract), so the ring must exist before the push.
        ensure_thread_ring();
        crate::set_spans_enabled(true);
        crate::record_span_raw(name, 7, 100, 25);
        crate::set_spans_enabled(false);
        let drained = drain_spans();
        let got = drained
            .iter()
            .find(|r| r.name == "test.ring.basic" && r.arg == 7)
            .expect("record drained");
        assert_eq!(got.start_ns, 100);
        assert_eq!(got.dur_ns, 25);
        assert_eq!(got.kind, EventKind::Span);
    }

    #[test]
    fn wraparound_drops_and_accounts() {
        // Fill a private ring past capacity; the overflow must be
        // dropped and counted, and the first RING_CAPACITY events kept.
        let ring = SpanRing::new(9999);
        for i in 0..(RING_CAPACITY as u64 + 100) {
            ring.push(0, EventKind::Instant, i, i, 0);
        }
        assert_eq!(ring.dropped(), 100);
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), RING_CAPACITY);
        assert_eq!(out[0].arg, 0);
        assert_eq!(out.last().unwrap().arg, RING_CAPACITY as u64 - 1);
        // After draining, the ring accepts events again and indices wrap.
        ring.push(0, EventKind::Instant, 424242, 1, 0);
        out.clear();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].arg, 424242);
        assert_eq!(ring.dropped(), 100);
    }

    #[test]
    fn drops_surface_in_global_counter() {
        // ensure_thread_ring interns the counter; ring drops must then
        // show up under `telemetry.ring.dropped` in snapshots.
        ensure_thread_ring();
        let before = crate::snapshot().counter("telemetry.ring.dropped");
        let ring = SpanRing::new(9998);
        for i in 0..(RING_CAPACITY as u64 + 7) {
            ring.push(0, EventKind::Instant, i, i, 0);
        }
        let after = crate::snapshot().counter("telemetry.ring.dropped");
        assert!(
            after >= before + 7,
            "counter moved {before} -> {after}, wanted +7"
        );
    }

    #[test]
    fn concurrent_producer_and_drainer() {
        // One producer hammers its ring while a drainer concurrently
        // drains: every pushed event is either drained or counted as
        // dropped, with no duplicates or corruption.
        let ring = Arc::new(SpanRing::new(12345));
        let producer_ring = ring.clone();
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                producer_ring.push(0, EventKind::Instant, i, i, 0);
            }
        });
        let mut seen = Vec::new();
        while !producer.is_finished() {
            ring.drain_into(&mut seen);
        }
        producer.join().unwrap();
        ring.drain_into(&mut seen);
        let dropped = ring.dropped();
        assert_eq!(seen.len() as u64 + dropped, N);
        // Drained args must be strictly increasing (per-thread order) and
        // each equal to its own start_ns (integrity of slot contents).
        let mut prev = None;
        for r in &seen {
            assert_eq!(r.arg, r.start_ns, "slot torn");
            if let Some(p) = prev {
                assert!(r.arg > p, "out of order: {} after {}", r.arg, p);
            }
            prev = Some(r.arg);
        }
    }
}
