//! `lb-telemetry` — runtime-wide observability for the leaps-and-bounds
//! reproduction.
//!
//! The paper's analysis hinges on *attributing* cost to bounds-checking
//! machinery: page-fault storms, `mprotect` churn, signal round-trips, JIT
//! tier-up pauses. This crate is the measurement substrate for that — a
//! zero-dependency layer (the build environment is offline) providing:
//!
//! * **Named monotonic counters** ([`counter`]) — fixed-slot atomics,
//!   async-signal-safe to increment, subsuming `lb-core`'s old
//!   `VmCounters`.
//! * **Power-of-two-bucket histograms** ([`histogram`]) — fixed-slot
//!   atomics, no allocation on the record path, async-signal-safe; used
//!   for trap delivery latency, uffd zeropage service time, `memory.grow`
//!   cost, JIT compile time.
//! * **Spans and instants** ([`span!`], [`instant`]) — RAII timers pushed
//!   into a lock-free per-thread ring buffer of fixed-size records
//!   ([`ring`]); overflow drops events and counts the drops rather than
//!   blocking or allocating.
//! * **Snapshot / drain / export** ([`snapshot`], [`snapshot_and_drain`],
//!   [`export`]) — a coherent-enough view of all counters and histograms
//!   plus the drained spans, with manual (serde-free) JSONL and
//!   human-readable writers.
//!
//! # Enabling output
//!
//! The `LB_TELEMETRY` environment variable controls the export sink:
//!
//! * unset / empty / `off` — no sink; spans stay disabled (counters and
//!   histograms still accumulate, they are practically free).
//! * `jsonl:<path>` — append JSONL records to `<path>` after each
//!   harness run.
//! * `human` or `human:<path>` — human-readable summary to stderr or a
//!   file.
//!
//! Setting a sink also enables span recording. Interpreter dispatch
//! counters are hotter, so they stay off unless `LB_TELEMETRY_DISPATCH=1`
//! (or [`set_dispatch_counters_enabled`]) turns them on.
//!
//! # Async-signal-safety
//!
//! Counter and histogram *increments* are single atomic RMW operations on
//! pre-registered slots: safe from signal handlers. *Registration*
//! ([`counter`]/[`histogram`]/[`register_span_name`]) takes a mutex and
//! must happen in normal context before the handler can run — `lb-core`
//! registers everything in `install_handlers`. Span pushes from signal
//! context go through [`record_span_raw`], which only touches a ring that
//! the interrupted thread already created ([`ensure_thread_ring`]) and is
//! guarded against same-thread reentrancy.

#![warn(missing_docs)]

pub mod clock;
pub mod counters;
pub mod export;
pub mod histogram;
pub mod json;
pub mod ring;
pub mod snapshot;
pub mod span;

pub use counters::{counter, Counter, CounterValue};
pub use histogram::{histogram, Histogram, HistogramSnapshot};
pub use ring::{drain_spans, dropped_events, ensure_thread_ring, EventKind};
pub use snapshot::{snapshot, snapshot_and_drain, TelemetrySnapshot};
pub use span::{instant, record_span_raw, register_span_name, SpanGuard, SpanId, SpanRecord};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static SPANS_ENABLED: AtomicBool = AtomicBool::new(false);
static DISPATCH_ENABLED: AtomicBool = AtomicBool::new(false);

/// Where [`export::emit_run`] sends each run's telemetry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sink {
    /// Append JSONL records to the given file.
    Jsonl(String),
    /// Human-readable summary; `None` means stderr.
    Human(Option<String>),
}

static SINK: OnceLock<Option<Sink>> = OnceLock::new();

/// Parse `LB_TELEMETRY` / `LB_TELEMETRY_DISPATCH` once and configure the
/// sink and enable flags accordingly. Idempotent; cheap after the first
/// call. Called automatically by [`ensure_thread_ring`], which `lb-core`
/// invokes on every thread before running wasm.
pub fn init_from_env() {
    SINK.get_or_init(|| {
        let sink = match std::env::var("LB_TELEMETRY") {
            Ok(v) => parse_sink(&v),
            Err(_) => None,
        };
        if sink.is_some() {
            SPANS_ENABLED.store(true, Ordering::Relaxed);
        }
        if matches!(std::env::var("LB_TELEMETRY_DISPATCH").as_deref(), Ok("1")) {
            DISPATCH_ENABLED.store(true, Ordering::Relaxed);
        }
        sink
    });
}

fn parse_sink(v: &str) -> Option<Sink> {
    match v {
        "" | "off" | "0" => None,
        "human" => Some(Sink::Human(None)),
        _ => {
            if let Some(path) = v.strip_prefix("jsonl:") {
                Some(Sink::Jsonl(path.to_string()))
            } else if let Some(path) = v.strip_prefix("human:") {
                Some(Sink::Human(Some(path.to_string())))
            } else {
                None
            }
        }
    }
}

/// The sink configured by [`init_from_env`], if any.
pub fn sink() -> Option<&'static Sink> {
    init_from_env();
    SINK.get().and_then(|s| s.as_ref())
}

/// Whether span/instant recording is on. A single relaxed atomic load —
/// this is the whole cost of a disabled [`span!`].
#[inline]
pub fn spans_enabled() -> bool {
    SPANS_ENABLED.load(Ordering::Relaxed)
}

/// Turn span recording on or off (tests and embedders; the env var does
/// this automatically when a sink is configured).
pub fn set_spans_enabled(on: bool) {
    SPANS_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether interpreter opcode-class dispatch counters are on.
#[inline]
pub fn dispatch_counters_enabled() -> bool {
    DISPATCH_ENABLED.load(Ordering::Relaxed)
}

/// Turn interpreter dispatch counters on or off.
pub fn set_dispatch_counters_enabled(on: bool) {
    DISPATCH_ENABLED.store(on, Ordering::Relaxed);
}

/// A per-call-site [`span!`] body: enters a span guard when spans are
/// enabled. See the macro docs.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name, 0)
    };
    ($name:expr, $arg:expr) => {
        $crate::SpanGuard::enter($name, ($arg) as u64)
    };
}

/// Serializes tests that drain the global ring registry, so concurrent
/// test threads don't steal each other's records.
#[cfg(test)]
pub(crate) fn test_drain_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_parsing() {
        assert_eq!(parse_sink(""), None);
        assert_eq!(parse_sink("off"), None);
        assert_eq!(
            parse_sink("jsonl:/tmp/x.jsonl"),
            Some(Sink::Jsonl("/tmp/x.jsonl".into()))
        );
        assert_eq!(parse_sink("human"), Some(Sink::Human(None)));
        assert_eq!(
            parse_sink("human:/tmp/t.txt"),
            Some(Sink::Human(Some("/tmp/t.txt".into())))
        );
        assert_eq!(parse_sink("bogus"), None);
    }

    #[test]
    fn flags_toggle() {
        set_spans_enabled(true);
        assert!(spans_enabled());
        set_spans_enabled(false);
        assert!(!spans_enabled());
        set_dispatch_counters_enabled(true);
        assert!(dispatch_counters_enabled());
        set_dispatch_counters_enabled(false);
    }
}
