//! Monotonic nanosecond clock, usable from signal handlers.
//!
//! `std::time::Instant` is not guaranteed async-signal-safe and cannot be
//! turned into a raw nanosecond count portably, so we call
//! `clock_gettime(CLOCK_MONOTONIC)` directly — POSIX lists it as
//! async-signal-safe, and on Linux it is a vDSO call (no syscall in the
//! common case).

#[repr(C)]
struct Timespec {
    tv_sec: i64,
    tv_nsec: i64,
}

const CLOCK_MONOTONIC: i32 = 1;

extern "C" {
    fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
}

/// Current monotonic time in nanoseconds. Async-signal-safe.
#[inline]
pub fn now_ns() -> u64 {
    let mut ts = Timespec {
        tv_sec: 0,
        tv_nsec: 0,
    };
    // SAFETY: ts is a valid out-pointer; CLOCK_MONOTONIC always exists.
    unsafe {
        clock_gettime(CLOCK_MONOTONIC, &mut ts);
    }
    (ts.tv_sec as u64)
        .wrapping_mul(1_000_000_000)
        .wrapping_add(ts.tv_nsec as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_and_nonzero() {
        let a = now_ns();
        let b = now_ns();
        assert!(a > 0);
        assert!(b >= a);
    }

    #[test]
    fn tracks_real_sleep() {
        let a = now_ns();
        std::thread::sleep(std::time::Duration::from_millis(5));
        let b = now_ns();
        assert!(
            b - a >= 4_000_000,
            "slept 5ms but clock advanced {}ns",
            b - a
        );
    }
}
