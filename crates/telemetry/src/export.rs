//! JSONL and human-readable exporters for [`TelemetrySnapshot`]s.
//!
//! The JSONL format is line-oriented: one self-describing object per
//! line, each carrying a `"type"` tag. A run emitted by the harness
//! looks like:
//!
//! ```json
//! {"type":"run","bench":"gemm","engine":"wavm","strategy":"mprotect","threads":1}
//! {"type":"counter","name":"mem.mmap","value":12}
//! {"type":"histogram","name":"trap.latency_ns","count":3,"sum":5200,"mean":1733.3,"p50":2048,"p99":4096,"buckets":[[2048,2],[4096,1]]}
//! {"type":"span","name":"jit.compile","arg":3,"start_ns":123456,"dur_ns":8900,"thread":0}
//! {"type":"end","dropped_events":0}
//! ```
//!
//! Histogram `buckets` pairs are `[exclusive upper bound, count]` for
//! each non-empty power-of-two bucket. Every line is valid JSON
//! parsable by [`crate::json::parse`].

use crate::histogram::{bucket_bound, HistogramSnapshot};
use crate::json::{write_key, write_str};
use crate::snapshot::TelemetrySnapshot;
use crate::Sink;
use std::fmt::Write as _;
use std::io::Write as _;

/// Append one `{"type":"run",...}` header line for `meta` key/value
/// pairs, then counter/histogram/span lines, then an `end` line.
pub fn write_jsonl(out: &mut String, meta: &[(&str, String)], snap: &TelemetrySnapshot) {
    out.push_str("{\"type\":\"run\"");
    for (k, v) in meta {
        out.push(',');
        write_key(out, k);
        // Numeric-looking meta values are emitted as numbers.
        if !v.is_empty() && v.bytes().all(|b| b.is_ascii_digit()) {
            out.push_str(v);
        } else {
            write_str(out, v);
        }
    }
    out.push_str("}\n");

    for c in &snap.counters {
        if c.value == 0 {
            continue;
        }
        out.push_str("{\"type\":\"counter\",\"name\":");
        write_str(out, c.name);
        let _ = writeln!(out, ",\"value\":{}}}", c.value);
    }
    for h in &snap.histograms {
        if h.count == 0 {
            continue;
        }
        write_histogram_line(out, h);
    }
    for s in &snap.spans {
        out.push_str(match s.kind {
            crate::EventKind::Span => "{\"type\":\"span\",\"name\":",
            crate::EventKind::Instant => "{\"type\":\"instant\",\"name\":",
        });
        write_str(out, s.name);
        let _ = writeln!(
            out,
            ",\"arg\":{},\"start_ns\":{},\"dur_ns\":{},\"thread\":{}}}",
            s.arg, s.start_ns, s.dur_ns, s.thread
        );
    }
    let _ = writeln!(
        out,
        "{{\"type\":\"end\",\"dropped_events\":{}}}",
        snap.dropped_events
    );
}

fn write_histogram_line(out: &mut String, h: &HistogramSnapshot) {
    out.push_str("{\"type\":\"histogram\",\"name\":");
    write_str(out, h.name);
    let _ = write!(
        out,
        ",\"count\":{},\"sum\":{},\"mean\":{:.1},\"p50\":{},\"p99\":{},\"buckets\":[",
        h.count,
        h.sum,
        h.mean(),
        h.quantile(0.5),
        h.quantile(0.99)
    );
    let mut first = true;
    for (b, &c) in h.buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "[{},{}]", bucket_bound(b), c);
    }
    out.push_str("]}\n");
}

/// Render a human-readable summary (counters sorted by name, histogram
/// percentiles, span aggregates).
pub fn write_human(out: &mut String, meta: &[(&str, String)], snap: &TelemetrySnapshot) {
    out.push_str("== telemetry");
    for (k, v) in meta {
        let _ = write!(out, " {k}={v}");
    }
    out.push('\n');

    let mut counters: Vec<_> = snap.counters.iter().filter(|c| c.value != 0).collect();
    counters.sort_by_key(|c| c.name);
    for c in counters {
        let _ = writeln!(out, "  counter    {:<28} {}", c.name, c.value);
    }
    for h in snap.histograms.iter().filter(|h| h.count != 0) {
        let _ = writeln!(
            out,
            "  histogram  {:<28} n={} mean={:.0} p50<{} p99<{}",
            h.name,
            h.count,
            h.mean(),
            h.quantile(0.5),
            h.quantile(0.99)
        );
    }
    // Aggregate spans by name: count and total duration.
    let mut agg: Vec<(&str, u64, u64)> = Vec::new();
    for s in &snap.spans {
        match agg.iter_mut().find(|(n, _, _)| *n == s.name) {
            Some(e) => {
                e.1 += 1;
                e.2 += s.dur_ns;
            }
            None => agg.push((s.name, 1, s.dur_ns)),
        }
    }
    agg.sort_by_key(|(n, _, _)| *n);
    for (name, n, total) in agg {
        let _ = writeln!(out, "  span       {:<28} n={} total={}ns", name, n, total);
    }
    if snap.dropped_events != 0 {
        let _ = writeln!(out, "  dropped_events {}", snap.dropped_events);
    }
}

/// Emit `snap` to the sink configured via `LB_TELEMETRY` (no-op when
/// none). The harness calls this once per completed run.
pub fn emit_run(meta: &[(&str, String)], snap: &TelemetrySnapshot) {
    let Some(sink) = crate::sink() else { return };
    match sink {
        Sink::Jsonl(path) => {
            let mut buf = String::new();
            write_jsonl(&mut buf, meta, snap);
            append_file(path, &buf);
        }
        Sink::Human(path) => {
            let mut buf = String::new();
            write_human(&mut buf, meta, snap);
            match path {
                Some(p) => append_file(p, &buf),
                None => {
                    let _ = std::io::stderr().write_all(buf.as_bytes());
                }
            }
        }
    }
}

fn append_file(path: &str, data: &str) {
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = f.write_all(data.as_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterValue;
    use crate::histogram::{bucket_index, HistogramSnapshot, BUCKETS};
    use crate::json;
    use crate::ring::EventKind;
    use crate::span::SpanRecord;

    fn sample_snapshot() -> TelemetrySnapshot {
        let mut buckets = [0u64; BUCKETS];
        buckets[bucket_index(1500)] = 2;
        buckets[bucket_index(3000)] = 1;
        TelemetrySnapshot {
            counters: vec![
                CounterValue {
                    name: "mem.mmap",
                    value: 12,
                },
                CounterValue {
                    name: "mem.zero",
                    value: 0,
                },
            ],
            histograms: vec![HistogramSnapshot {
                name: "trap.latency_ns",
                count: 3,
                sum: 6000,
                buckets,
            }],
            spans: vec![SpanRecord {
                name: "jit.compile",
                kind: EventKind::Span,
                arg: 3,
                start_ns: 1000,
                dur_ns: 250,
                thread: 0,
            }],
            dropped_events: 0,
        }
    }

    #[test]
    fn jsonl_exact_shape() {
        let mut out = String::new();
        write_jsonl(
            &mut out,
            &[("bench", "gemm".to_string()), ("threads", "2".to_string())],
            &sample_snapshot(),
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], r#"{"type":"run","bench":"gemm","threads":2}"#);
        assert_eq!(
            lines[1],
            r#"{"type":"counter","name":"mem.mmap","value":12}"#
        );
        assert_eq!(
            lines[2],
            r#"{"type":"histogram","name":"trap.latency_ns","count":3,"sum":6000,"mean":2000.0,"p50":2048,"p99":4096,"buckets":[[2048,2],[4096,1]]}"#
        );
        assert_eq!(
            lines[3],
            r#"{"type":"span","name":"jit.compile","arg":3,"start_ns":1000,"dur_ns":250,"thread":0}"#
        );
        assert_eq!(lines[4], r#"{"type":"end","dropped_events":0}"#);
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn jsonl_lines_are_round_trippable() {
        let mut out = String::new();
        write_jsonl(
            &mut out,
            &[("bench", "atax".to_string())],
            &sample_snapshot(),
        );
        let mut types = Vec::new();
        for line in out.lines() {
            let v = json::parse(line).unwrap_or_else(|e| panic!("line '{line}': {e}"));
            types.push(v.get("type").unwrap().as_str().unwrap().to_string());
            if v.get("type").unwrap().as_str() == Some("counter") {
                assert_eq!(v.get("value").unwrap().as_u64(), Some(12));
            }
            if v.get("type").unwrap().as_str() == Some("histogram") {
                let buckets = v.get("buckets").unwrap().as_arr().unwrap();
                assert_eq!(buckets.len(), 2);
                assert_eq!(buckets[0].as_arr().unwrap()[1].as_u64(), Some(2));
            }
        }
        assert_eq!(types, ["run", "counter", "histogram", "span", "end"]);
    }

    #[test]
    fn human_output_mentions_everything() {
        let mut out = String::new();
        write_human(
            &mut out,
            &[("bench", "gemm".to_string())],
            &sample_snapshot(),
        );
        assert!(out.contains("bench=gemm"));
        assert!(out.contains("mem.mmap"));
        assert!(!out.contains("mem.zero"), "zero counters are pruned");
        assert!(out.contains("trap.latency_ns"));
        assert!(out.contains("jit.compile"));
    }
}
