//! Minimal hand-rolled JSON support: an escaping writer used by the
//! exporters and a small parser used by tests (and anyone wanting to
//! consume our own JSONL) to check round-trippability. No serde — the
//! build environment is offline and the shapes involved are tiny.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Append `s` to `out` as a JSON string literal (with quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a `"key":` prefix.
pub fn write_key(out: &mut String, key: &str) {
    write_str(out, key);
    out.push(':');
}

/// A parsed JSON value. Numbers are kept as `f64` plus the raw text so
/// 64-bit counters survive a round-trip exactly.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number; the `String` is the original literal text.
    Num(f64, String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (key order not preserved).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an exact u64 (parsed from the raw literal).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(_, raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The value as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(f, _) => Some(*f),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse one JSON document. Errors carry a byte offset.
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let b = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end".into()),
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    JsonValue::Str(s) => s,
                    _ => return Err(format!("non-string key at byte {pos}")),
                };
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut arr = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(JsonValue::Arr(arr));
            }
            loop {
                arr.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(arr));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(b, pos).map(JsonValue::Str),
        Some(b't') => expect(b, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'n') => expect(b, pos, "null").map(|()| JsonValue::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn expect(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    let f: f64 = raw
        .parse()
        .map_err(|_| format!("bad number '{raw}' at byte {start}"))?;
    Ok(JsonValue::Num(f, raw.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_is_exact() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn parse_roundtrips_escapes() {
        let v = parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a":[1,2,{"b":true}],"c":null,"d":"x","n":18446744073709551615}"#).unwrap();
        assert_eq!(v.get("d").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("n").unwrap().as_u64(), Some(u64::MAX));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"abc").is_err());
    }
}
