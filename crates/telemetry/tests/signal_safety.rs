//! Async-signal-safety smoke test: install a real SIGUSR1 handler that
//! increments a pre-registered counter, records into a pre-registered
//! histogram, and pushes a raw span, then raise the signal many times —
//! including from a thread that is itself pushing spans, to exercise the
//! ring's reentrancy guard. Everything the handler touches is a
//! pre-registered atomic slot, so this must neither deadlock nor corrupt
//! state.

use lb_telemetry::{
    clock, counter, drain_spans, dropped_events, ensure_thread_ring, histogram, record_span_raw,
    register_span_name, snapshot, Counter, Histogram, SpanId,
};
use std::sync::atomic::{AtomicU64, Ordering};

static HITS: AtomicU64 = AtomicU64::new(0);
static SIG_COUNTER: std::sync::OnceLock<Counter> = std::sync::OnceLock::new();
static SIG_HIST: std::sync::OnceLock<Histogram> = std::sync::OnceLock::new();
static SIG_SPAN: std::sync::OnceLock<SpanId> = std::sync::OnceLock::new();

unsafe extern "C" fn on_sigusr1(
    _sig: libc::c_int,
    _info: *mut libc::siginfo_t,
    _ctx: *mut libc::c_void,
) {
    // Only pre-registered handles and atomic ops: async-signal-safe.
    if let (Some(c), Some(h), Some(s)) = (SIG_COUNTER.get(), SIG_HIST.get(), SIG_SPAN.get()) {
        let t = clock::now_ns();
        c.inc();
        h.record(t & 0xFFFF);
        record_span_raw(*s, 1, t, 0);
    }
    HITS.fetch_add(1, Ordering::Relaxed);
}

#[test]
fn counters_survive_real_signal_handler() {
    // Pre-register everything in normal context.
    SIG_COUNTER.set(counter("test.signal.hits")).unwrap();
    SIG_HIST.set(histogram("test.signal.ns_low")).unwrap();
    SIG_SPAN
        .set(register_span_name("test.signal.span"))
        .unwrap();
    ensure_thread_ring();
    lb_telemetry::set_spans_enabled(true);

    unsafe {
        let mut act: libc::sigaction = std::mem::zeroed();
        act.sa_sigaction = on_sigusr1
            as unsafe extern "C" fn(libc::c_int, *mut libc::siginfo_t, *mut libc::c_void)
            as usize;
        act.sa_flags = libc::SA_SIGINFO;
        libc::sigemptyset(&mut act.sa_mask);
        assert_eq!(
            libc::sigaction(libc::SIGUSR1, &act, std::ptr::null_mut()),
            0
        );
    }

    const N: u64 = 2000;
    let before = snapshot();
    let span_name = register_span_name("test.signal.busy");
    for i in 0..N {
        // Interleave normal-context span pushes with signal delivery so
        // some signals land mid-push and hit the reentrancy guard.
        record_span_raw(span_name, i, i, 0);
        unsafe {
            libc::raise(libc::SIGUSR1);
        }
    }
    lb_telemetry::set_spans_enabled(false);

    assert_eq!(HITS.load(Ordering::Relaxed), N);
    let after = snapshot();
    let delta = after.delta_since(&before);
    assert_eq!(delta.counter("test.signal.hits"), N);
    let h = delta.histogram("test.signal.ns_low").unwrap();
    assert_eq!(h.count, N);

    // Ring accounting: pushed (signal + busy) spans either drained or
    // counted as dropped, never lost silently.
    let drained = drain_spans();
    let sig_spans = drained
        .iter()
        .filter(|r| r.name == "test.signal.span")
        .count() as u64;
    let busy_spans = drained
        .iter()
        .filter(|r| r.name == "test.signal.busy")
        .count() as u64;
    assert_eq!(sig_spans + busy_spans + dropped_events(), 2 * N);
}
